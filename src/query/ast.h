// Abstract syntax tree of the Scrub query language (paper Section 3.2).
//
// A query selects expressions (possibly aggregates) over one or more event
// types, optionally filtered (WHERE), grouped (GROUP BY), windowed (WINDOW),
// time-bounded (START/DURATION), host-targeted (@[...]) and sampled
// (SAMPLE HOSTS p% / SAMPLE EVENTS p%). When a query names more than one
// event type, the sources are implicitly equi-joined on the request
// identifier — the only join the language admits.

#ifndef SRC_QUERY_AST_H_
#define SRC_QUERY_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/event/value.h"

namespace scrub {

// ---------------------------------------------------------------------------
// Source spans.

// Half-open byte range [begin, end) into the query text an AST node was
// parsed from. Programmatically built queries carry invalid (empty) spans;
// diagnostics fall back to whole-query scope for those.
struct SourceSpan {
  size_t begin = 0;
  size_t end = 0;

  bool IsValid() const { return end > begin; }
};

// ---------------------------------------------------------------------------
// Expressions.

enum class ExprKind {
  kLiteral,
  kFieldRef,
  kUnary,
  kBinary,
  kInList,
  kAggregate,
  kStar,  // the '*' in COUNT(*)
};

enum class UnaryOp { kNegate, kNot };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kContains,  // <list-field> CONTAINS <value>
};

const char* BinaryOpName(BinaryOp op);
bool IsComparisonOp(BinaryOp op);
bool IsArithmeticOp(BinaryOp op);

enum class AggregateFunc {
  kCount,          // COUNT(*) or COUNT(expr)
  kSum,
  kAvg,
  kMin,
  kMax,
  kCountDistinct,  // HyperLogLog
  kTopK,           // SpaceSaving; first argument is the literal k
};

const char* AggregateFuncName(AggregateFunc func);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;

  // kFieldRef: qualifier is the event type ("bid" in bid.user_id) or empty
  // for unqualified references (resolved by the analyzer when unambiguous).
  // `path` descends into nested-object fields (bid.device.os -> field
  // "device", path {"os"}); such references are dynamically typed.
  std::string qualifier;
  std::string field;
  std::vector<std::string> path;

  // kUnary
  UnaryOp unary_op = UnaryOp::kNegate;

  // kBinary
  BinaryOp binary_op = BinaryOp::kAdd;

  // kAggregate
  AggregateFunc agg_func = AggregateFunc::kCount;
  int64_t topk_k = 0;  // the k of TOPK(k, expr)

  // Children: operand(s) of unary/binary/in/aggregate. For kInList,
  // children[0] is the probe and the rest are list members.
  std::vector<ExprPtr> children;

  // Filled by the analyzer: result type of this expression.
  std::optional<FieldType> resolved_type;

  // Filled by the parser: where this expression sits in the query text.
  SourceSpan span;

  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeFieldRef(std::string qualifier, std::string field);
  static ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
  static ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeInList(ExprPtr probe, std::vector<ExprPtr> members);
  static ExprPtr MakeAggregate(AggregateFunc func, ExprPtr arg);
  static ExprPtr MakeTopK(int64_t k, ExprPtr arg);
  static ExprPtr MakeStar();

  // Deep copy (query objects fan out to many hosts).
  ExprPtr Clone() const;

  // True if this subtree contains an aggregate call.
  bool ContainsAggregate() const;

  // Unparse; parses back to an equivalent tree (round-trip tested).
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Target hosts: the @[...] clause. Terms are conjunctive.

struct TargetSpec {
  // SERVICE IN <name>: restrict to hosts running a service.
  std::vector<std::string> services;
  // SERVER = <name> / SERVERS IN (a, b, c): explicit host allowlist.
  std::vector<std::string> hosts;
  // DATACENTER = <name>: restrict to a data center.
  std::vector<std::string> datacenters;

  bool IsUnrestricted() const {
    return services.empty() && hosts.empty() && datacenters.empty();
  }
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// The query.

// Spans of the clause keywords-plus-operands, for diagnostics that point at
// a clause rather than an expression (WINDOW, DURATION, SAMPLE, @[...]).
// Absent clauses keep invalid (empty) spans.
struct QueryClauseSpans {
  SourceSpan from;
  SourceSpan where;
  SourceSpan targets;
  SourceSpan group_by;
  SourceSpan window;
  SourceSpan start;
  SourceSpan duration;
  SourceSpan sample_hosts;
  SourceSpan sample_events;
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty if none

  SelectItem Clone() const;
  std::string ToString() const;
};

struct Query {
  std::vector<SelectItem> select;
  std::vector<std::string> sources;  // event type names; >1 implies the join
  ExprPtr where;                     // may be null
  TargetSpec targets;
  std::vector<ExprPtr> group_by;     // field refs

  // Windowing & span. Zero means "use default" (filled by the analyzer).
  // slide < window gives sliding windows (the extension Section 3.2 calls
  // out); the analyzer defaults slide to window (tumbling) and requires the
  // window to be a multiple of the slide.
  TimeMicros window_micros = 0;
  TimeMicros slide_micros = 0;
  TimeMicros start_offset_micros = 0;  // relative to submission time
  TimeMicros duration_micros = 0;

  // Sampling rates in (0, 1]; 1.0 = no sampling.
  double host_sample_rate = 1.0;
  double event_sample_rate = 1.0;

  // Clause positions in the original text (empty for built-up queries).
  QueryClauseSpans spans;

  Query Clone() const;
  std::string ToString() const;
};

}  // namespace scrub

#endif  // SRC_QUERY_AST_H_
