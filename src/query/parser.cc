#include "src/query/parser.h"

#include <utility>

#include "src/common/strings.h"
#include "src/query/lexer.h"

namespace scrub {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query query;
    if (!ConsumeKeyword("SELECT")) {
      return Error("expected SELECT");
    }
    for (;;) {
      Result<SelectItem> item = ParseSelectItem();
      if (!item.ok()) {
        return item.status();
      }
      query.select.push_back(std::move(item).value());
      if (!Consume(TokenKind::kComma)) {
        break;
      }
    }
    size_t clause_begin = Peek().offset;
    if (!ConsumeKeyword("FROM")) {
      return Error("expected FROM");
    }
    for (;;) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected event type name");
      }
      query.sources.push_back(Next().text);
      if (!Consume(TokenKind::kComma)) {
        break;
      }
    }
    query.spans.from = {clause_begin, PrevEnd()};
    clause_begin = Peek().offset;
    if (ConsumeKeyword("WHERE")) {
      Result<ExprPtr> where = ParseOrExpr();
      if (!where.ok()) {
        return where.status();
      }
      query.where = std::move(where).value();
      query.spans.where = {clause_begin, PrevEnd()};
    }
    clause_begin = Peek().offset;
    if (Consume(TokenKind::kAt)) {
      Status s = ParseTargets(&query.targets);
      if (!s.ok()) {
        return s;
      }
      query.spans.targets = {clause_begin, PrevEnd()};
    }
    clause_begin = Peek().offset;
    if (ConsumeKeyword("GROUP")) {
      if (!ConsumeKeyword("BY")) {
        return Error("expected BY after GROUP");
      }
      for (;;) {
        Result<ExprPtr> ref = ParseFieldRef();
        if (!ref.ok()) {
          return ref.status();
        }
        query.group_by.push_back(std::move(ref).value());
        if (!Consume(TokenKind::kComma)) {
          break;
        }
      }
      query.spans.group_by = {clause_begin, PrevEnd()};
    }
    clause_begin = Peek().offset;
    if (ConsumeKeyword("WINDOW")) {
      Result<TimeMicros> d = ParseDuration();
      if (!d.ok()) {
        return d.status();
      }
      query.window_micros = *d;
      if (ConsumeKeyword("SLIDE")) {
        Result<TimeMicros> s = ParseDuration();
        if (!s.ok()) {
          return s.status();
        }
        query.slide_micros = *s;
      }
      query.spans.window = {clause_begin, PrevEnd()};
    }
    clause_begin = Peek().offset;
    if (ConsumeKeyword("START")) {
      Result<TimeMicros> d = ParseDuration();
      if (!d.ok()) {
        return d.status();
      }
      query.start_offset_micros = *d;
      query.spans.start = {clause_begin, PrevEnd()};
    }
    clause_begin = Peek().offset;
    if (ConsumeKeyword("DURATION")) {
      Result<TimeMicros> d = ParseDuration();
      if (!d.ok()) {
        return d.status();
      }
      query.duration_micros = *d;
      query.spans.duration = {clause_begin, PrevEnd()};
    }
    clause_begin = Peek().offset;
    while (ConsumeKeyword("SAMPLE")) {
      const bool hosts = ConsumeKeyword("HOSTS");
      const bool events = !hosts && ConsumeKeyword("EVENTS");
      if (!hosts && !events) {
        return Error("expected HOSTS or EVENTS after SAMPLE");
      }
      Result<double> rate = ParsePercent();
      if (!rate.ok()) {
        return rate.status();
      }
      if (hosts) {
        query.host_sample_rate = *rate;
        query.spans.sample_hosts = {clause_begin, PrevEnd()};
      } else {
        query.event_sample_rate = *rate;
        query.spans.sample_events = {clause_begin, PrevEnd()};
      }
      clause_begin = Peek().offset;
    }
    Consume(TokenKind::kSemicolon);
    if (Peek().kind != TokenKind::kEnd) {
      return Error(StrFormat("unexpected %s after end of query",
                             TokenKindName(Peek().kind)));
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }

  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool Consume(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdentifier && EqualsIgnoreCase(t.text, kw);
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(std::string message) const {
    return InvalidArgument(StrFormat("%s at offset %zu", message.c_str(),
                                     Peek().offset));
  }

  // One past the last byte of the most recently consumed token.
  size_t PrevEnd() const {
    return pos_ == 0 ? 0 : tokens_[pos_ - 1].end_offset;
  }

  // Stamps [begin, end-of-previous-token) onto a freshly built node.
  ExprPtr Spanned(ExprPtr e, size_t begin) const {
    e->span = {begin, PrevEnd()};
    return e;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    Result<ExprPtr> expr = ParseOrExpr();
    if (!expr.ok()) {
      return expr.status();
    }
    item.expr = std::move(expr).value();
    if (ConsumeKeyword("AS")) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected alias after AS");
      }
      item.alias = Next().text;
    }
    return item;
  }

  Result<ExprPtr> ParseOrExpr() {
    const size_t begin = Peek().offset;
    Result<ExprPtr> lhs = ParseAndExpr();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr expr = std::move(lhs).value();
    while (ConsumeKeyword("OR")) {
      Result<ExprPtr> rhs = ParseAndExpr();
      if (!rhs.ok()) {
        return rhs;
      }
      expr = Spanned(Expr::MakeBinary(BinaryOp::kOr, std::move(expr),
                                      std::move(rhs).value()),
                     begin);
    }
    return expr;
  }

  Result<ExprPtr> ParseAndExpr() {
    const size_t begin = Peek().offset;
    Result<ExprPtr> lhs = ParseNotExpr();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr expr = std::move(lhs).value();
    while (ConsumeKeyword("AND")) {
      Result<ExprPtr> rhs = ParseNotExpr();
      if (!rhs.ok()) {
        return rhs;
      }
      expr = Spanned(Expr::MakeBinary(BinaryOp::kAnd, std::move(expr),
                                      std::move(rhs).value()),
                     begin);
    }
    return expr;
  }

  Result<ExprPtr> ParseNotExpr() {
    const size_t begin = Peek().offset;
    if (ConsumeKeyword("NOT")) {
      Result<ExprPtr> operand = ParseNotExpr();
      if (!operand.ok()) {
        return operand;
      }
      return Spanned(Expr::MakeUnary(UnaryOp::kNot, std::move(operand).value()),
                     begin);
    }
    return ParseCmpExpr();
  }

  Result<ExprPtr> ParseCmpExpr() {
    const size_t begin = Peek().offset;
    Result<ExprPtr> lhs = ParseAddExpr();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr expr = std::move(lhs).value();
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        if (PeekKeyword("IN")) {
          ++pos_;
          return ParseInList(std::move(expr), begin);
        }
        if (PeekKeyword("CONTAINS")) {
          ++pos_;
          Result<ExprPtr> rhs = ParseAddExpr();
          if (!rhs.ok()) {
            return rhs;
          }
          return Spanned(Expr::MakeBinary(BinaryOp::kContains, std::move(expr),
                                          std::move(rhs).value()),
                         begin);
        }
        return expr;
    }
    ++pos_;
    Result<ExprPtr> rhs = ParseAddExpr();
    if (!rhs.ok()) {
      return rhs;
    }
    return Spanned(
        Expr::MakeBinary(op, std::move(expr), std::move(rhs).value()), begin);
  }

  Result<ExprPtr> ParseInList(ExprPtr probe, size_t begin) {
    if (!Consume(TokenKind::kLParen)) {
      return Error("expected '(' after IN");
    }
    std::vector<ExprPtr> members;
    for (;;) {
      Result<ExprPtr> member = ParseAddExpr();
      if (!member.ok()) {
        return member;
      }
      members.push_back(std::move(member).value());
      if (!Consume(TokenKind::kComma)) {
        break;
      }
    }
    if (!Consume(TokenKind::kRParen)) {
      return Error("expected ')' to close IN list");
    }
    return Spanned(Expr::MakeInList(std::move(probe), std::move(members)),
                   begin);
  }

  Result<ExprPtr> ParseAddExpr() {
    const size_t begin = Peek().offset;
    Result<ExprPtr> lhs = ParseMulExpr();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr expr = std::move(lhs).value();
    for (;;) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = BinaryOp::kSub;
      } else {
        return expr;
      }
      ++pos_;
      Result<ExprPtr> rhs = ParseMulExpr();
      if (!rhs.ok()) {
        return rhs;
      }
      expr = Spanned(
          Expr::MakeBinary(op, std::move(expr), std::move(rhs).value()),
          begin);
    }
  }

  Result<ExprPtr> ParseMulExpr() {
    const size_t begin = Peek().offset;
    Result<ExprPtr> lhs = ParseUnary();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr expr = std::move(lhs).value();
    for (;;) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = BinaryOp::kDiv;
      } else {
        return expr;
      }
      ++pos_;
      Result<ExprPtr> rhs = ParseUnary();
      if (!rhs.ok()) {
        return rhs;
      }
      expr = Spanned(
          Expr::MakeBinary(op, std::move(expr), std::move(rhs).value()),
          begin);
    }
  }

  Result<ExprPtr> ParseUnary() {
    const size_t begin = Peek().offset;
    if (Consume(TokenKind::kMinus)) {
      Result<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) {
        return operand;
      }
      return Spanned(
          Expr::MakeUnary(UnaryOp::kNegate, std::move(operand).value()),
          begin);
    }
    return ParsePrimary();
  }

  static Result<AggregateFunc> AggregateFromName(std::string_view name) {
    if (EqualsIgnoreCase(name, "COUNT")) {
      return AggregateFunc::kCount;
    }
    if (EqualsIgnoreCase(name, "SUM")) {
      return AggregateFunc::kSum;
    }
    if (EqualsIgnoreCase(name, "AVG")) {
      return AggregateFunc::kAvg;
    }
    if (EqualsIgnoreCase(name, "MIN")) {
      return AggregateFunc::kMin;
    }
    if (EqualsIgnoreCase(name, "MAX")) {
      return AggregateFunc::kMax;
    }
    if (EqualsIgnoreCase(name, "COUNT_DISTINCT")) {
      return AggregateFunc::kCountDistinct;
    }
    if (EqualsIgnoreCase(name, "TOPK") || EqualsIgnoreCase(name, "TOP_K")) {
      return AggregateFunc::kTopK;
    }
    return NotFound("not an aggregate");
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    const size_t begin = t.offset;
    switch (t.kind) {
      case TokenKind::kInteger: {
        const int64_t v = t.int_value;
        ++pos_;
        return Spanned(Expr::MakeLiteral(Value(v)), begin);
      }
      case TokenKind::kFloat: {
        const double v = t.float_value;
        ++pos_;
        return Spanned(Expr::MakeLiteral(Value(v)), begin);
      }
      case TokenKind::kString: {
        std::string s = t.text;
        ++pos_;
        return Spanned(Expr::MakeLiteral(Value(std::move(s))), begin);
      }
      case TokenKind::kLParen: {
        ++pos_;
        Result<ExprPtr> inner = ParseOrExpr();
        if (!inner.ok()) {
          return inner;
        }
        if (!Consume(TokenKind::kRParen)) {
          return Error("expected ')'");
        }
        // Widen the span over the parentheses.
        return Spanned(std::move(inner).value(), begin);
      }
      case TokenKind::kIdentifier: {
        if (EqualsIgnoreCase(t.text, "TRUE")) {
          ++pos_;
          return Spanned(Expr::MakeLiteral(Value(true)), begin);
        }
        if (EqualsIgnoreCase(t.text, "FALSE")) {
          ++pos_;
          return Spanned(Expr::MakeLiteral(Value(false)), begin);
        }
        if (EqualsIgnoreCase(t.text, "NULL")) {
          ++pos_;
          return Spanned(Expr::MakeLiteral(Value::Null()), begin);
        }
        // Aggregate call?
        if (Peek(1).kind == TokenKind::kLParen) {
          Result<AggregateFunc> func = AggregateFromName(t.text);
          if (func.ok()) {
            return ParseAggregate(*func);
          }
          return Error(StrFormat("unknown function '%s'", t.text.c_str()));
        }
        return ParseFieldRef();
      }
      default:
        return Error(StrFormat("unexpected %s", TokenKindName(t.kind)));
    }
  }

  Result<ExprPtr> ParseAggregate(AggregateFunc func) {
    const size_t begin = Peek().offset;
    ++pos_;  // function name
    if (!Consume(TokenKind::kLParen)) {
      return Error("expected '(' after aggregate name");
    }
    if (func == AggregateFunc::kTopK) {
      if (Peek().kind != TokenKind::kInteger) {
        return Error("TOPK requires a literal integer k as first argument");
      }
      const int64_t k = Next().int_value;
      if (!Consume(TokenKind::kComma)) {
        return Error("expected ',' after TOPK's k");
      }
      Result<ExprPtr> arg = ParseOrExpr();
      if (!arg.ok()) {
        return arg;
      }
      if (!Consume(TokenKind::kRParen)) {
        return Error("expected ')' to close TOPK");
      }
      return Spanned(Expr::MakeTopK(k, std::move(arg).value()), begin);
    }
    // COUNT(*) special case.
    if (func == AggregateFunc::kCount && Peek().kind == TokenKind::kStar) {
      ++pos_;
      if (!Consume(TokenKind::kRParen)) {
        return Error("expected ')' after COUNT(*)");
      }
      return Spanned(Expr::MakeAggregate(AggregateFunc::kCount, nullptr),
                     begin);
    }
    Result<ExprPtr> arg = ParseOrExpr();
    if (!arg.ok()) {
      return arg;
    }
    if (!Consume(TokenKind::kRParen)) {
      return Error("expected ')' to close aggregate");
    }
    return Spanned(Expr::MakeAggregate(func, std::move(arg).value()), begin);
  }

  Result<ExprPtr> ParseFieldRef() {
    const size_t begin = Peek().offset;
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected field reference");
    }
    // A dotted chain: [event_type .] field [. nested_path ...]. Whether the
    // first segment is a qualifier is settled by the analyzer against the
    // FROM clause.
    std::vector<std::string> segments;
    segments.push_back(Next().text);
    while (Consume(TokenKind::kDot)) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected field name after '.'");
      }
      segments.push_back(Next().text);
    }
    ExprPtr ref;
    if (segments.size() == 1) {
      ref = Expr::MakeFieldRef("", std::move(segments[0]));
    } else {
      ref = Expr::MakeFieldRef(std::move(segments[0]),
                               std::move(segments[1]));
      for (size_t i = 2; i < segments.size(); ++i) {
        ref->path.push_back(std::move(segments[i]));
      }
    }
    return Spanned(std::move(ref), begin);
  }

  // Target names (services, hosts, data centers) may be bare identifiers
  // or quoted strings — production host names contain dashes.
  Result<std::string> ParseTargetName(const char* what) {
    if (Peek().kind == TokenKind::kIdentifier ||
        Peek().kind == TokenKind::kString) {
      return Next().text;
    }
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("expected %s at offset %zu", what,
                            Peek().offset));
  }

  Status ParseTargets(TargetSpec* targets) {
    if (!Consume(TokenKind::kLBracket)) {
      return Error("expected '[' after '@'");
    }
    for (;;) {
      if (ConsumeKeyword("SERVICE")) {
        if (!ConsumeKeyword("IN")) {
          return Error("expected IN after SERVICE");
        }
        Result<std::string> name = ParseTargetName("service name");
        if (!name.ok()) {
          return name.status();
        }
        targets->services.push_back(std::move(name).value());
      } else if (ConsumeKeyword("SERVERS")) {
        if (!ConsumeKeyword("IN")) {
          return Error("expected IN after SERVERS");
        }
        if (!Consume(TokenKind::kLParen)) {
          return Error("expected '(' after SERVERS IN");
        }
        for (;;) {
          Result<std::string> name = ParseTargetName("host name");
          if (!name.ok()) {
            return name.status();
          }
          targets->hosts.push_back(std::move(name).value());
          if (!Consume(TokenKind::kComma)) {
            break;
          }
        }
        if (!Consume(TokenKind::kRParen)) {
          return Error("expected ')' to close SERVERS IN list");
        }
      } else if (ConsumeKeyword("SERVER")) {
        if (!Consume(TokenKind::kEq)) {
          return Error("expected '=' after SERVER");
        }
        Result<std::string> name = ParseTargetName("host name");
        if (!name.ok()) {
          return name.status();
        }
        targets->hosts.push_back(std::move(name).value());
      } else if (ConsumeKeyword("DATACENTER")) {
        if (!Consume(TokenKind::kEq)) {
          return Error("expected '=' after DATACENTER");
        }
        Result<std::string> name = ParseTargetName("data center name");
        if (!name.ok()) {
          return name.status();
        }
        targets->datacenters.push_back(std::move(name).value());
      } else {
        return Error("expected SERVICE, SERVER, SERVERS or DATACENTER");
      }
      if (ConsumeKeyword("AND")) {
        continue;
      }
      break;
    }
    if (!Consume(TokenKind::kRBracket)) {
      return Error("expected ']' to close target clause");
    }
    return OkStatus();
  }

  Result<TimeMicros> ParseDuration() {
    double amount;
    if (Peek().kind == TokenKind::kInteger) {
      amount = static_cast<double>(Next().int_value);
    } else if (Peek().kind == TokenKind::kFloat) {
      amount = Next().float_value;
    } else {
      return Error("expected a number in duration");
    }
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected a time unit (us/ms/s/m/h/d)");
    }
    const std::string unit = AsciiToLower(Next().text);
    double scale;
    if (unit == "us" || unit == "micros") {
      scale = 1;
    } else if (unit == "ms" || unit == "millis") {
      scale = kMicrosPerMilli;
    } else if (unit == "s" || unit == "sec" || unit == "second" ||
               unit == "seconds") {
      scale = kMicrosPerSecond;
    } else if (unit == "m" || unit == "min" || unit == "minute" ||
               unit == "minutes") {
      scale = kMicrosPerMinute;
    } else if (unit == "h" || unit == "hour" || unit == "hours") {
      scale = kMicrosPerHour;
    } else if (unit == "d" || unit == "day" || unit == "days") {
      scale = kMicrosPerDay;
    } else {
      return Error(StrFormat("unknown time unit '%s'", unit.c_str()));
    }
    const double micros = amount * scale;
    if (micros <= 0) {
      return Error("duration must be positive");
    }
    return static_cast<TimeMicros>(micros);
  }

  Result<double> ParsePercent() {
    double amount;
    if (Peek().kind == TokenKind::kInteger) {
      amount = static_cast<double>(Next().int_value);
    } else if (Peek().kind == TokenKind::kFloat) {
      amount = Next().float_value;
    } else {
      return Error("expected a number for sampling rate");
    }
    if (!Consume(TokenKind::kPercent)) {
      return Error("expected '%' after sampling rate");
    }
    if (amount <= 0 || amount > 100) {
      return Error("sampling rate must be in (0, 100]");
    }
    return amount / 100.0;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) {
    return tokens.status();
  }
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace scrub
