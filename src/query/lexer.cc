#include "src/query/lexer.h"

#include <cctype>
#include <cstdlib>

#include "src/common/strings.h"

namespace scrub {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kFloat:
      return "float";
    case TokenKind::kString:
      return "string";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kAt:
      return "'@'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();

  auto push = [&](TokenKind kind, size_t offset, size_t end,
                  std::string spelling = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(spelling);
    t.offset = offset;
    t.end_offset = end;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      while (i < n && text[i] != '\n') {
        ++i;
      }
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(text[j])) {
        ++j;
      }
      push(TokenKind::kIdentifier, start, j,
           std::string(text.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      if (j < n && text[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) {
          ++j;
        }
      }
      // Exponent.
      if (j < n && (text[j] == 'e' || text[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (text[k] == '+' || text[k] == '-')) {
          ++k;
        }
        if (k < n && std::isdigit(static_cast<unsigned char>(text[k]))) {
          is_float = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) {
            ++j;
          }
        }
      }
      const std::string number(text.substr(i, j - i));
      Token t;
      t.offset = start;
      t.end_offset = j;
      t.text = number;
      if (is_float) {
        t.kind = TokenKind::kFloat;
        t.float_value = std::strtod(number.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInteger;
        t.int_value = std::strtoll(number.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      size_t j = i + 1;
      std::string contents;
      bool closed = false;
      while (j < n) {
        if (text[j] == quote) {
          closed = true;
          break;
        }
        if (text[j] == '\\' && j + 1 < n) {
          contents.push_back(text[j + 1]);
          j += 2;
          continue;
        }
        contents.push_back(text[j]);
        ++j;
      }
      if (!closed) {
        return InvalidArgument(
            StrFormat("unterminated string at offset %zu", start));
      }
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(contents);
      t.offset = start;
      t.end_offset = j + 1;
      tokens.push_back(std::move(t));
      i = j + 1;
      continue;
    }
    switch (c) {
      case ',':
        push(TokenKind::kComma, start, start + 1);
        ++i;
        continue;
      case ';':
        push(TokenKind::kSemicolon, start, start + 1);
        ++i;
        continue;
      case '.':
        push(TokenKind::kDot, start, start + 1);
        ++i;
        continue;
      case '*':
        push(TokenKind::kStar, start, start + 1);
        ++i;
        continue;
      case '+':
        push(TokenKind::kPlus, start, start + 1);
        ++i;
        continue;
      case '-':
        push(TokenKind::kMinus, start, start + 1);
        ++i;
        continue;
      case '/':
        push(TokenKind::kSlash, start, start + 1);
        ++i;
        continue;
      case '%':
        push(TokenKind::kPercent, start, start + 1);
        ++i;
        continue;
      case '(':
        push(TokenKind::kLParen, start, start + 1);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, start, start + 1);
        ++i;
        continue;
      case '@':
        push(TokenKind::kAt, start, start + 1);
        ++i;
        continue;
      case '[':
        push(TokenKind::kLBracket, start, start + 1);
        ++i;
        continue;
      case ']':
        push(TokenKind::kRBracket, start, start + 1);
        ++i;
        continue;
      case '=':
        push(TokenKind::kEq, start, start + 1);
        ++i;
        continue;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kNe, start, start + 2);
          i += 2;
          continue;
        }
        return InvalidArgument(
            StrFormat("unexpected '!' at offset %zu (did you mean '!=')",
                      start));
      case '<':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kLe, start, start + 2);
          i += 2;
        } else if (i + 1 < n && text[i + 1] == '>') {
          push(TokenKind::kNe, start, start + 2);
          i += 2;
        } else {
          push(TokenKind::kLt, start, start + 1);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kGe, start, start + 2);
          i += 2;
        } else {
          push(TokenKind::kGt, start, start + 1);
          ++i;
        }
        continue;
      default:
        return InvalidArgument(
            StrFormat("unexpected character '%c' at offset %zu", c, start));
    }
  }
  push(TokenKind::kEnd, n, n);
  return tokens;
}

}  // namespace scrub
