// Lexer for the Scrub query language.

#ifndef SRC_QUERY_LEXER_H_
#define SRC_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/query/token.h"

namespace scrub {

// Tokenizes the whole input. Keywords are not distinguished here — they are
// ordinary identifiers; the parser matches them case-insensitively, so field
// names that happen to spell a keyword still work as qualified references.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace scrub

#endif  // SRC_QUERY_LEXER_H_
