// Recursive-descent parser for the Scrub query language.
//
// Grammar (keywords case-insensitive):
//
//   query      := SELECT select_item (',' select_item)*
//                 FROM ident (',' ident)*
//                 [WHERE or_expr]
//                 ['@' '[' target_term (AND target_term)* ']']
//                 [GROUP BY field_ref (',' field_ref)*]
//                 [WINDOW duration]
//                 [START duration]
//                 [DURATION duration]
//                 [SAMPLE HOSTS percent] [SAMPLE EVENTS percent]
//                 [';']
//   select_item:= or_expr [AS ident]
//   or_expr    := and_expr (OR and_expr)*
//   and_expr   := not_expr (AND not_expr)*
//   not_expr   := NOT not_expr | cmp_expr
//   cmp_expr   := add_expr [(=|!=|<|<=|>|>=) add_expr | IN '(' literal_list ')']
//   add_expr   := mul_expr (('+'|'-') mul_expr)*
//   mul_expr   := unary (('*'|'/') unary)*
//   unary      := '-' unary | primary
//   primary    := literal | aggregate | field_ref | '(' or_expr ')'
//   aggregate  := (COUNT|SUM|AVG|MIN|MAX|COUNT_DISTINCT) '(' ('*'|or_expr) ')'
//               | (TOPK|TOP_K) '(' integer ',' or_expr ')'
//   field_ref  := ident ['.' ident]
//   target_term:= SERVICE IN ident | SERVER = ident
//               | SERVERS IN '(' ident (',' ident)* ')' | DATACENTER = ident
//   duration   := (integer|float) unit      -- unit: us|ms|s|sec|seconds|
//                                              m|min|minutes|h|hours|d|days
//   percent    := (integer|float) '%'

#ifndef SRC_QUERY_PARSER_H_
#define SRC_QUERY_PARSER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/query/ast.h"

namespace scrub {

// Parses query text to an AST. Purely syntactic: event/field existence and
// typing are the analyzer's job.
Result<Query> ParseQuery(std::string_view text);

}  // namespace scrub

#endif  // SRC_QUERY_PARSER_H_
