#include "src/baseline/logging_baseline.h"

#include <algorithm>

#include "src/event/wire.h"
#include "src/query/parser.h"
#include "src/plan/plan.h"

namespace scrub {

LoggingPipeline::LoggingPipeline(Scheduler* scheduler, Transport* transport,
                                 HostRegistry* registry,
                                 const SchemaRegistry* schemas,
                                 HostId warehouse_host,
                                 BaselineConfig config)
    : scheduler_(scheduler),
      transport_(transport),
      registry_(registry),
      schemas_(schemas),
      warehouse_host_(warehouse_host),
      config_(config) {}

EventLoggerFn LoggingPipeline::Logger() {
  return [this](HostId host, const Event& event) -> int64_t {
    // Full-fidelity logging: the host pays to serialize every field of
    // every event — no projection, no selection, no sampling.
    const int64_t ns =
        config_.costs.log_fixed_ns +
        config_.costs.log_per_field_ns *
            static_cast<int64_t>(event.field_count()) +
        static_cast<int64_t>(event.WireSize()) *
            config_.costs.serialize_per_byte_ns +
        config_.costs.enqueue_ns;
    registry_->meter(host).ChargeScrub(ns);
    staged_[host].push_back(event);
    return ns;
  };
}

void LoggingPipeline::PumpFlushes() {
  for (auto& [host, events] : staged_) {
    size_t offset = 0;
    while (offset < events.size()) {
      const size_t n =
          std::min(config_.max_batch_events, events.size() - offset);
      std::vector<Event> chunk(events.begin() + static_cast<long>(offset),
                               events.begin() + static_cast<long>(offset + n));
      offset += n;
      const std::string payload = EncodeBatch(chunk);
      const size_t bytes = payload.size();
      transport_->Send(host, warehouse_host_, bytes,
                       TrafficCategory::kBaselineLog,
                       [this, host = host, chunk = std::move(chunk), bytes] {
                         for (const Event& e : chunk) {
                           stored_.push_back(StoredEvent{host, e});
                         }
                         bytes_stored_ += bytes;
                         last_arrival_ =
                             std::max(last_arrival_, scheduler_->Now());
                       });
    }
    events.clear();
  }
}

Result<LoggingPipeline::BatchAnswer> LoggingPipeline::RunQuery(
    std::string_view query_text, const AnalyzerOptions& options) {
  Result<Query> parsed = ParseQuery(query_text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  // Batch queries look backwards over stored history: anchor the span at
  // the epoch and widen it to cover the whole log (and at least one window)
  // before analysis, which enforces window <= duration.
  Query query = parsed->Clone();
  query.start_offset_micros = 0;
  const TimeMicros window = query.window_micros > 0
                                ? query.window_micros
                                : options.default_window_micros;
  query.duration_micros =
      std::max({query.duration_micros, window, last_arrival_ + 1});
  AnalyzerOptions opts = options;
  opts.max_duration_micros =
      std::max(opts.max_duration_micros, query.duration_micros);
  Result<AnalyzedQuery> analyzed = Analyze(query, *schemas_, opts);
  if (!analyzed.ok()) {
    return analyzed.status();
  }
  const AnalyzedQuery& aq = *analyzed;
  Result<QueryPlan> plan = PlanQuery(aq, next_query_id_++, /*submit_time=*/0);
  if (!plan.ok()) {
    return plan.status();
  }

  BatchAnswer answer;
  // Offline execution reuses ScrubCentral: install the central plan, then
  // replay the warehouse through host-side selection/projection.
  ScrubCentral engine(schemas_);
  CentralPlan central_plan = plan->central;
  central_plan.hosts_targeted = 1;
  central_plan.hosts_sampled = 1;
  std::vector<ResultRow>* rows = &answer.rows;
  Status s = engine.InstallQuery(central_plan,
                                 [rows](const ResultRow& row) {
                                   rows->push_back(row);
                                 });
  if (!s.ok()) {
    return s;
  }

  int64_t ns = 0;
  std::unordered_map<HostId, std::vector<Event>> matched;
  for (const StoredEvent& se : stored_) {
    ++answer.events_scanned;
    ns += config_.scan_cost_ns;
    const HostSourcePlan* sp = plan->host.FindSource(se.event.type_name());
    if (sp == nullptr) {
      continue;
    }
    bool pass = true;
    for (const CompiledExpr& conjunct : sp->conjuncts) {
      ns += config_.costs.predicate_term_ns * conjunct.node_count;
      if (!EvalPredicateSingle(conjunct, se.event)) {
        pass = false;
        break;
      }
    }
    if (pass) {
      matched[se.host].push_back(se.event);
    }
  }
  for (auto& [host, events] : matched) {
    EventBatch batch;
    batch.query_id = central_plan.query_id;
    batch.host = host;
    batch.event_count = events.size();
    batch.payload = EncodeBatch(events);
    s = engine.IngestBatch(batch, last_arrival_);
    if (!s.ok()) {
      return s;
    }
    ns += static_cast<int64_t>(events.size()) *
          config_.costs.central_ingest_ns;
  }
  // Close everything.
  engine.OnTick(central_plan.end_time + 10 * kMicrosPerSecond);

  answer.processing_ns = ns + engine.meter().scrub_ns();
  answer.answer_at = last_arrival_ + answer.processing_ns / 1000;
  return answer;
}

}  // namespace scrub
