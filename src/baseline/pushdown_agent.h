// Ablation comparator: host-side aggregation ("pushdown").
//
// Conventional query optimization moves operators toward the data: group-by
// and aggregation would run on the application hosts, shipping only
// aggregated partials. Scrub deliberately rejects this (Sections 2 and 4) —
// this module implements the rejected design so the trade can be measured
// (bench_ablation_pushdown):
//
//  * Pushdown ships fewer bytes when the group cardinality is low (many
//    events fold into few groups).
//  * But the host pays CPU per event for key evaluation + table update, and
//    holds per-(window, group) state whose size is *unbounded and
//    input-dependent* — a grouped query on user_id holds one entry per
//    active user, per window, per query. Under SLOs, that unpredictability
//    is exactly what Scrub refuses to put on the hosts.
//
// Supported subset: single-source queries with COUNT/SUM/AVG/MIN/MAX
// (sketch-based aggregates would need mergeable sketches per host, growing
// state further). A coordinator merges per-host partials into final rows so
// results can be checked against Scrub's.

#ifndef SRC_BASELINE_PUSHDOWN_AGENT_H_
#define SRC_BASELINE_PUSHDOWN_AGENT_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/central/central.h"
#include "src/common/cost_model.h"
#include "src/plan/plan.h"
#include "src/query/analyzer.h"

namespace scrub {

struct PushdownPlan {
  QueryId query_id = 0;
  std::string event_type;
  std::vector<CompiledExpr> conjuncts;
  std::vector<CompiledExpr> group_by;
  std::vector<AggregateSpec> aggregates;
  std::vector<OutputColumn> outputs;
  TimeMicros window_micros = 0;
  TimeMicros start_time = 0;
  TimeMicros end_time = 0;
};

// Fails (kUnimplemented) for joins, raw queries, or sketch aggregates.
Result<PushdownPlan> BuildPushdownPlan(const AnalyzedQuery& analyzed,
                                       QueryId query_id,
                                       TimeMicros submit_time);

// One group's partial aggregates, as shipped host -> coordinator.
struct GroupPartial {
  std::vector<Value> key;
  std::vector<uint64_t> counts;     // per aggregate slot
  std::vector<double> sums;         // per aggregate slot
  std::vector<Value> mins;
  std::vector<Value> maxs;

  size_t WireSize() const;
};

struct PartialBatch {
  QueryId query_id = 0;
  HostId host = kInvalidHost;
  TimeMicros window_start = 0;
  std::vector<GroupPartial> groups;

  size_t WireSize() const;
};

class PushdownAgent {
 public:
  PushdownAgent(HostId host, CostMeter* meter, CostModel costs = {})
      : host_(host), meter_(meter), costs_(costs) {}

  void InstallQuery(PushdownPlan plan);
  void RemoveQuery(QueryId query_id);

  // Applies selection, then updates the host-side group table. Returns the
  // simulated nanoseconds charged (same convention as ScrubAgent).
  int64_t LogEvent(const Event& event);

  // Ships partials for windows that have fully passed `now` (and all state
  // on query expiry).
  std::vector<PartialBatch> Flush(TimeMicros now);

  // Peak number of (window, group) entries ever held — the memory the paper
  // refuses to spend on application hosts.
  size_t peak_state_entries() const { return peak_state_entries_; }
  size_t current_state_entries() const;

 private:
  struct GroupKeyHash {
    size_t operator()(const std::vector<Value>& key) const {
      size_t seed = 0x9b97;
      for (const Value& v : key) {
        seed ^= v.Hash() + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2);
      }
      return seed;
    }
  };
  struct ActiveQuery {
    PushdownPlan plan;
    // window start -> group key -> partial
    std::map<TimeMicros,
             std::unordered_map<std::vector<Value>, GroupPartial,
                                GroupKeyHash>>
        windows;
  };

  TimeMicros WindowStartFor(const ActiveQuery& q, TimeMicros ts) const;

  HostId host_;
  CostMeter* meter_;
  CostModel costs_;
  std::unordered_map<QueryId, ActiveQuery> queries_;
  size_t peak_state_entries_ = 0;
};

// Merges per-host partials and renders final rows (for result parity checks
// against ScrubCentral).
class PushdownCoordinator {
 public:
  explicit PushdownCoordinator(PushdownPlan plan) : plan_(std::move(plan)) {}

  void Ingest(const PartialBatch& batch);
  // Rows for every window seen, sorted by window start.
  std::vector<ResultRow> Finalize() const;

 private:
  struct Merged {
    std::vector<uint64_t> counts;
    std::vector<double> sums;
    std::vector<Value> mins;
    std::vector<Value> maxs;
  };

  PushdownPlan plan_;
  std::map<TimeMicros, std::map<std::string, std::pair<std::vector<Value>,
                                                       Merged>>>
      windows_;  // keyed by rendered group key for deterministic order
};

}  // namespace scrub

#endif  // SRC_BASELINE_PUSHDOWN_AGENT_H_
