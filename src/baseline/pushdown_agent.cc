#include "src/baseline/pushdown_agent.h"

#include <algorithm>

#include "src/common/strings.h"

namespace scrub {

Result<PushdownPlan> BuildPushdownPlan(const AnalyzedQuery& analyzed,
                                       QueryId query_id,
                                       TimeMicros submit_time) {
  const Query& q = analyzed.query;
  if (q.sources.size() != 1) {
    return Unimplemented("pushdown supports single-source queries only");
  }
  if (!analyzed.has_aggregates) {
    return Unimplemented("pushdown supports aggregate queries only");
  }
  if (q.slide_micros != q.window_micros && q.slide_micros != 0) {
    return Unimplemented("pushdown supports tumbling windows only");
  }
  Result<QueryPlan> plan = PlanQuery(analyzed, query_id, submit_time);
  if (!plan.ok()) {
    return plan.status();
  }
  for (const AggregateSpec& spec : plan->central.aggregates) {
    if (spec.func == AggregateFunc::kCountDistinct ||
        spec.func == AggregateFunc::kTopK) {
      return Unimplemented(StrFormat(
          "pushdown does not support %s", AggregateFuncName(spec.func)));
    }
  }
  PushdownPlan out;
  out.query_id = query_id;
  out.event_type = q.sources[0];
  out.conjuncts = std::move(plan->host.sources[0].conjuncts);
  out.group_by = std::move(plan->central.group_by);
  out.aggregates = std::move(plan->central.aggregates);
  out.outputs = std::move(plan->central.outputs);
  out.window_micros = plan->central.window_micros;
  out.start_time = plan->central.start_time;
  out.end_time = plan->central.end_time;
  return out;
}

size_t GroupPartial::WireSize() const {
  size_t n = 8;
  for (const Value& v : key) {
    n += v.WireSize();
  }
  n += counts.size() * 8 + sums.size() * 8;
  for (const Value& v : mins) {
    n += v.WireSize();
  }
  for (const Value& v : maxs) {
    n += v.WireSize();
  }
  return n;
}

size_t PartialBatch::WireSize() const {
  size_t n = 32;
  for (const GroupPartial& g : groups) {
    n += g.WireSize();
  }
  return n;
}

void PushdownAgent::InstallQuery(PushdownPlan plan) {
  const QueryId id = plan.query_id;
  queries_.erase(id);
  ActiveQuery q;
  q.plan = std::move(plan);
  queries_.emplace(id, std::move(q));
}

void PushdownAgent::RemoveQuery(QueryId query_id) {
  queries_.erase(query_id);
}

TimeMicros PushdownAgent::WindowStartFor(const ActiveQuery& q,
                                         TimeMicros ts) const {
  const TimeMicros w = q.plan.window_micros;
  if (w <= 0) {
    return q.plan.start_time;
  }
  return q.plan.start_time + ((ts - q.plan.start_time) / w) * w;
}

size_t PushdownAgent::current_state_entries() const {
  size_t n = 0;
  for (const auto& [qid, q] : queries_) {
    for (const auto& [start, groups] : q.windows) {
      n += groups.size();
    }
  }
  return n;
}

int64_t PushdownAgent::LogEvent(const Event& event) {
  int64_t ns = costs_.log_fixed_ns +
               costs_.log_per_field_ns *
                   static_cast<int64_t>(event.field_count());
  const TimeMicros ts = event.timestamp();
  for (auto& [qid, q] : queries_) {
    if (ts < q.plan.start_time || ts >= q.plan.end_time ||
        event.type_name() != q.plan.event_type) {
      continue;
    }
    // Selection: identical to Scrub's host-side cost.
    bool pass = true;
    for (const CompiledExpr& conjunct : q.plan.conjuncts) {
      ns += costs_.predicate_term_ns * conjunct.node_count;
      if (!EvalPredicateSingle(conjunct, event)) {
        pass = false;
        break;
      }
    }
    if (!pass) {
      continue;
    }
    // Group-by + aggregation ON THE HOST — the work Scrub refuses to do
    // here.
    EventTuple tuple{&event};
    std::vector<Value> key;
    key.reserve(q.plan.group_by.size());
    for (const CompiledExpr& g : q.plan.group_by) {
      ns += costs_.predicate_term_ns * g.node_count;
      key.push_back(EvalExpr(g, tuple));
    }
    auto& groups = q.windows[WindowStartFor(q, ts)];
    GroupPartial& partial = groups[key];
    if (partial.counts.empty()) {
      ns += costs_.enqueue_ns;  // table insert
      partial.key = key;
      partial.counts.assign(q.plan.aggregates.size(), 0);
      partial.sums.assign(q.plan.aggregates.size(), 0.0);
      partial.mins.resize(q.plan.aggregates.size());
      partial.maxs.resize(q.plan.aggregates.size());
    }
    for (size_t i = 0; i < q.plan.aggregates.size(); ++i) {
      const AggregateSpec& spec = q.plan.aggregates[i];
      ns += costs_.central_group_update_ns;  // same unit work, host-side now
      Value arg;
      if (spec.has_arg) {
        arg = EvalExpr(spec.arg, tuple);
        if (arg.is_null()) {
          continue;
        }
      }
      switch (spec.func) {
        case AggregateFunc::kCount:
          ++partial.counts[i];
          break;
        case AggregateFunc::kSum:
        case AggregateFunc::kAvg:
          ++partial.counts[i];
          partial.sums[i] += arg.is_numeric() ? arg.AsNumber() : 0.0;
          break;
        case AggregateFunc::kMin:
          if (partial.mins[i].is_null() ||
              arg.Compare(partial.mins[i]) < 0) {
            partial.mins[i] = arg;
          }
          break;
        case AggregateFunc::kMax:
          if (partial.maxs[i].is_null() ||
              arg.Compare(partial.maxs[i]) > 0) {
            partial.maxs[i] = arg;
          }
          break;
        default:
          break;
      }
    }
  }
  peak_state_entries_ = std::max(peak_state_entries_,
                                 current_state_entries());
  meter_->ChargeScrub(ns);
  return ns;
}

std::vector<PartialBatch> PushdownAgent::Flush(TimeMicros now) {
  std::vector<PartialBatch> batches;
  for (auto it = queries_.begin(); it != queries_.end();) {
    ActiveQuery& q = it->second;
    const bool expired = now >= q.plan.end_time;
    for (auto wit = q.windows.begin(); wit != q.windows.end();) {
      const TimeMicros window_end = wit->first + q.plan.window_micros;
      if (!expired && window_end > now) {
        break;  // window still open; later windows too (map is ordered)
      }
      PartialBatch batch;
      batch.query_id = it->first;
      batch.host = host_;
      batch.window_start = wit->first;
      batch.groups.reserve(wit->second.size());
      for (auto& [key, partial] : wit->second) {
        batch.groups.push_back(std::move(partial));
      }
      meter_->ChargeScrub(static_cast<int64_t>(batch.WireSize()) *
                          costs_.serialize_per_byte_ns);
      batches.push_back(std::move(batch));
      wit = q.windows.erase(wit);
    }
    if (expired) {
      it = queries_.erase(it);
    } else {
      ++it;
    }
  }
  return batches;
}

void PushdownCoordinator::Ingest(const PartialBatch& batch) {
  auto& window = windows_[batch.window_start];
  for (const GroupPartial& g : batch.groups) {
    std::string rendered;
    for (const Value& v : g.key) {
      rendered += v.ToString();
      rendered += '|';
    }
    auto& [key, merged] = window[rendered];
    if (merged.counts.empty()) {
      key = g.key;
      merged.counts.assign(g.counts.size(), 0);
      merged.sums.assign(g.sums.size(), 0.0);
      merged.mins.resize(g.mins.size());
      merged.maxs.resize(g.maxs.size());
    }
    for (size_t i = 0; i < g.counts.size(); ++i) {
      merged.counts[i] += g.counts[i];
      merged.sums[i] += g.sums[i];
      if (!g.mins[i].is_null() &&
          (merged.mins[i].is_null() ||
           g.mins[i].Compare(merged.mins[i]) < 0)) {
        merged.mins[i] = g.mins[i];
      }
      if (!g.maxs[i].is_null() &&
          (merged.maxs[i].is_null() ||
           g.maxs[i].Compare(merged.maxs[i]) > 0)) {
        merged.maxs[i] = g.maxs[i];
      }
    }
  }
}

std::vector<ResultRow> PushdownCoordinator::Finalize() const {
  std::vector<ResultRow> rows;
  for (const auto& [start, groups] : windows_) {
    for (const auto& [rendered, entry] : groups) {
      const auto& [key, merged] = entry;
      std::vector<Value> agg_values(plan_.aggregates.size());
      for (size_t i = 0; i < plan_.aggregates.size(); ++i) {
        switch (plan_.aggregates[i].func) {
          case AggregateFunc::kCount:
            agg_values[i] = Value(static_cast<int64_t>(merged.counts[i]));
            break;
          case AggregateFunc::kSum:
            agg_values[i] = Value(merged.sums[i]);
            break;
          case AggregateFunc::kAvg:
            agg_values[i] =
                merged.counts[i] == 0
                    ? Value::Null()
                    : Value(merged.sums[i] /
                            static_cast<double>(merged.counts[i]));
            break;
          case AggregateFunc::kMin:
            agg_values[i] = merged.mins[i];
            break;
          case AggregateFunc::kMax:
            agg_values[i] = merged.maxs[i];
            break;
          default:
            break;
        }
      }
      ResultRow row;
      row.query_id = plan_.query_id;
      row.window_start = start;
      row.window_end = start + plan_.window_micros;
      for (const OutputColumn& column : plan_.outputs) {
        row.values.push_back(EvalOutputExpr(column.expr, key, agg_values));
        row.error_bounds.push_back(0.0);
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace scrub
