// The full-logging baseline Scrub is contrasted against (Sections 1, 8.1,
// 8.4 of the paper).
//
// Discipline: queries are not known a priori, so EVERY event, with ALL its
// fields, is serialized on the host, shipped over the network to a central
// warehouse, stored, and queried later in batch. This pipeline reuses the
// same event codec and the same query-answering machinery (ScrubCentral run
// offline over the stored log), so the comparison with Scrub isolates
// exactly the strategy difference: ship-everything-then-ask versus
// ask-then-ship-only-what-matches.
//
// The E11 experiment reads three costs from here: host CPU spent
// serializing, bytes moved (TrafficCategory::kBaselineLog), and
// time-to-answer (data must finish arriving before the batch job can run).

#ifndef SRC_BASELINE_LOGGING_BASELINE_H_
#define SRC_BASELINE_LOGGING_BASELINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/bidsim/platform.h"
#include "src/central/central.h"
#include "src/cluster/host_registry.h"
#include "src/cluster/scheduler.h"
#include "src/cluster/transport.h"
#include "src/query/analyzer.h"

namespace scrub {

struct BaselineConfig {
  size_t max_batch_events = 1024;
  // Per-event scan cost of the batch query engine (a Hadoop-style pass over
  // the warehouse touches every stored event).
  int64_t scan_cost_ns = 250;
  CostModel costs;
};

class LoggingPipeline {
 public:
  LoggingPipeline(Scheduler* scheduler, Transport* transport,
                  HostRegistry* registry, const SchemaRegistry* schemas,
                  HostId warehouse_host, BaselineConfig config = {});

  // The platform-facing logger: charges the host for full serialization and
  // stages the event for shipping. Install via
  // platform.SetEventLogger(pipeline.Logger()).
  EventLoggerFn Logger();

  // Ships staged events to the warehouse. Call on a flush cadence.
  void PumpFlushes();

  // ---- Warehouse state ----
  uint64_t events_stored() const { return stored_.size(); }
  uint64_t bytes_stored() const { return bytes_stored_; }
  // Simulated instant the last shipped event landed in the warehouse.
  TimeMicros data_complete_at() const { return last_arrival_; }

  // ---- Batch querying ----
  struct BatchAnswer {
    std::vector<ResultRow> rows;
    uint64_t events_scanned = 0;  // full warehouse scan
    int64_t processing_ns = 0;    // scan + query execution cost
    // Earliest simulated time the answer could exist: all data arrived,
    // then the batch job ran.
    TimeMicros answer_at = 0;
  };
  Result<BatchAnswer> RunQuery(std::string_view query_text,
                               const AnalyzerOptions& options = {});

 private:
  struct StoredEvent {
    HostId host = kInvalidHost;
    Event event;
  };

  Scheduler* scheduler_;
  Transport* transport_;
  HostRegistry* registry_;
  const SchemaRegistry* schemas_;
  HostId warehouse_host_;
  BaselineConfig config_;

  // Host-side staging: events waiting for the next ship.
  std::unordered_map<HostId, std::vector<Event>> staged_;
  std::vector<StoredEvent> stored_;
  uint64_t bytes_stored_ = 0;
  TimeMicros last_arrival_ = 0;
  QueryId next_query_id_ = 1;
};

}  // namespace scrub

#endif  // SRC_BASELINE_LOGGING_BASELINE_H_
