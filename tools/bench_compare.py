#!/usr/bin/env python3
"""Benchmark regression gate for BENCH_scrub.json.

Compares a freshly produced benchmark file (tools/bench_run.sh output)
against the committed baseline:

  * parallel_central runs, keyed by (shards, workers): events/sec must not
    drop by more than the threshold (default 15%);
  * ingest runs, keyed by pipeline (row / columnar): same events/sec gate;
  * the fresh ingest section's columnar speedup over row must hold the
    architectural floor (default 1.5x) — this one is absolute, not relative
    to the baseline, so the columnar data plane can never quietly decay into
    a wash;
  * the fresh ingest.join section's join_columnar speedup over row holds the
    same kind of absolute floor (default 1.5x), and the fresh ingest.dict
    section's wire_bytes_reduction must hold its floor (default 1.3x) — the
    dictionary encoding has to keep paying for itself;
  * the fresh ingest.metrics section's metrics-on over metrics-off
    events/sec ratio must hold an absolute floor (default 0.95) — the
    operator-metrics plane is on by default and its tax must stay small;
  * the multitenant section must show predicted-cost admission actually
    working (admits AND cost rejections, counts summing to submissions),
    with the usual relative events/sec gate on admitted-tenant throughput;
  * fleet runs, keyed by topology (flat / hierarchical / *_preagg):
    central-link bytes and central CPU must not GROW by more than the
    threshold, and the fresh flat/hierarchical bytes ratio must hold the
    scaling floor (default 5x) — the combiner tier's reason to exist.

Improvements never fail. Configurations present on only one side are FATAL
in both directions: a section silently missing from the fresh run means the
bench stopped measuring it (the gate would otherwise pass vacuously), and a
fresh section with no baseline means BENCH_scrub.json was not regenerated —
refresh it with tools/bench_run.sh and commit it.

Usage:
    tools/bench_compare.py BASELINE FRESH [--threshold 0.15]
                           [--min-ingest-speedup 1.5]
                           [--min-fleet-bytes-reduction 5.0]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def parallel_runs(doc):
    # New layout nests the sweep under "parallel_central"; the legacy layout
    # was that section alone at top level.
    section = doc.get("parallel_central", doc)
    return {(r["shards"], r["workers"]): r for r in section.get("runs", [])}


def ingest_runs(doc):
    section = doc.get("ingest") or {}
    return ({r["pipeline"]: r for r in section.get("runs", [])},
            section.get("speedup_vs_row"))


def ingest_join_runs(doc):
    # The join case nests under ingest.join (added with the executor's
    # columnar join path). Coverage is fatal in both directions, so a
    # baseline predating a new section must be regenerated, not ignored.
    section = (doc.get("ingest") or {}).get("join") or {}
    return ({r["pipeline"]: r for r in section.get("runs", [])},
            section.get("speedup_vs_row"))


def ingest_dict_runs(doc):
    # The dict case (a kept low-cardinality string column, dictionary-
    # encoded on the wire) nests under ingest.dict; absent in pre-dict
    # baselines. Gated on events/sec like every case, plus an absolute
    # wire-bytes-reduction floor vs the row pipeline.
    section = (doc.get("ingest") or {}).get("dict") or {}
    return ({r["pipeline"]: r for r in section.get("runs", [])},
            section.get("wire_bytes_reduction"))


def ingest_spill_runs(doc):
    # The spill case (state-budget tiers over a high-cardinality scan) nests
    # under ingest.spill; absent in pre-spill baselines. Only the
    # "unlimited" tier is gated — budgeted tiers pay serialize + replay by
    # design and are reported informationally.
    section = (doc.get("ingest") or {}).get("spill") or {}
    return {r["pipeline"]: r for r in section.get("runs", [])}


def ingest_filter_runs(doc):
    # The filter case (legacy tree conjuncts vs lowered IR programs) nests
    # under ingest.filter; absent in pre-IR baselines.
    section = (doc.get("ingest") or {}).get("filter") or {}
    return ({r["pipeline"]: r for r in section.get("runs", [])},
            section.get("speedup_vs_legacy"))


def ingest_metrics_runs(doc):
    # The metrics case (identical columnar scan, operator-metrics plane on
    # vs off) nests under ingest.metrics; absent in pre-metrics baselines.
    # Gated on events/sec like every case, plus an absolute on/off ratio
    # floor — the observability tax must stay within 5%.
    section = (doc.get("ingest") or {}).get("metrics") or {}
    return ({r["pipeline"]: r for r in section.get("runs", [])},
            section.get("events_per_sec_ratio"))


def multitenant_run(doc):
    return doc.get("multitenant") or {}


def gate_multitenant(baseline, fresh, threshold, failures):
    """The multitenant bench is gated structurally: predicted-cost admission
    must have actually admitted AND rejected work, the accounting identity
    must hold, and central throughput across the admitted tenants gets the
    usual relative events/sec gate."""
    base = multitenant_run(baseline)
    cur = multitenant_run(fresh)
    gate_coverage("multitenant", {"scenario": 1} if base else {},
                  {"scenario": 1} if cur else {}, failures)
    if not base or not cur:
        return
    admitted = cur.get("admitted", 0)
    rejected_cost = cur.get("rejected_cost", 0)
    rejected_limit = cur.get("rejected_limit", 0)
    submitted = cur.get("queries_submitted", 0)
    line = (f"multitenant admission: {admitted} admitted, "
            f"{rejected_cost} cost-rejected, {rejected_limit} "
            f"limit-rejected of {submitted}")
    if admitted <= 0 or rejected_cost <= 0 or \
            admitted + rejected_cost + rejected_limit != submitted:
        failures.append(line + " (needs admits AND cost rejections, "
                        "and the counts must sum to submissions)")
        print("FAIL " + line)
    else:
        print("ok   " + line)
    gate_events_per_sec("multitenant", {"all_tenants": base},
                        {"all_tenants": cur}, threshold, failures)


def gate_coverage(label, baseline, fresh, failures):
    """Both directions fatal: a configuration the baseline knows must be
    measured by the fresh run, and a fresh configuration must have a
    committed baseline (regenerate BENCH_scrub.json)."""
    for key in sorted(set(baseline) - set(fresh)):
        line = f"{label} {key}: present in baseline, missing from fresh run"
        failures.append(line)
        print("FAIL " + line)
    for key in sorted(set(fresh) - set(baseline)):
        line = (f"{label} {key}: new configuration with no baseline — "
                "refresh BENCH_scrub.json with tools/bench_run.sh")
        failures.append(line)
        print("FAIL " + line)


def gate_events_per_sec(label, baseline, fresh, threshold, failures):
    gate_coverage(label, baseline, fresh, failures)
    for key in sorted(baseline):
        base = baseline[key]
        cur = fresh.get(key)
        name = " ".join(f"{k}={v}" for k, v in zip(
            ("shards", "workers") if isinstance(key, tuple) else ("pipeline",),
            key if isinstance(key, tuple) else (key,)))
        if cur is None:
            continue  # already failed by gate_coverage
        base_eps = base["events_per_sec"]
        cur_eps = cur["events_per_sec"]
        delta = (cur_eps - base_eps) / base_eps if base_eps else 0.0
        line = (f"{label} {name}: "
                f"{base_eps:,.0f} -> {cur_eps:,.0f} ev/s ({delta:+.1%})")
        if delta < -threshold:
            failures.append(line)
            print("FAIL " + line)
        else:
            print("ok   " + line)


def fleet_runs(doc):
    section = doc.get("fleet") or {}
    return ({r["topology"]: r for r in section.get("runs", [])},
            section.get("bytes_reduction"))


def gate_fleet(baseline, fresh, threshold, min_reduction, failures):
    base_runs, _ = fleet_runs(baseline)
    fresh_runs, fresh_reduction = fleet_runs(fresh)
    gate_coverage("fleet", base_runs, fresh_runs, failures)
    # Bytes and modeled CPU regress UPWARD: gate growth, celebrate shrinkage.
    for key in sorted(base_runs):
        cur = fresh_runs.get(key)
        if cur is None:
            continue  # already failed by gate_coverage
        base = base_runs[key]
        for metric, unit in (("central_link_bytes", "B"),
                             ("central_cpu_seconds", "s")):
            base_v = base[metric]
            cur_v = cur[metric]
            delta = (cur_v - base_v) / base_v if base_v else 0.0
            line = (f"fleet {key} {metric}: "
                    f"{base_v:,.6g} -> {cur_v:,.6g} {unit} ({delta:+.1%})")
            if delta > threshold:
                failures.append(line)
                print("FAIL " + line)
            else:
                print("ok   " + line)
    if fresh_runs:
        if fresh_reduction is None:
            line = "fleet: fresh run has no bytes_reduction field"
            failures.append(line)
            print("FAIL " + line)
        else:
            # Absolute floor, like the ingest speedup: the combiner tier must
            # keep the central link sublinear in fleet size or the
            # hierarchical story quietly evaporated.
            line = (f"fleet flat/hierarchical bytes reduction: "
                    f"{fresh_reduction:.2f}x (floor {min_reduction:.2f}x)")
            if fresh_reduction < min_reduction:
                failures.append(line)
                print("FAIL " + line)
            else:
                print("ok   " + line)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated fractional events/sec regression")
    parser.add_argument("--min-ingest-speedup", type=float, default=1.5,
                        help="columnar-over-row floor for the fresh ingest "
                             "bench")
    parser.add_argument("--min-join-speedup", type=float, default=1.5,
                        help="join_columnar-over-row floor for the fresh "
                             "ingest join bench")
    parser.add_argument("--min-dict-bytes-reduction", type=float, default=1.3,
                        help="row-over-columnar wire-bytes floor for the "
                             "fresh ingest dict bench")
    parser.add_argument("--min-filter-speedup", type=float, default=1.05,
                        help="IR-over-legacy floor for the fresh filter "
                             "bench (row path)")
    parser.add_argument("--min-metrics-ratio", type=float, default=0.95,
                        help="metrics-on over metrics-off events/sec floor "
                             "for the fresh ingest metrics bench")
    parser.add_argument("--min-fleet-bytes-reduction", type=float,
                        default=5.0,
                        help="flat-over-hierarchical central-link-bytes "
                             "floor for the fresh fleet bench")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    gate_events_per_sec("parallel_central", parallel_runs(baseline),
                        parallel_runs(fresh), args.threshold, failures)

    base_ingest, _ = ingest_runs(baseline)
    fresh_ingest, fresh_speedup = ingest_runs(fresh)
    gate_events_per_sec("ingest", base_ingest, fresh_ingest, args.threshold,
                        failures)

    base_join, _ = ingest_join_runs(baseline)
    fresh_join, fresh_join_speedup = ingest_join_runs(fresh)
    gate_events_per_sec("ingest.join", base_join, fresh_join, args.threshold,
                        failures)
    if fresh_join:
        if fresh_join_speedup is None:
            line = "ingest.join: fresh run has no speedup_vs_row field"
            failures.append(line)
            print("FAIL " + line)
        else:
            # Absolute floor, like the scan speedup: the staged
            # kColumnarJoin pipeline (sections + interleave, column-direct
            # mixed-tuple folds) must hold its margin over the row pipeline
            # or the columnar join quietly decayed into a wash.
            line = (f"ingest.join join_columnar speedup vs row: "
                    f"{fresh_join_speedup:.2f}x "
                    f"(floor {args.min_join_speedup:.2f}x)")
            if fresh_join_speedup < args.min_join_speedup:
                failures.append(line)
                print("FAIL " + line)
            else:
                print("ok   " + line)

    base_dict, _ = ingest_dict_runs(baseline)
    fresh_dict, fresh_dict_reduction = ingest_dict_runs(fresh)
    gate_events_per_sec("ingest.dict", base_dict, fresh_dict, args.threshold,
                        failures)
    if fresh_dict:
        if fresh_dict_reduction is None:
            line = "ingest.dict: fresh run has no wire_bytes_reduction field"
            failures.append(line)
            print("FAIL " + line)
        else:
            # Absolute floor: the dictionary must keep shrinking the wire on
            # the low-cardinality workload it exists for.
            line = (f"ingest.dict wire bytes reduction vs row: "
                    f"{fresh_dict_reduction:.2f}x "
                    f"(floor {args.min_dict_bytes_reduction:.2f}x)")
            if fresh_dict_reduction < args.min_dict_bytes_reduction:
                failures.append(line)
                print("FAIL " + line)
            else:
                print("ok   " + line)

    base_spill = ingest_spill_runs(baseline)
    fresh_spill = ingest_spill_runs(fresh)
    gate_events_per_sec(
        "ingest.spill",
        {k: v for k, v in base_spill.items() if k == "unlimited"},
        {k: v for k, v in fresh_spill.items() if k == "unlimited"},
        args.threshold, failures)
    unlimited = fresh_spill.get("unlimited")
    for tier in ("half", "eighth"):
        run = fresh_spill.get(tier)
        if run and unlimited and run["events_per_sec"]:
            print(f"ok   ingest.spill {tier} budget: "
                  f"{unlimited['events_per_sec'] / run['events_per_sec']:.2f}x "
                  f"slower than unlimited "
                  f"({run.get('spilled', 0):,} events spilled, lossless)")

    base_metrics, _ = ingest_metrics_runs(baseline)
    fresh_metrics, fresh_metrics_ratio = ingest_metrics_runs(fresh)
    gate_events_per_sec("ingest.metrics", base_metrics, fresh_metrics,
                        args.threshold, failures)
    if fresh_metrics:
        if fresh_metrics_ratio is None:
            line = "ingest.metrics: fresh run has no events_per_sec_ratio"
            failures.append(line)
            print("FAIL " + line)
        else:
            # Absolute floor: the operator-metrics plane is pure counters
            # plus one thread-CPU read per chunk, and it is on by default —
            # its tax must stay within 5% of the uninstrumented pipeline.
            line = (f"ingest.metrics on/off throughput ratio: "
                    f"{fresh_metrics_ratio:.3f} "
                    f"(floor {args.min_metrics_ratio:.2f})")
            if fresh_metrics_ratio < args.min_metrics_ratio:
                failures.append(line)
                print("FAIL " + line)
            else:
                print("ok   " + line)

    gate_fleet(baseline, fresh, args.threshold,
               args.min_fleet_bytes_reduction, failures)

    gate_multitenant(baseline, fresh, args.threshold, failures)

    base_filter, _ = ingest_filter_runs(baseline)
    fresh_filter, fresh_filter_speedup = ingest_filter_runs(fresh)
    gate_events_per_sec("ingest.filter", base_filter, fresh_filter,
                        args.threshold, failures)
    if fresh_filter_speedup is not None:
        # Absolute floor: the lowered+folded IR must stay ahead of the
        # legacy tree walk on the foldable-conjunct workload, or the whole
        # install-time-analysis argument quietly evaporated.
        line = (f"ingest.filter IR speedup vs legacy: "
                f"{fresh_filter_speedup:.2f}x "
                f"(floor {args.min_filter_speedup:.2f}x)")
        if fresh_filter_speedup < args.min_filter_speedup:
            failures.append(line)
            print("FAIL " + line)
        else:
            print("ok   " + line)

    if fresh_ingest:
        if fresh_speedup is None and \
                "row" in fresh_ingest and "columnar" in fresh_ingest:
            fresh_speedup = (fresh_ingest["columnar"]["events_per_sec"] /
                             fresh_ingest["row"]["events_per_sec"])
        if fresh_speedup is not None:
            line = (f"ingest columnar speedup vs row: {fresh_speedup:.2f}x "
                    f"(floor {args.min_ingest_speedup:.2f}x)")
            if fresh_speedup < args.min_ingest_speedup:
                failures.append(line)
                print("FAIL " + line)
            else:
                print("ok   " + line)

    if failures:
        print(f"\n{len(failures)} gate(s) failed; if an events/sec shift is "
              "intentional, refresh the baseline with tools/bench_run.sh and "
              "commit BENCH_scrub.json (the ingest speedup floor is not "
              "waivable that way)")
        return 1
    print(f"\nno events/sec regression beyond {args.threshold:.0%} threshold; "
          "ingest speedup floor holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
