#!/usr/bin/env python3
"""Benchmark regression gate for BENCH_scrub.json.

Compares a freshly produced benchmark file (tools/bench_run.sh output)
against the committed baseline, keyed by (shards, workers). Fails (exit 1)
if any configuration's events/sec dropped by more than the threshold
(default 15%). Improvements never fail; configurations present on only one
side are reported but not fatal (the sweep grid may grow between PRs).

Usage:
    tools/bench_compare.py BASELINE FRESH [--threshold 0.15]
"""

import argparse
import json
import sys


def load_runs(path):
    with open(path) as f:
        doc = json.load(f)
    return {(r["shards"], r["workers"]): r for r in doc.get("runs", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated fractional events/sec regression")
    args = parser.parse_args()

    baseline = load_runs(args.baseline)
    fresh = load_runs(args.fresh)

    failures = []
    for key in sorted(baseline):
        shards, workers = key
        base = baseline[key]
        cur = fresh.get(key)
        if cur is None:
            print(f"NOTE shards={shards} workers={workers}: "
                  "missing from fresh run")
            continue
        base_eps = base["events_per_sec"]
        cur_eps = cur["events_per_sec"]
        delta = (cur_eps - base_eps) / base_eps if base_eps else 0.0
        line = (f"shards={shards} workers={workers}: "
                f"{base_eps:,.0f} -> {cur_eps:,.0f} ev/s ({delta:+.1%})")
        if delta < -args.threshold:
            failures.append(line)
            print("FAIL " + line)
        else:
            print("ok   " + line)
    for key in sorted(set(fresh) - set(baseline)):
        print(f"NOTE shards={key[0]} workers={key[1]}: new configuration, "
              "no baseline")

    if failures:
        print(f"\n{len(failures)} configuration(s) regressed more than "
              f"{args.threshold:.0%}; if intentional, refresh the baseline "
              "with tools/bench_run.sh and commit BENCH_scrub.json")
        return 1
    print("\nno events/sec regression beyond "
          f"{args.threshold:.0%} threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
