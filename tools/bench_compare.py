#!/usr/bin/env python3
"""Benchmark regression gate for BENCH_scrub.json.

Compares a freshly produced benchmark file (tools/bench_run.sh output)
against the committed baseline:

  * parallel_central runs, keyed by (shards, workers): events/sec must not
    drop by more than the threshold (default 15%);
  * ingest runs, keyed by pipeline (row / columnar): same events/sec gate;
  * the fresh ingest section's columnar speedup over row must hold the
    architectural floor (default 1.5x) — this one is absolute, not relative
    to the baseline, so the columnar data plane can never quietly decay into
    a wash.

Improvements never fail; configurations present on only one side are
reported but not fatal (the sweep grid may grow between PRs). Legacy
baselines (a bare parallel_central document with top-level "runs") are still
understood.

Usage:
    tools/bench_compare.py BASELINE FRESH [--threshold 0.15]
                           [--min-ingest-speedup 1.5]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def parallel_runs(doc):
    # New layout nests the sweep under "parallel_central"; the legacy layout
    # was that section alone at top level.
    section = doc.get("parallel_central", doc)
    return {(r["shards"], r["workers"]): r for r in section.get("runs", [])}


def ingest_runs(doc):
    section = doc.get("ingest") or {}
    return ({r["pipeline"]: r for r in section.get("runs", [])},
            section.get("speedup_vs_row"))


def ingest_join_runs(doc):
    # The join case nests under ingest.join (added with the executor's
    # columnar join path); legacy baselines without it yield empty runs and
    # the gate degrades to NOTEs on the fresh side.
    section = (doc.get("ingest") or {}).get("join") or {}
    return ({r["pipeline"]: r for r in section.get("runs", [])},
            section.get("speedup_vs_row"))


def ingest_spill_runs(doc):
    # The spill case (state-budget tiers over a high-cardinality scan) nests
    # under ingest.spill; absent in pre-spill baselines. Only the
    # "unlimited" tier is gated — budgeted tiers pay serialize + replay by
    # design and are reported informationally.
    section = (doc.get("ingest") or {}).get("spill") or {}
    return {r["pipeline"]: r for r in section.get("runs", [])}


def ingest_filter_runs(doc):
    # The filter case (legacy tree conjuncts vs lowered IR programs) nests
    # under ingest.filter; absent in pre-IR baselines.
    section = (doc.get("ingest") or {}).get("filter") or {}
    return ({r["pipeline"]: r for r in section.get("runs", [])},
            section.get("speedup_vs_legacy"))


def gate_events_per_sec(label, baseline, fresh, threshold, failures):
    for key in sorted(baseline):
        base = baseline[key]
        cur = fresh.get(key)
        name = " ".join(f"{k}={v}" for k, v in zip(
            ("shards", "workers") if isinstance(key, tuple) else ("pipeline",),
            key if isinstance(key, tuple) else (key,)))
        if cur is None:
            print(f"NOTE {label} {name}: missing from fresh run")
            continue
        base_eps = base["events_per_sec"]
        cur_eps = cur["events_per_sec"]
        delta = (cur_eps - base_eps) / base_eps if base_eps else 0.0
        line = (f"{label} {name}: "
                f"{base_eps:,.0f} -> {cur_eps:,.0f} ev/s ({delta:+.1%})")
        if delta < -threshold:
            failures.append(line)
            print("FAIL " + line)
        else:
            print("ok   " + line)
    for key in sorted(set(fresh) - set(baseline)):
        print(f"NOTE {label} {key}: new configuration, no baseline")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated fractional events/sec regression")
    parser.add_argument("--min-ingest-speedup", type=float, default=1.5,
                        help="columnar-over-row floor for the fresh ingest "
                             "bench")
    parser.add_argument("--min-filter-speedup", type=float, default=1.05,
                        help="IR-over-legacy floor for the fresh filter "
                             "bench (row path)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    gate_events_per_sec("parallel_central", parallel_runs(baseline),
                        parallel_runs(fresh), args.threshold, failures)

    base_ingest, _ = ingest_runs(baseline)
    fresh_ingest, fresh_speedup = ingest_runs(fresh)
    gate_events_per_sec("ingest", base_ingest, fresh_ingest, args.threshold,
                        failures)

    base_join, _ = ingest_join_runs(baseline)
    fresh_join, fresh_join_speedup = ingest_join_runs(fresh)
    gate_events_per_sec("ingest.join", base_join, fresh_join, args.threshold,
                        failures)
    if fresh_join_speedup is not None:
        # Informational: the join's columnar win rides on lazy
        # materialization, not the vectorized filter, so it has no
        # architectural floor of its own.
        print(f"ok   ingest.join columnar speedup vs row: "
              f"{fresh_join_speedup:.2f}x")

    base_spill = ingest_spill_runs(baseline)
    fresh_spill = ingest_spill_runs(fresh)
    gate_events_per_sec(
        "ingest.spill",
        {k: v for k, v in base_spill.items() if k == "unlimited"},
        {k: v for k, v in fresh_spill.items() if k == "unlimited"},
        args.threshold, failures)
    unlimited = fresh_spill.get("unlimited")
    for tier in ("half", "eighth"):
        run = fresh_spill.get(tier)
        if run and unlimited and run["events_per_sec"]:
            print(f"ok   ingest.spill {tier} budget: "
                  f"{unlimited['events_per_sec'] / run['events_per_sec']:.2f}x "
                  f"slower than unlimited "
                  f"({run.get('spilled', 0):,} events spilled, lossless)")

    base_filter, _ = ingest_filter_runs(baseline)
    fresh_filter, fresh_filter_speedup = ingest_filter_runs(fresh)
    gate_events_per_sec("ingest.filter", base_filter, fresh_filter,
                        args.threshold, failures)
    if fresh_filter_speedup is not None:
        # Absolute floor: the lowered+folded IR must stay ahead of the
        # legacy tree walk on the foldable-conjunct workload, or the whole
        # install-time-analysis argument quietly evaporated.
        line = (f"ingest.filter IR speedup vs legacy: "
                f"{fresh_filter_speedup:.2f}x "
                f"(floor {args.min_filter_speedup:.2f}x)")
        if fresh_filter_speedup < args.min_filter_speedup:
            failures.append(line)
            print("FAIL " + line)
        else:
            print("ok   " + line)

    if fresh_ingest:
        if fresh_speedup is None and \
                "row" in fresh_ingest and "columnar" in fresh_ingest:
            fresh_speedup = (fresh_ingest["columnar"]["events_per_sec"] /
                             fresh_ingest["row"]["events_per_sec"])
        if fresh_speedup is not None:
            line = (f"ingest columnar speedup vs row: {fresh_speedup:.2f}x "
                    f"(floor {args.min_ingest_speedup:.2f}x)")
            if fresh_speedup < args.min_ingest_speedup:
                failures.append(line)
                print("FAIL " + line)
            else:
                print("ok   " + line)

    if failures:
        print(f"\n{len(failures)} gate(s) failed; if an events/sec shift is "
              "intentional, refresh the baseline with tools/bench_run.sh and "
              "commit BENCH_scrub.json (the ingest speedup floor is not "
              "waivable that way)")
        return 1
    print(f"\nno events/sec regression beyond {args.threshold:.0%} threshold; "
          "ingest speedup floor holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
