#!/usr/bin/env bash
# Single pre-merge gate: format check, clang-tidy over src/, and the tier-1
# test suite under ASan+UBSan. Exits nonzero on ANY failure so CI (or a
# human) can rely on one command.
#
#   tools/check.sh             # everything
#   tools/check.sh --no-tidy   # skip clang-tidy (it is slow)
#
# Tools that are not installed are *skipped with a notice*, not failed: the
# container image this repo builds in carries only the GCC toolchain, and the
# gate must still be able to certify a checkout there via the sanitizer run.
# When clang-format/clang-tidy are present, any finding is fatal.

set -u

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${REPO}/build-sanitize"
JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_TIDY=1
FAILURES=0

for arg in "$@"; do
  case "$arg" in
    --no-tidy) RUN_TIDY=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

note() { printf '\n== %s ==\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*" >&2; FAILURES=$((FAILURES + 1)); }

# ---------------------------------------------------------------- format ----
note "format check"
if command -v clang-format >/dev/null 2>&1; then
  # shellcheck disable=SC2046
  if ! clang-format --dry-run --Werror \
      $(find "${REPO}/src" "${REPO}/tests" "${REPO}/bench" \
             "${REPO}/examples" \
             -name '*.cc' -o -name '*.h' -o -name '*.cpp'); then
    fail "clang-format found unformatted files"
  fi
else
  echo "clang-format not installed; skipping format check"
fi

# ------------------------------------------------- sanitizer build + test ----
note "ASan+UBSan build"
mkdir -p "${BUILD_DIR}"
if ! cmake -B "${BUILD_DIR}" -S "${REPO}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DSCRUB_SANITIZE=ON -DSCRUB_WERROR=ON > "${BUILD_DIR}/cmake.log" 2>&1 \
   || ! cmake --build "${BUILD_DIR}" -j "${JOBS}" > "${BUILD_DIR}/build.log" 2>&1
then
  tail -40 "${BUILD_DIR}/build.log" 2>/dev/null
  fail "sanitizer build failed (logs: ${BUILD_DIR}/build.log)"
else
  note "tier-1 tests under ASan+UBSan"
  if ! (cd "${BUILD_DIR}" && \
        ASAN_OPTIONS=detect_leaks=1 \
        UBSAN_OPTIONS=print_stacktrace=1 \
        ctest --output-on-failure -j "${JOBS}"); then
    fail "tests failed under sanitizers"
  fi
  note "chaos seed sweep under ASan+UBSan"
  if ! ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
       "${REPO}/tools/chaos_sweep.sh" "${BUILD_DIR}/tests/chaos_test"; then
    fail "chaos sweep failed (re-run one seed: SCRUB_CHAOS_SEED=<n> ${BUILD_DIR}/tests/chaos_test)"
  fi
  note "tiny-budget spill stress under ASan+UBSan (1/64 working set)"
  if ! ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
       SCRUB_SPILL_STRESS_DIVISOR=64 \
       "${BUILD_DIR}/tests/spill_test" > /dev/null; then
    fail "spill stress failed under sanitizers (re-run: SCRUB_SPILL_STRESS_DIVISOR=64 ${BUILD_DIR}/tests/spill_test)"
  fi
  # The dict/join wire decoders parse hostile bytes; run their fuzz fixtures
  # by name (in addition to the full ctest pass above) so a fixture rename
  # or deletion is a visible gate change, not silent coverage loss.
  note "dict/join wire fuzz under ASan+UBSan"
  if ! "${BUILD_DIR}/tests/wire_fuzz_test" --gtest_list_tests \
       --gtest_filter='DictWireFuzzTest.*:JoinWireFuzzTest.*' 2>/dev/null | \
       grep -q '^  '; then
    fail "dict/join fuzz fixtures missing from wire_fuzz_test"
  elif ! ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
       "${BUILD_DIR}/tests/wire_fuzz_test" \
       --gtest_filter='DictWireFuzzTest.*:JoinWireFuzzTest.*' > /dev/null; then
    fail "dict/join wire fuzz failed under sanitizers (re-run: ${BUILD_DIR}/tests/wire_fuzz_test --gtest_filter='DictWireFuzzTest.*:JoinWireFuzzTest.*')"
  fi
fi

# ------------------------------------------------- TSan build + test ---------
# The worker-pool paths (parallel shard fold, window-close fan-out, agent
# flush fan-out) get a dedicated ThreadSanitizer pass: ASan and TSan cannot
# share a binary, so this is a second build tree running only the tests that
# exercise threads.
note "TSan build"
TSAN_DIR="${REPO}/build-tsan"
# merge_algebra_test and the hierarchical halves of the determinism /
# differential / chaos suites drive the combiner tier; the worker-pool
# hierarchical runs are what TSan is here for. The columnar-join suites
# (parallel_determinism_test's JoinPipelines* and differential_test's
# JoinColumnarStagingAcrossWorkerCounts) exercise the sharded kColumnarJoin
# re-bucket — parallel decode plus shared read-only sections — at workers
# {2, 8}, so those binaries double as the join-path race check. metrics_test
# rides along for the operator-metrics plane: sharded shard->coordinator
# delta export under the worker pool is exactly the kind of counter traffic
# TSan exists to vet.
TSAN_TESTS="common_test metrics_test parallel_determinism_test differential_test sharded_central_test chaos_test spill_test merge_algebra_test"
mkdir -p "${TSAN_DIR}"
if ! cmake -B "${TSAN_DIR}" -S "${REPO}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DSCRUB_TSAN=ON -DSCRUB_WERROR=ON > "${TSAN_DIR}/cmake.log" 2>&1 \
   || ! cmake --build "${TSAN_DIR}" -j "${JOBS}" \
        --target ${TSAN_TESTS} > "${TSAN_DIR}/build.log" 2>&1
then
  tail -40 "${TSAN_DIR}/build.log" 2>/dev/null
  fail "TSan build failed (logs: ${TSAN_DIR}/build.log)"
else
  note "parallel tests under TSan"
  for t in ${TSAN_TESTS}; do
    if ! TSAN_OPTIONS=halt_on_error=1 "${TSAN_DIR}/tests/${t}"; then
      fail "${t} failed under TSan"
    fi
  done
fi

# ------------------------------------------------- IR verifier pass ----------
# The expression-IR verifier aborts on malformed programs only in debug /
# SCRUB_IR_VERIFY builds; release builds log and limp on. This pass builds
# release WITH the hard-fail on and drives every lowering-heavy suite, so a
# planner change that emits broken IR dies here and not on the fleet.
note "IR verifier build (release + SCRUB_IR_VERIFY)"
IRV_DIR="${REPO}/build-irverify"
IRV_TESTS="expr_ir_test expr_semantics_test plan_test explain_test lint_test lint_corpus_test executor_test"
mkdir -p "${IRV_DIR}"
if ! cmake -B "${IRV_DIR}" -S "${REPO}" \
      -DCMAKE_BUILD_TYPE=Release \
      -DSCRUB_IR_VERIFY=ON -DSCRUB_WERROR=ON > "${IRV_DIR}/cmake.log" 2>&1 \
   || ! cmake --build "${IRV_DIR}" -j "${JOBS}" \
        --target ${IRV_TESTS} > "${IRV_DIR}/build.log" 2>&1
then
  tail -40 "${IRV_DIR}/build.log" 2>/dev/null
  fail "IR verifier build failed (logs: ${IRV_DIR}/build.log)"
else
  note "lowering-heavy tests with the IR verifier hard-failing"
  for t in ${IRV_TESTS}; do
    if ! "${IRV_DIR}/tests/${t}" > /dev/null; then
      fail "${t} failed under SCRUB_IR_VERIFY"
    fi
  done
fi

# ------------------------------------------------- benchmark regression ------
note "benchmark suite vs committed baseline (parallel-central + ingest + fleet)"
if [ -f "${REPO}/BENCH_scrub.json" ]; then
  FRESH_BENCH="$(mktemp /tmp/BENCH_scrub.XXXXXX.json)"
  if ! "${REPO}/tools/bench_run.sh" "${FRESH_BENCH}"; then
    fail "benchmark run failed (logs: ${REPO}/build-bench/build.log)"
  elif ! python3 "${REPO}/tools/bench_compare.py" \
        "${REPO}/BENCH_scrub.json" "${FRESH_BENCH}"; then
    fail "events/sec regressed >15% vs committed BENCH_scrub.json, or the columnar ingest (1.5x) / join_columnar (1.5x) / dict wire-bytes (1.3x) / IR filter (1.05x) / metrics on-off ratio (0.95) / fleet bytes-reduction (5x) floors broke, or multitenant admission stopped rejecting"
  fi
  rm -f "${FRESH_BENCH}"
else
  echo "no committed BENCH_scrub.json; skipping benchmark gate"
fi

# ------------------------------------------------------------- clang-tidy ----
if [ "${RUN_TIDY}" -eq 1 ]; then
  note "clang-tidy over src/"
  if command -v clang-tidy >/dev/null 2>&1; then
    # The sanitizer build exports compile_commands.json; strip the sanitizer
    # flags clang-tidy's driver may not know.
    if ! find "${REPO}/src" -name '*.cc' -print0 | \
         xargs -0 -P "${JOBS}" -n 8 clang-tidy -p "${BUILD_DIR}" \
               --quiet --warnings-as-errors='bugprone-*,performance-*'; then
      fail "clang-tidy reported findings"
    fi
  else
    echo "clang-tidy not installed; skipping tidy pass"
  fi
fi

# ---------------------------------------------------------------- verdict ----
note "summary"
if [ "${FAILURES}" -ne 0 ]; then
  echo "${FAILURES} gate(s) failed"
  exit 1
fi
echo "all gates passed"
