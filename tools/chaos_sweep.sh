#!/usr/bin/env bash
# Seed-sweep runner for the chaos test suite.
#
# The chaos tests are deterministic per fault seed; a single seed therefore
# proves very little about the *margins* (is the retransmit budget deep
# enough at 20% drop for any drop pattern? does dedup hold under every
# duplicate/reorder interleaving?). This script re-runs the chaos binary
# across a seed range so a tightened budget or an off-by-one in the seq
# tracker shows up as "seed 13 fails", reproducible with:
#
#   SCRUB_CHAOS_SEED=13 build/tests/chaos_test
#
# The suite covers both topologies: the flat agent -> central pipeline and
# the hierarchical regional-combiner tier (two-hop DC partitions, combiner
# crash/restart across incarnations, lossy partial-envelope links). Set
# SCRUB_CHAOS_FILTER to a --gtest_filter pattern to sweep a subset, e.g.
#
#   SCRUB_CHAOS_FILTER='*Hierarchical*:*Combiner*:*Envelope*' \
#     tools/chaos_sweep.sh
#
# Usage:
#   tools/chaos_sweep.sh [binary] [first_seed] [last_seed]
#
# Defaults: build/tests/chaos_test, seeds 1..20. Exits nonzero if any seed
# fails; per-seed logs land next to the binary as chaos_seed_<n>.log.

set -u

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BINARY="${1:-${REPO}/build/tests/chaos_test}"
FIRST="${2:-1}"
LAST="${3:-20}"
FILTER="${SCRUB_CHAOS_FILTER:-}"

if [ ! -x "${BINARY}" ]; then
  echo "chaos_sweep: test binary not found: ${BINARY}" >&2
  echo "build it first: cmake --build build --target chaos_test" >&2
  exit 2
fi

LOG_DIR="$(dirname "${BINARY}")"
FAILED_SEEDS=()

for seed in $(seq "${FIRST}" "${LAST}"); do
  log="${LOG_DIR}/chaos_seed_${seed}.log"
  if SCRUB_CHAOS_SEED="${seed}" "${BINARY}" \
      ${FILTER:+--gtest_filter="${FILTER}"} > "${log}" 2>&1; then
    printf 'seed %3d: ok\n' "${seed}"
  else
    printf 'seed %3d: FAILED (log: %s)\n' "${seed}" "${log}"
    FAILED_SEEDS+=("${seed}")
  fi
done

if [ "${#FAILED_SEEDS[@]}" -ne 0 ]; then
  echo "chaos sweep failed for seed(s): ${FAILED_SEEDS[*]}" >&2
  exit 1
fi
echo "chaos sweep passed: seeds ${FIRST}..${LAST}"
