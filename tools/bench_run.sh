#!/usr/bin/env bash
# Refreshes BENCH_scrub.json: builds the parallel-central sweep in a plain
# (non-sanitized, optimized) tree and runs it. The committed BENCH_scrub.json
# is the regression baseline tools/bench_compare.py gates against in
# tools/check.sh.
#
#   tools/bench_run.sh              # rewrite BENCH_scrub.json in place
#   tools/bench_run.sh /tmp/out.json  # write elsewhere (what check.sh does)

set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${REPO}/build-bench"
OUT="${1:-${REPO}/BENCH_scrub.json}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S "${REPO}" -DCMAKE_BUILD_TYPE=Release \
  > "${BUILD_DIR}.cmake.log" 2>&1
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_parallel_central \
  > "${BUILD_DIR}.build.log" 2>&1

"${BUILD_DIR}/bench/bench_parallel_central" > "${OUT}"
echo "wrote ${OUT}"
