#!/usr/bin/env bash
# Refreshes BENCH_scrub.json: builds the benchmark suite in a plain
# (non-sanitized, optimized) tree, runs the parallel-central sweep and the
# row-vs-columnar ingest microbench, and merges their JSON into one document:
#
#   {"bench": "scrub", "parallel_central": {...}, "ingest": {...},
#    "fleet": {...}, "multitenant": {...}}
#
# The committed BENCH_scrub.json is the regression baseline
# tools/bench_compare.py gates against in tools/check.sh.
#
#   tools/bench_run.sh              # rewrite BENCH_scrub.json in place
#   tools/bench_run.sh /tmp/out.json  # write elsewhere (what check.sh does)

set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${REPO}/build-bench"
OUT="${1:-${REPO}/BENCH_scrub.json}"
JOBS="$(nproc 2>/dev/null || echo 4)"

# Logs live inside the build tree (gitignored as a directory); nothing is
# ever written next to it at the repo root.
mkdir -p "${BUILD_DIR}"
cmake -B "${BUILD_DIR}" -S "${REPO}" -DCMAKE_BUILD_TYPE=Release \
  > "${BUILD_DIR}/cmake.log" 2>&1
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target bench_parallel_central bench_ingest bench_fleet \
           bench_multitenant \
  > "${BUILD_DIR}/build.log" 2>&1

PC_JSON="$(mktemp /tmp/bench_pc.XXXXXX.json)"
INGEST_JSON="$(mktemp /tmp/bench_ingest.XXXXXX.json)"
FLEET_JSON="$(mktemp /tmp/bench_fleet.XXXXXX.json)"
MT_JSON="$(mktemp /tmp/bench_mt.XXXXXX.json)"
trap 'rm -f "${PC_JSON}" "${INGEST_JSON}" "${FLEET_JSON}" "${MT_JSON}"' EXIT

"${BUILD_DIR}/bench/bench_parallel_central" > "${PC_JSON}"
"${BUILD_DIR}/bench/bench_ingest" > "${INGEST_JSON}"
"${BUILD_DIR}/bench/bench_fleet" > "${FLEET_JSON}"
"${BUILD_DIR}/bench/bench_multitenant" > "${MT_JSON}"

python3 - "${OUT}" "${PC_JSON}" "${INGEST_JSON}" "${FLEET_JSON}" \
  "${MT_JSON}" <<'EOF'
import json
import sys

out_path, pc_path, ingest_path, fleet_path, mt_path = sys.argv[1:6]
with open(pc_path) as f:
    pc = json.load(f)
with open(ingest_path) as f:
    ingest = json.load(f)
with open(fleet_path) as f:
    fleet = json.load(f)
with open(mt_path) as f:
    mt = json.load(f)
doc = {"bench": "scrub", "parallel_central": pc, "ingest": ingest,
       "fleet": fleet, "multitenant": mt}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF
echo "wrote ${OUT}"
