// Unit tests for src/query: lexer, parser (including round-trips through
// Query::ToString), and the semantic analyzer with its language
// restrictions.

#include <gtest/gtest.h>

#include "src/query/analyzer.h"
#include "src/query/lexer.h"
#include "src/query/parser.h"

namespace scrub {
namespace {

// ---------------------------------------------------------------------------
// Lexer.

TEST(LexerTest, TokenKinds) {
  Result<std::vector<Token>> tokens =
      Tokenize("SELECT a.b, 42 1.5 'str' <> <= >= != @[ ] ( ) * / + - %");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) {
    kinds.push_back(t.kind);
  }
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdentifier, TokenKind::kIdentifier,
                TokenKind::kDot, TokenKind::kIdentifier, TokenKind::kComma,
                TokenKind::kInteger, TokenKind::kFloat, TokenKind::kString,
                TokenKind::kNe, TokenKind::kLe, TokenKind::kGe, TokenKind::kNe,
                TokenKind::kAt, TokenKind::kLBracket, TokenKind::kRBracket,
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kStar,
                TokenKind::kSlash, TokenKind::kPlus, TokenKind::kMinus,
                TokenKind::kPercent, TokenKind::kEnd}));
}

TEST(LexerTest, NumbersAndStrings) {
  Result<std::vector<Token>> tokens = Tokenize("123 45.75 1e3 \"dq\" 'sq'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].int_value, 123);
  EXPECT_DOUBLE_EQ((*tokens)[1].float_value, 45.75);
  EXPECT_DOUBLE_EQ((*tokens)[2].float_value, 1000.0);
  EXPECT_EQ((*tokens)[3].text, "dq");
  EXPECT_EQ((*tokens)[4].text, "sq");
}

TEST(LexerTest, EscapedString) {
  Result<std::vector<Token>> tokens = Tokenize(R"('a\'b')");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a'b");
}

TEST(LexerTest, CommentsSkipped) {
  Result<std::vector<Token>> tokens =
      Tokenize("SELECT -- this is a comment\n x");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // SELECT, x, end
  EXPECT_EQ((*tokens)[1].text, "x");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

// ---------------------------------------------------------------------------
// Parser.

TEST(ParserTest, PaperSpamQuery) {
  // Figure 9 of the paper (modulo our target-host spelling).
  Result<Query> q = ParseQuery(
      "Select bid.user_id, COUNT(*) from bid "
      "@[Service in BidServers and Server = host1] "
      "group by bid.user_id;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->select.size(), 2u);
  EXPECT_EQ(q->select[0].expr->kind, ExprKind::kFieldRef);
  EXPECT_EQ(q->select[1].expr->agg_func, AggregateFunc::kCount);
  EXPECT_EQ(q->sources, std::vector<std::string>{"bid"});
  EXPECT_EQ(q->targets.services, std::vector<std::string>{"BidServers"});
  EXPECT_EQ(q->targets.hosts, std::vector<std::string>{"host1"});
  ASSERT_EQ(q->group_by.size(), 1u);
  EXPECT_EQ(q->group_by[0]->field, "user_id");
}

TEST(ParserTest, PaperCpmQuery) {
  // Figure 13: CPM = 1000*AVG(impression.cost) with a host list.
  Result<Query> q = ParseQuery(
      "Select 1000*AVG(impression.cost) from impression "
      "where impression.line_item_id = 123 "
      "@[Servers in (hostA, hostB, hostC)];");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select[0].expr->kind, ExprKind::kBinary);
  EXPECT_TRUE(q->select[0].expr->ContainsAggregate());
  ASSERT_NE(q->where, nullptr);
  EXPECT_EQ(q->targets.hosts,
            (std::vector<std::string>{"hostA", "hostB", "hostC"}));
}

TEST(ParserTest, WindowSpanAndSampling) {
  Result<Query> q = ParseQuery(
      "SELECT COUNT(*) FROM impression WINDOW 10 s START 1 m "
      "DURATION 20 m SAMPLE HOSTS 10% SAMPLE EVENTS 12.5%;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->window_micros, 10 * kMicrosPerSecond);
  EXPECT_EQ(q->start_offset_micros, kMicrosPerMinute);
  EXPECT_EQ(q->duration_micros, 20 * kMicrosPerMinute);
  EXPECT_DOUBLE_EQ(q->host_sample_rate, 0.10);
  EXPECT_DOUBLE_EQ(q->event_sample_rate, 0.125);
}

TEST(ParserTest, JoinSourcesAndContains) {
  Result<Query> q = ParseQuery(
      "SELECT impression.line_item_id, COUNT(*), "
      "AVG(impression.cost) FROM auction, impression "
      "WHERE auction.line_item_ids CONTAINS 4242 "
      "GROUP BY impression.line_item_id WINDOW 1 h DURATION 1 h;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->sources, (std::vector<std::string>{"auction", "impression"}));
  EXPECT_EQ(q->where->binary_op, BinaryOp::kContains);
}

TEST(ParserTest, ExpressionPrecedence) {
  Result<Query> q = ParseQuery("SELECT a + b * c - d FROM t;");
  ASSERT_TRUE(q.ok());
  // ((a + (b*c)) - d)
  EXPECT_EQ(q->select[0].expr->ToString(), "((a + (b * c)) - d)");
}

TEST(ParserTest, BooleanPrecedenceAndNot) {
  Result<Query> q = ParseQuery(
      "SELECT x FROM t WHERE NOT a = 1 AND b = 2 OR c = 3;");
  ASSERT_TRUE(q.ok());
  // ((NOT(a=1) AND (b=2)) OR (c=3))
  EXPECT_EQ(q->where->binary_op, BinaryOp::kOr);
  EXPECT_EQ(q->where->children[0]->binary_op, BinaryOp::kAnd);
  EXPECT_EQ(q->where->children[0]->children[0]->kind, ExprKind::kUnary);
}

TEST(ParserTest, InListAndLiterals) {
  Result<Query> q = ParseQuery(
      "SELECT x FROM t WHERE x IN (1, 2, 3) AND s = 'sj' AND f = TRUE "
      "AND n = NULL;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_NE(q->where, nullptr);
}

TEST(ParserTest, AggregateVariants) {
  Result<Query> q = ParseQuery(
      "SELECT COUNT(*), COUNT(x), SUM(x), AVG(x), MIN(x), MAX(x), "
      "COUNT_DISTINCT(u), TOPK(10, u) FROM t;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->select.size(), 8u);
  EXPECT_TRUE(q->select[0].expr->children.empty());  // COUNT(*)
  EXPECT_EQ(q->select[7].expr->topk_k, 10);
}

TEST(ParserTest, Aliases) {
  Result<Query> q = ParseQuery("SELECT COUNT(*) AS n FROM t;");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].alias, "n");
}

TEST(ParserTest, SyntaxErrors) {
  const char* bad[] = {
      "",
      "SELECT",
      "SELECT FROM t;",
      "SELECT x FROM;",
      "SELECT x FROM t GROUP;",
      "SELECT x FROM t WINDOW 10;",        // missing unit
      "SELECT x FROM t WINDOW 10 parsecs;",
      "SELECT x FROM t SAMPLE HOSTS 10;",  // missing %
      "SELECT x FROM t SAMPLE HOSTS 150%;",
      "SELECT x FROM t @[UNKNOWN = y];",
      "SELECT x FROM t @[SERVICE IN];",
      "SELECT TOPK(x, y) FROM t;",         // k must be a literal integer
      "SELECT NOSUCHFUNC(x) FROM t;",
      "SELECT x FROM t; trailing",
      "SELECT x FROM t WINDOW 0 s;",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseQuery(text).ok()) << text;
  }
}

// Round-trip property: parse -> ToString -> parse yields the same rendering.
class ParserRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRoundTripTest, Stable) {
  Result<Query> first = ParseQuery(GetParam());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::string rendered = first->ToString();
  Result<Query> second = ParseQuery(rendered);
  ASSERT_TRUE(second.ok()) << "re-parse failed: " << rendered;
  EXPECT_EQ(second->ToString(), rendered);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, ParserRoundTripTest,
    ::testing::Values(
        "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id;",
        "SELECT 1000 * AVG(impression.cost) FROM impression "
        "WHERE impression.line_item_id = 7 @[SERVERS IN (a, b)];",
        "SELECT COUNT(*) FROM bid @[SERVICE IN BidServers AND "
        "DATACENTER = DC1] WINDOW 10 SECONDS DURATION 20 MINUTES "
        "SAMPLE HOSTS 10% SAMPLE EVENTS 10%;",
        "SELECT x FROM t WHERE NOT a = 1 AND b IN (1, 2) OR c CONTAINS 5;",
        "SELECT TOPK(5, bid.user_id) FROM bid WINDOW 1 MINUTES "
        "DURATION 5 MINUTES;",
        "SELECT MIN(x), MAX(x), COUNT_DISTINCT(y) FROM t "
        "WHERE s = 'str' AND f = true;"));

// ---------------------------------------------------------------------------
// Analyzer.

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzerTest() {
    SchemaPtr bid = *EventSchema::Builder("bid")
                         .AddField("user_id", FieldType::kLong)
                         .AddField("price", FieldType::kDouble)
                         .AddField("country", FieldType::kString)
                         .AddField("exchange_id", FieldType::kLong)
                         .Build();
    SchemaPtr excl = *EventSchema::Builder("exclusion")
                          .AddField("line_item_id", FieldType::kLong)
                          .AddField("reason", FieldType::kString)
                          .AddField("items", FieldType::kLongList)
                          .AddField("exchange_id", FieldType::kLong)
                          .Build();
    EXPECT_TRUE(registry_.Register(bid).ok());
    EXPECT_TRUE(registry_.Register(excl).ok());
  }

  Result<AnalyzedQuery> Run(std::string_view text) {
    return ParseAndAnalyze(text, registry_);
  }

  SchemaRegistry registry_;
};

TEST_F(AnalyzerTest, ResolvesAndDefaults) {
  Result<AnalyzedQuery> aq =
      Run("SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id;");
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  EXPECT_TRUE(aq->has_aggregates);
  EXPECT_EQ(aq->query.window_micros, 10 * kMicrosPerSecond);
  EXPECT_EQ(aq->query.duration_micros, 5 * kMicrosPerMinute);
  EXPECT_EQ(aq->schemas.size(), 1u);
  EXPECT_TRUE(aq->fields_per_source[0].count("user_id"));
}

TEST_F(AnalyzerTest, UnqualifiedFieldsResolveWhenUnambiguous) {
  Result<AnalyzedQuery> aq =
      Run("SELECT user_id FROM bid WHERE price > 1.0;");
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  EXPECT_EQ(aq->query.select[0].expr->qualifier, "bid");
}

TEST_F(AnalyzerTest, AmbiguousFieldRejected) {
  Result<AnalyzedQuery> aq =
      Run("SELECT exchange_id FROM bid, exclusion;");
  ASSERT_FALSE(aq.ok());
  EXPECT_NE(aq.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(AnalyzerTest, CrossSourcePredicateRejected) {
  // The essence of the language restriction: no general join predicates.
  Result<AnalyzedQuery> aq = Run(
      "SELECT COUNT(*) FROM bid, exclusion "
      "WHERE bid.exchange_id = exclusion.exchange_id;");
  ASSERT_FALSE(aq.ok());
  EXPECT_EQ(aq.status().code(), StatusCode::kUnimplemented);
}

TEST_F(AnalyzerTest, PerSourceConjunctsSplit) {
  Result<AnalyzedQuery> aq = Run(
      "SELECT COUNT(*) FROM bid, exclusion "
      "WHERE bid.price > 1.0 AND exclusion.reason = 'budget' AND 1 = 1;");
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  ASSERT_EQ(aq->conjuncts.size(), 3u);
  EXPECT_EQ(aq->conjunct_source[0], 0);
  EXPECT_EQ(aq->conjunct_source[1], 1);
  EXPECT_EQ(aq->conjunct_source[2], -1);
}

TEST_F(AnalyzerTest, TypeErrors) {
  const char* bad[] = {
      "SELECT COUNT(*) FROM bid WHERE bid.country > 1;",
      "SELECT COUNT(*) FROM bid WHERE bid.price AND bid.user_id = 1;",
      "SELECT SUM(bid.country) FROM bid;",
      "SELECT AVG(bid.country) FROM bid;",
      "SELECT COUNT(*) FROM bid WHERE bid.user_id;",  // non-boolean WHERE
      "SELECT bid.price FROM bid GROUP BY bid.user_id;",
      "SELECT COUNT(COUNT(*)) FROM bid;",
      "SELECT COUNT(*) FROM bid WHERE COUNT(*) > 1;",
      "SELECT COUNT(*) FROM bid GROUP BY bid.user_id + 1;",
      "SELECT TOPK(0, bid.user_id) FROM bid;",
      "SELECT COUNT(*) FROM bid WHERE bid.user_id IN (1, 'x');",
      "SELECT COUNT(*) FROM bid WHERE bid.country CONTAINS 'x';",
      "SELECT MIN(exclusion.items) FROM exclusion;",
      "SELECT exclusion.items, COUNT(*) FROM exclusion "
      "GROUP BY exclusion.items;",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Run(text).ok()) << text;
  }
}

TEST_F(AnalyzerTest, ContainsOnListField) {
  Result<AnalyzedQuery> aq = Run(
      "SELECT COUNT(*) FROM exclusion WHERE exclusion.items CONTAINS 42;");
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
}

TEST_F(AnalyzerTest, SystemFieldsUsable) {
  Result<AnalyzedQuery> aq = Run(
      "SELECT COUNT(*) FROM bid WHERE bid.__timestamp > 100 "
      "AND __request_id != 0;");
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
}

TEST_F(AnalyzerTest, SourceValidation) {
  EXPECT_FALSE(Run("SELECT COUNT(*) FROM nosuch;").ok());
  EXPECT_FALSE(Run("SELECT COUNT(*) FROM bid, bid;").ok());
  // Three-way joins are outside the supported subset.
  Result<AnalyzedQuery> three =
      Run("SELECT COUNT(*) FROM bid, exclusion, bid;");
  EXPECT_FALSE(three.ok());
}

TEST_F(AnalyzerTest, DurationLimits) {
  EXPECT_FALSE(
      Run("SELECT COUNT(*) FROM bid WINDOW 10 m DURATION 1 m;").ok());
  EXPECT_FALSE(Run("SELECT COUNT(*) FROM bid DURATION 25 h;").ok());
}

TEST_F(AnalyzerTest, StarOutsideCountRejected) {
  EXPECT_FALSE(Run("SELECT * FROM bid;").ok());
}

TEST_F(AnalyzerTest, CloneIsDeep) {
  Result<AnalyzedQuery> aq = Run(
      "SELECT bid.user_id, COUNT(*) FROM bid WHERE bid.price > 1.0 "
      "GROUP BY bid.user_id;");
  ASSERT_TRUE(aq.ok());
  AnalyzedQuery copy = aq->Clone();
  EXPECT_EQ(copy.query.ToString(), aq->query.ToString());
  EXPECT_EQ(copy.conjuncts.size(), aq->conjuncts.size());
  EXPECT_NE(copy.query.select[0].expr.get(), aq->query.select[0].expr.get());
}

}  // namespace
}  // namespace scrub
