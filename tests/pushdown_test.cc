// Unit tests for the pushdown (host-side aggregation) ablation comparator:
// it must refuse the shapes it cannot handle, aggregate correctly on the
// host, and merge partials to exactly what ScrubCentral would compute.

#include <gtest/gtest.h>

#include "src/baseline/pushdown_agent.h"
#include "src/event/wire.h"

namespace scrub {
namespace {

class PushdownTest : public ::testing::Test {
 protected:
  PushdownTest() {
    schema_ = *EventSchema::Builder("bid")
                   .AddField("user_id", FieldType::kLong)
                   .AddField("price", FieldType::kDouble)
                   .Build();
    imp_schema_ = *EventSchema::Builder("impression")
                       .AddField("cost", FieldType::kDouble)
                       .Build();
    EXPECT_TRUE(registry_.Register(schema_).ok());
    EXPECT_TRUE(registry_.Register(imp_schema_).ok());
  }

  Result<PushdownPlan> Plan(std::string_view text) {
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_);
    if (!aq.ok()) {
      return aq.status();
    }
    return BuildPushdownPlan(*aq, 1, 0);
  }

  Event MakeBid(RequestId rid, TimeMicros ts, int64_t user, double price) {
    Event e(schema_, rid, ts);
    e.SetField(0, Value(user));
    e.SetField(1, Value(price));
    return e;
  }

  SchemaRegistry registry_;
  SchemaPtr schema_;
  SchemaPtr imp_schema_;
  CostMeter meter_;
};

TEST_F(PushdownTest, RejectsUnsupportedShapes) {
  // Joins.
  EXPECT_EQ(Plan("SELECT COUNT(*) FROM bid, impression;").status().code(),
            StatusCode::kUnimplemented);
  // Raw (non-aggregate) queries.
  EXPECT_EQ(Plan("SELECT bid.user_id FROM bid;").status().code(),
            StatusCode::kUnimplemented);
  // Sketch aggregates.
  EXPECT_EQ(Plan("SELECT COUNT_DISTINCT(bid.user_id) FROM bid;")
                .status()
                .code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(Plan("SELECT TOPK(5, bid.user_id) FROM bid;").status().code(),
            StatusCode::kUnimplemented);
  // Sliding windows.
  EXPECT_EQ(Plan("SELECT COUNT(*) FROM bid WINDOW 10 s SLIDE 5 s "
                 "DURATION 60 s;")
                .status()
                .code(),
            StatusCode::kUnimplemented);
}

TEST_F(PushdownTest, AggregatesOnHostAndShipsPartials) {
  Result<PushdownPlan> plan = Plan(
      "SELECT bid.user_id, COUNT(*), AVG(bid.price), MIN(bid.price), "
      "MAX(bid.price) FROM bid GROUP BY bid.user_id "
      "WINDOW 10 s DURATION 60 s;");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  PushdownAgent agent(0, &meter_);
  agent.InstallQuery(*plan);

  // User 1: prices 1,3. User 2: price 10.
  EXPECT_GT(agent.LogEvent(MakeBid(1, 100, 1, 1.0)), 0);
  agent.LogEvent(MakeBid(2, 200, 1, 3.0));
  agent.LogEvent(MakeBid(3, 300, 2, 10.0));
  EXPECT_EQ(agent.current_state_entries(), 2u);
  EXPECT_GT(meter_.scrub_ns(), 0);

  // Window [0,10s) not yet closed.
  EXPECT_TRUE(agent.Flush(5 * kMicrosPerSecond).empty());
  std::vector<PartialBatch> batches = agent.Flush(12 * kMicrosPerSecond);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].groups.size(), 2u);
  EXPECT_GT(batches[0].WireSize(), 0u);
  EXPECT_EQ(agent.current_state_entries(), 0u);

  PushdownCoordinator coordinator(*plan);
  coordinator.Ingest(batches[0]);
  std::vector<ResultRow> rows = coordinator.Finalize();
  ASSERT_EQ(rows.size(), 2u);
  for (const ResultRow& row : rows) {
    if (row.values[0] == Value(int64_t{1})) {
      EXPECT_EQ(row.values[1], Value(int64_t{2}));
      EXPECT_EQ(row.values[2], Value(2.0));   // AVG
      EXPECT_EQ(row.values[3], Value(1.0));   // MIN
      EXPECT_EQ(row.values[4], Value(3.0));   // MAX
    } else {
      EXPECT_EQ(row.values[0], Value(int64_t{2}));
      EXPECT_EQ(row.values[1], Value(int64_t{1}));
    }
  }
}

TEST_F(PushdownTest, SelectionAppliesBeforeAggregation) {
  Result<PushdownPlan> plan = Plan(
      "SELECT COUNT(*) FROM bid WHERE bid.price > 5.0 "
      "WINDOW 10 s DURATION 60 s;");
  ASSERT_TRUE(plan.ok());
  PushdownAgent agent(0, &meter_);
  agent.InstallQuery(*plan);
  agent.LogEvent(MakeBid(1, 100, 1, 10.0));
  agent.LogEvent(MakeBid(2, 200, 1, 1.0));  // filtered
  std::vector<PartialBatch> batches = agent.Flush(12 * kMicrosPerSecond);
  ASSERT_EQ(batches.size(), 1u);
  PushdownCoordinator coordinator(*plan);
  coordinator.Ingest(batches[0]);
  const std::vector<ResultRow> rows = coordinator.Finalize();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].values[0], Value(int64_t{1}));
}

TEST_F(PushdownTest, MergesPartialsFromMultipleHosts) {
  Result<PushdownPlan> plan = Plan(
      "SELECT COUNT(*), SUM(bid.price) FROM bid WINDOW 10 s DURATION 60 s;");
  ASSERT_TRUE(plan.ok());
  PushdownCoordinator coordinator(*plan);
  CostMeter meters[2];
  for (int h = 0; h < 2; ++h) {
    PushdownAgent agent(h, &meters[h]);
    agent.InstallQuery(*plan);
    for (int i = 0; i < 5; ++i) {
      agent.LogEvent(MakeBid(static_cast<RequestId>(h * 10 + i),
                             100 + i, 1, 2.0));
    }
    for (const PartialBatch& batch : agent.Flush(12 * kMicrosPerSecond)) {
      coordinator.Ingest(batch);
    }
  }
  const std::vector<ResultRow> rows = coordinator.Finalize();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].values[0], Value(int64_t{10}));
  EXPECT_EQ(rows[0].values[1], Value(20.0));
}

TEST_F(PushdownTest, PeakStateGrowsWithCardinality) {
  Result<PushdownPlan> plan = Plan(
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "WINDOW 60 s DURATION 60 s;");
  ASSERT_TRUE(plan.ok());
  PushdownAgent agent(0, &meter_);
  agent.InstallQuery(*plan);
  for (int64_t u = 0; u < 500; ++u) {
    agent.LogEvent(MakeBid(static_cast<RequestId>(u), 100, u, 1.0));
  }
  EXPECT_EQ(agent.peak_state_entries(), 500u);
}

TEST_F(PushdownTest, ExpiryDropsState) {
  Result<PushdownPlan> plan =
      Plan("SELECT COUNT(*) FROM bid WINDOW 10 s DURATION 20 s;");
  ASSERT_TRUE(plan.ok());
  PushdownAgent agent(0, &meter_);
  agent.InstallQuery(*plan);
  agent.LogEvent(MakeBid(1, 100, 1, 1.0));
  // Query expires; the final flush ships everything and frees the query.
  std::vector<PartialBatch> batches = agent.Flush(25 * kMicrosPerSecond);
  EXPECT_EQ(batches.size(), 1u);
  agent.LogEvent(MakeBid(2, 26 * kMicrosPerSecond, 1, 1.0));
  EXPECT_TRUE(agent.Flush(30 * kMicrosPerSecond).empty());
}

}  // namespace
}  // namespace scrub
