// Tests for the load-protection limits: server admission control and the
// central join-state bound — both instances of the paper's "shed, never
// grow without bound" stance.

#include <gtest/gtest.h>

#include "src/central/central.h"
#include "src/event/wire.h"
#include "src/query/analyzer.h"
#include "src/scrub/scrub_system.h"

namespace scrub {
namespace {

TEST(AdmissionControlTest, RejectsBeyondActiveQueryLimit) {
  SystemConfig config;
  config.seed = 3;
  config.platform.seed = 3;
  config.platform.datacenters = 1;
  config.platform.bidservers_per_dc = 1;
  config.platform.adservers_per_dc = 1;
  config.server.max_active_queries = 3;
  ScrubSystem system(config);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(system
                    .Submit("SELECT COUNT(*) FROM bid WINDOW 1 s "
                            "DURATION 30 s;",
                            [](const ResultRow&) {})
                    .ok());
  }
  Result<SubmittedQuery> fourth = system.Submit(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 30 s;",
      [](const ResultRow&) {});
  ASSERT_FALSE(fourth.ok());
  EXPECT_EQ(fourth.status().code(), StatusCode::kResourceExhausted);

  // Cancelling one frees a slot.
  ASSERT_TRUE(system.server().Cancel(1).ok());
  EXPECT_TRUE(system
                  .Submit("SELECT COUNT(*) FROM bid WINDOW 1 s "
                          "DURATION 30 s;",
                          [](const ResultRow&) {})
                  .ok());
}

TEST(JoinBoundTest, ShedsRequestIdsBeyondCapacity) {
  SchemaRegistry registry;
  SchemaPtr bid = *EventSchema::Builder("bid")
                       .AddField("user_id", FieldType::kLong)
                       .Build();
  SchemaPtr imp = *EventSchema::Builder("impression")
                       .AddField("cost", FieldType::kDouble)
                       .Build();
  ASSERT_TRUE(registry.Register(bid).ok());
  ASSERT_TRUE(registry.Register(imp).ok());

  CentralConfig config;
  config.max_join_requests_per_window = 100;
  ScrubCentral central(&registry, config);

  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      "SELECT COUNT(*) FROM bid, impression WINDOW 10 s DURATION 10 s;",
      registry);
  ASSERT_TRUE(aq.ok());
  Result<QueryPlan> plan = PlanQuery(*aq, 1, 0);
  ASSERT_TRUE(plan.ok());
  CentralPlan central_plan = plan->central;
  central_plan.hosts_targeted = 1;
  central_plan.hosts_sampled = 1;
  uint64_t total = 0;
  ASSERT_TRUE(central
                  .InstallQuery(central_plan,
                                [&total](const ResultRow& row) {
                                  total += static_cast<uint64_t>(
                                      row.values[0].AsInt());
                                })
                  .ok());

  // 300 matched pairs on distinct request ids: only the first 100 rids fit.
  std::vector<Event> events;
  for (RequestId rid = 1; rid <= 300; ++rid) {
    Event b(bid, rid, 100);
    b.SetField(0, Value(int64_t{1}));
    events.push_back(std::move(b));
    Event i(imp, rid, 200);
    i.SetField(0, Value(0.001));
    events.push_back(std::move(i));
  }
  EventBatch batch;
  batch.query_id = central_plan.query_id;
  batch.host = 0;
  batch.event_count = events.size();
  batch.payload = EncodeBatch(events);
  ASSERT_TRUE(central.IngestBatch(batch, 0).ok());
  central.OnTick(60 * kMicrosPerSecond);

  const CentralQueryStats* stats = central.StatsFor(central_plan.query_id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(total, 100u);            // joined within the bound
  EXPECT_EQ(stats->join_shed, 400u); // 200 pairs shed, both sides counted
}

TEST(JoinBoundTest, BoundIsPerWindow) {
  SchemaRegistry registry;
  SchemaPtr bid = *EventSchema::Builder("bid")
                       .AddField("user_id", FieldType::kLong)
                       .Build();
  SchemaPtr imp = *EventSchema::Builder("impression")
                       .AddField("cost", FieldType::kDouble)
                       .Build();
  ASSERT_TRUE(registry.Register(bid).ok());
  ASSERT_TRUE(registry.Register(imp).ok());
  CentralConfig config;
  config.max_join_requests_per_window = 50;
  ScrubCentral central(&registry, config);
  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      "SELECT COUNT(*) FROM bid, impression WINDOW 1 s DURATION 10 s;",
      registry);
  ASSERT_TRUE(aq.ok());
  Result<QueryPlan> plan = PlanQuery(*aq, 1, 0);
  CentralPlan central_plan = plan->central;
  central_plan.hosts_targeted = 1;
  central_plan.hosts_sampled = 1;
  uint64_t total = 0;
  ASSERT_TRUE(central
                  .InstallQuery(central_plan,
                                [&total](const ResultRow& row) {
                                  total += static_cast<uint64_t>(
                                      row.values[0].AsInt());
                                })
                  .ok());
  // 50 pairs in each of two windows: the bound resets per window.
  std::vector<Event> events;
  RequestId rid = 1;
  for (const TimeMicros base : {TimeMicros{100}, kMicrosPerSecond + 100}) {
    for (int i = 0; i < 50; ++i, ++rid) {
      Event b(bid, rid, base);
      b.SetField(0, Value(int64_t{1}));
      events.push_back(std::move(b));
      Event im(imp, rid, base + 10);
      im.SetField(0, Value(0.001));
      events.push_back(std::move(im));
    }
  }
  EventBatch batch;
  batch.query_id = central_plan.query_id;
  batch.host = 0;
  batch.event_count = events.size();
  batch.payload = EncodeBatch(events);
  ASSERT_TRUE(central.IngestBatch(batch, 0).ok());
  central.OnTick(60 * kMicrosPerSecond);
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(central.StatsFor(central_plan.query_id)->join_shed, 0u);
}

}  // namespace
}  // namespace scrub
