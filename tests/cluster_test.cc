// Unit tests for the simulated cluster: scheduler determinism, host
// registry + target resolution, and the transport's latency/byte accounting.

#include <tuple>

#include <gtest/gtest.h>

#include "src/cluster/host_registry.h"
#include "src/cluster/scheduler.h"
#include "src/cluster/transport.h"

namespace scrub {
namespace {

TEST(SchedulerTest, FiresInTimeThenInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(100, [&] { order.push_back(2); });
  sched.ScheduleAt(50, [&] { order.push_back(1); });
  sched.ScheduleAt(100, [&] { order.push_back(3); });  // same time: after 2
  sched.RunUntil(200);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), 200);
}

TEST(SchedulerTest, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int fired = 0;
  sched.ScheduleAt(100, [&] { ++fired; });
  sched.ScheduleAt(300, [&] { ++fired; });
  sched.RunUntil(200);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.pending(), 1u);
  sched.RunUntil(400);
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, CallbacksMayScheduleMoreWork) {
  Scheduler sched;
  std::vector<TimeMicros> fire_times;
  std::function<void()> chain = [&] {
    fire_times.push_back(sched.Now());
    if (fire_times.size() < 5) {
      sched.ScheduleAfter(10, chain);
    }
  };
  sched.ScheduleAt(0, chain);
  sched.RunAll();
  EXPECT_EQ(fire_times,
            (std::vector<TimeMicros>{0, 10, 20, 30, 40}));
}

TEST(SchedulerTest, PastEventsClampToNow) {
  Scheduler sched;
  sched.RunUntil(100);
  TimeMicros fired_at = -1;
  sched.ScheduleAt(50, [&] { fired_at = sched.Now(); });
  sched.RunAll();
  EXPECT_EQ(fired_at, 100);
}

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() {
    registry_.AddHost("bid-dc1-00", "BidServers", "DC1");
    registry_.AddHost("bid-dc1-01", "BidServers", "DC1");
    registry_.AddHost("bid-dc2-00", "BidServers", "DC2");
    registry_.AddHost("ad-dc1-00", "AdServers", "DC1");
    registry_.AddHost("central", "ScrubCentral", "DC1",
                      /*monitorable=*/false);
  }
  HostRegistry registry_;
};

TEST_F(RegistryTest, UnrestrictedMatchesAllMonitorable) {
  Result<std::vector<HostId>> hosts = registry_.Resolve(TargetSpec{});
  ASSERT_TRUE(hosts.ok());
  EXPECT_EQ(hosts->size(), 4u);  // central excluded
}

TEST_F(RegistryTest, ServiceAndDatacenterFiltersCompose) {
  TargetSpec spec;
  spec.services = {"BidServers"};
  spec.datacenters = {"DC1"};
  Result<std::vector<HostId>> hosts = registry_.Resolve(spec);
  ASSERT_TRUE(hosts.ok());
  EXPECT_EQ(hosts->size(), 2u);
}

TEST_F(RegistryTest, HostListRestricts) {
  TargetSpec spec;
  spec.services = {"BidServers"};
  spec.hosts = {"bid-dc2-00"};
  Result<std::vector<HostId>> hosts = registry_.Resolve(spec);
  ASSERT_TRUE(hosts.ok());
  ASSERT_EQ(hosts->size(), 1u);
  EXPECT_EQ(registry_.Get((*hosts)[0]).name, "bid-dc2-00");
}

TEST_F(RegistryTest, TyposAreErrorsNotEmptyResults) {
  TargetSpec bad_service;
  bad_service.services = {"BidServerz"};
  EXPECT_EQ(registry_.Resolve(bad_service).status().code(),
            StatusCode::kNotFound);
  TargetSpec bad_host;
  bad_host.hosts = {"nope"};
  EXPECT_FALSE(registry_.Resolve(bad_host).ok());
  TargetSpec bad_dc;
  bad_dc.datacenters = {"DC9"};
  EXPECT_FALSE(registry_.Resolve(bad_dc).ok());
}

TEST_F(RegistryTest, ScrubInfraNotTargetable) {
  TargetSpec spec;
  spec.services = {"ScrubCentral"};
  Result<std::vector<HostId>> hosts = registry_.Resolve(spec);
  ASSERT_TRUE(hosts.ok());
  EXPECT_TRUE(hosts->empty());  // service exists but is non-monitorable
}

TEST_F(RegistryTest, FindByName) {
  Result<HostId> id = registry_.FindByName("ad-dc1-00");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(registry_.Get(*id).service, "AdServers");
  EXPECT_FALSE(registry_.FindByName("ghost").ok());
}

TEST(TransportTest, LatencyByTopology) {
  Scheduler sched;
  HostRegistry registry;
  const HostId a = registry.AddHost("a", "S", "DC1");
  const HostId b = registry.AddHost("b", "S", "DC1");
  const HostId c = registry.AddHost("c", "S", "DC2");
  TransportConfig config;
  Transport transport(&sched, &registry, config);
  EXPECT_EQ(transport.LatencyBetween(a, a), config.same_host_latency);
  EXPECT_EQ(transport.LatencyBetween(a, b), config.same_dc_latency);
  EXPECT_EQ(transport.LatencyBetween(a, c), config.cross_dc_latency);
}

TEST(TransportTest, DeliveryTimeIncludesBandwidthTerm) {
  Scheduler sched;
  HostRegistry registry;
  const HostId a = registry.AddHost("a", "S", "DC1");
  const HostId b = registry.AddHost("b", "S", "DC1");
  Transport transport(&sched, &registry);
  TimeMicros delivered_at = -1;
  // 1 MB at 0.001 us/byte = 1000 us, plus 250 us same-DC latency.
  transport.Send(a, b, 1'000'000, TrafficCategory::kScrubEvents,
                 [&] { delivered_at = sched.Now(); });
  sched.RunAll();
  EXPECT_EQ(delivered_at, 250 + 1000);
}

// --- Fault injection --------------------------------------------------------

class TransportFaultTest : public ::testing::Test {
 protected:
  TransportFaultTest()
      : a_(registry_.AddHost("a", "S", "DC1")),
        b_(registry_.AddHost("b", "S", "DC1")),
        c_(registry_.AddHost("c", "S", "DC2")),
        d_(registry_.AddHost("d", "S", "DC2")),
        transport_(&sched_, &registry_) {}

  Scheduler sched_;
  HostRegistry registry_;
  HostId a_, b_, c_, d_;
  Transport transport_;
};

TEST_F(TransportFaultTest, DropAllNeverDeliversButStillAccountsBytes) {
  FaultPlan plan;
  plan.Category(TrafficCategory::kScrubEvents).drop = 1.0;
  transport_.SetFaultPlan(plan);
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    transport_.Send(a_, b_, 100, TrafficCategory::kScrubEvents,
                    [&] { ++delivered; });
  }
  sched_.RunAll();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(transport_.fault_stats(TrafficCategory::kScrubEvents).dropped,
            10u);
  // The sender paid to serialize the message whether or not it arrived.
  EXPECT_EQ(transport_.bytes_sent(TrafficCategory::kScrubEvents), 1000u);
  EXPECT_EQ(transport_.messages_sent(TrafficCategory::kScrubEvents), 10u);
}

TEST_F(TransportFaultTest, DuplicateDeliversTwice) {
  FaultPlan plan;
  plan.Category(TrafficCategory::kScrubEvents).duplicate = 1.0;
  transport_.SetFaultPlan(plan);
  int delivered = 0;
  transport_.Send(a_, b_, 100, TrafficCategory::kScrubEvents,
                  [&] { ++delivered; });
  sched_.RunAll();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(transport_.fault_stats(TrafficCategory::kScrubEvents).duplicated,
            1u);
}

TEST_F(TransportFaultTest, DeadRecipientDropsInsteadOfExecuting) {
  registry_.SetAlive(b_, false);
  int delivered = 0;
  transport_.Send(a_, b_, 100, TrafficCategory::kScrubEvents,
                  [&] { ++delivered; });
  sched_.RunAll();
  EXPECT_EQ(delivered, 0);
  const FaultStats& stats =
      transport_.fault_stats(TrafficCategory::kScrubEvents);
  EXPECT_EQ(stats.dead_host, 1u);
  EXPECT_EQ(stats.dropped, 1u);  // dead-host drops count as dropped too
  EXPECT_EQ(transport_.bytes_sent(TrafficCategory::kScrubEvents), 100u);
}

TEST_F(TransportFaultTest, DeadSenderSendsNothing) {
  registry_.SetAlive(a_, false);
  int delivered = 0;
  transport_.Send(a_, b_, 100, TrafficCategory::kScrubEvents,
                  [&] { ++delivered; });
  sched_.RunAll();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(transport_.fault_stats(TrafficCategory::kScrubEvents).dead_host,
            1u);
}

TEST_F(TransportFaultTest, CrashAfterSendDropsAtDeliveryTime) {
  int delivered = 0;
  transport_.Send(a_, b_, 100, TrafficCategory::kScrubEvents,
                  [&] { ++delivered; });
  // The host dies while the message is in flight: it must not execute on
  // the dead host's behalf.
  registry_.SetAlive(b_, false);
  sched_.RunAll();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(transport_.fault_stats(TrafficCategory::kScrubEvents).dead_host,
            1u);
}

TEST_F(TransportFaultTest, PartitionCutsOnlyCrossDcLinks) {
  FaultPlan plan;
  PartitionSpec partition;
  partition.datacenter = "DC2";
  partition.start = 0;
  partition.end = 1000;
  plan.partitions.push_back(partition);
  transport_.SetFaultPlan(plan);

  int intra_dc1 = 0, cross = 0, intra_dc2 = 0;
  EXPECT_TRUE(transport_.Partitioned(a_, c_));
  EXPECT_FALSE(transport_.Partitioned(a_, b_));
  EXPECT_FALSE(transport_.Partitioned(c_, d_));
  transport_.Send(a_, b_, 10, TrafficCategory::kAppTraffic,
                  [&] { ++intra_dc1; });
  transport_.Send(a_, c_, 10, TrafficCategory::kAppTraffic, [&] { ++cross; });
  transport_.Send(c_, d_, 10, TrafficCategory::kAppTraffic,
                  [&] { ++intra_dc2; });
  sched_.RunUntil(1000);
  EXPECT_EQ(intra_dc1, 1);
  EXPECT_EQ(intra_dc2, 1);
  EXPECT_EQ(cross, 0);
  EXPECT_EQ(transport_.fault_stats(TrafficCategory::kAppTraffic).partitioned,
            1u);

  // The partition heals at `end`; the same link works again.
  sched_.RunUntil(2000);
  EXPECT_FALSE(transport_.Partitioned(a_, c_));
  transport_.Send(a_, c_, 10, TrafficCategory::kAppTraffic, [&] { ++cross; });
  sched_.RunAll();
  EXPECT_EQ(cross, 1);
}

TEST_F(TransportFaultTest, FaultStreamIsDeterministicPerSeed) {
  auto run = [this](uint64_t seed) {
    Scheduler sched;
    Transport transport(&sched, &registry_);
    FaultPlan plan;
    plan.seed = seed;
    plan.Category(TrafficCategory::kScrubEvents).drop = 0.3;
    plan.Category(TrafficCategory::kScrubEvents).duplicate = 0.3;
    transport.SetFaultPlan(plan);
    int delivered = 0;
    for (int i = 0; i < 200; ++i) {
      transport.Send(a_, b_, 10, TrafficCategory::kScrubEvents,
                     [&] { ++delivered; });
    }
    sched.RunAll();
    const FaultStats& stats =
        transport.fault_stats(TrafficCategory::kScrubEvents);
    return std::make_tuple(delivered, stats.dropped, stats.duplicated);
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // the seed actually matters
}

TEST_F(TransportFaultTest, CleanCategoriesStayUndisturbed) {
  // A hostile plan against Scrub's traffic must not perturb app traffic:
  // same delivery time as a fault-free transport, no randomness consumed.
  FaultPlan plan;
  plan.Category(TrafficCategory::kScrubEvents).drop = 0.5;
  plan.Category(TrafficCategory::kScrubEvents).spike = 0.5;
  transport_.SetFaultPlan(plan);
  TimeMicros delivered_at = -1;
  transport_.Send(a_, b_, 1000, TrafficCategory::kAppTraffic,
                  [&] { delivered_at = sched_.Now(); });
  sched_.RunAll();
  EXPECT_EQ(delivered_at, 250 + 1);  // same-DC latency + bandwidth, exactly
  const FaultStats& stats =
      transport_.fault_stats(TrafficCategory::kAppTraffic);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.spiked, 0u);
}

TEST(TransportTest, ByteAccountingPerCategory) {
  Scheduler sched;
  HostRegistry registry;
  const HostId a = registry.AddHost("a", "S", "DC1");
  const HostId b = registry.AddHost("b", "S", "DC1");
  Transport transport(&sched, &registry);
  transport.Send(a, b, 100, TrafficCategory::kScrubEvents, [] {});
  transport.Send(a, b, 200, TrafficCategory::kScrubEvents, [] {});
  transport.Send(a, b, 50, TrafficCategory::kBaselineLog, [] {});
  EXPECT_EQ(transport.bytes_sent(TrafficCategory::kScrubEvents), 300u);
  EXPECT_EQ(transport.messages_sent(TrafficCategory::kScrubEvents), 2u);
  EXPECT_EQ(transport.bytes_sent(TrafficCategory::kBaselineLog), 50u);
  EXPECT_EQ(transport.total_bytes(), 350u);
  transport.ResetCounters();
  EXPECT_EQ(transport.total_bytes(), 0u);
}

}  // namespace
}  // namespace scrub
