// Fuzz-style negative tests for the wire codec: DecodeEvent/DecodeBatch run
// on bytes that crossed the network, so every length prefix, count and tag
// byte is hostile until proven otherwise. Decoding corrupt input must fail
// with a status — never crash, never allocate unbounded memory. The
// SCRUB_SANITIZE (ASan+UBSan) build flavor exists to keep these honest.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/event/event.h"
#include "src/event/schema.h"
#include "src/event/wire.h"

namespace scrub {
namespace {

class WireFuzzTest : public ::testing::Test {
 protected:
  WireFuzzTest() {
    schema_ = *EventSchema::Builder("probe")
                   .AddField("flag", FieldType::kBool)
                   .AddField("n", FieldType::kLong)
                   .AddField("x", FieldType::kDouble)
                   .AddField("name", FieldType::kString)
                   .AddField("ids", FieldType::kLongList)
                   .AddField("meta", FieldType::kObject)
                   .Build();
    EXPECT_TRUE(registry_.Register(schema_).ok());
  }

  Event SampleEvent(uint64_t request_id) const {
    Event e(schema_, request_id, /*timestamp=*/123'456);
    e.SetField(0, Value(true));
    e.SetField(1, Value(int64_t{42}));
    e.SetField(2, Value(3.25));
    e.SetField(3, Value("hello wire"));
    e.SetField(4, Value(std::vector<Value>{Value(int64_t{1}),
                                           Value(int64_t{2})}));
    NestedObject meta;
    meta.fields.emplace_back("k", Value(int64_t{7}));
    e.SetField(5, Value(std::move(meta)));
    return e;
  }

  std::string EncodedEvent() const {
    std::string buf;
    EncodeEvent(SampleEvent(1), &buf);
    return buf;
  }

  SchemaRegistry registry_;
  SchemaPtr schema_;
};

// Overwrites 4 bytes at `pos` with a little-endian u32.
void PatchU32(std::string* buf, size_t pos, uint32_t v) {
  ASSERT_LE(pos + 4, buf->size());
  std::memcpy(buf->data() + pos, &v, 4);
}

TEST_F(WireFuzzTest, EveryTruncationOfAnEventFailsCleanly) {
  const std::string full = EncodedEvent();
  for (size_t len = 0; len < full.size(); ++len) {
    const std::string truncated = full.substr(0, len);
    size_t offset = 0;
    Result<Event> e = DecodeEvent(registry_, truncated, &offset);
    EXPECT_FALSE(e.ok()) << "decode succeeded on prefix of " << len
                         << " of " << full.size() << " bytes";
  }
  // Sanity: the untruncated buffer round-trips.
  size_t offset = 0;
  Result<Event> e = DecodeEvent(registry_, full, &offset);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(offset, full.size());
}

TEST_F(WireFuzzTest, EveryTruncationOfABatchFailsCleanly) {
  const std::string full = EncodeBatch({SampleEvent(1), SampleEvent(2)});
  for (size_t len = 0; len < full.size(); ++len) {
    Result<std::vector<Event>> r =
        DecodeBatch(registry_, full.substr(0, len));
    EXPECT_FALSE(r.ok()) << "decode succeeded on prefix of " << len
                         << " bytes";
  }
  Result<std::vector<Event>> r = DecodeBatch(registry_, full);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
}

TEST_F(WireFuzzTest, OversizedTypeNameLengthIsRejected) {
  std::string buf = EncodedEvent();
  // The event starts with u32 type-name length; claim 4 GB.
  PatchU32(&buf, 0, 0xffffffffu);
  size_t offset = 0;
  EXPECT_FALSE(DecodeEvent(registry_, buf, &offset).ok());
}

TEST_F(WireFuzzTest, OversizedBatchCountIsRejected) {
  std::string buf = EncodeBatch({SampleEvent(1)});
  // A count prefix far beyond what the remaining bytes could hold must be
  // rejected up front, not fed to vector::reserve.
  PatchU32(&buf, 0, 0xffffffffu);
  EXPECT_FALSE(DecodeBatch(registry_, buf).ok());
}

TEST_F(WireFuzzTest, OversizedListAndObjectCountsAreRejected) {
  const std::string full = EncodedEvent();
  // Patch every aligned u32 position to a huge count; whatever structure
  // that byte range encodes (string length, list count, object count), the
  // decoder must fail cleanly instead of allocating.
  for (size_t pos = 0; pos + 4 <= full.size(); ++pos) {
    std::string buf = full;
    PatchU32(&buf, pos, 0xfffffff0u);
    size_t offset = 0;
    Result<Event> e = DecodeEvent(registry_, buf, &offset);
    if (e.ok()) {
      // A patch past the value data may land in trailing payload bytes the
      // schema never reads; success is fine as long as nothing crashed.
      continue;
    }
  }
}

TEST_F(WireFuzzTest, UnknownValueTagIsRejected) {
  const std::string full = EncodedEvent();
  // Flip every single byte to an invalid tag value and decode: corrupt tags
  // must yield a status, never UB.
  for (size_t pos = 0; pos < full.size(); ++pos) {
    std::string buf = full;
    buf[pos] = static_cast<char>(0x7f);  // no value tag uses 0x7f
    size_t offset = 0;
    (void)DecodeEvent(registry_, buf, &offset);  // must not crash
  }
}

TEST_F(WireFuzzTest, DeepListNestingIsCapped) {
  // A list-of-list-of-... crafted at ~5 bytes per level: without the depth
  // cap the recursive decoder would walk off the stack.
  constexpr uint8_t kTagList = 6;  // mirrors wire.cc's private tag table
  std::string buf;
  // Event header for "probe".
  const std::string name = "probe";
  uint32_t name_len = static_cast<uint32_t>(name.size());
  buf.append(reinterpret_cast<const char*>(&name_len), 4);
  buf.append(name);
  uint64_t request_id = 1;
  uint64_t timestamp = 2;
  buf.append(reinterpret_cast<const char*>(&request_id), 8);
  buf.append(reinterpret_cast<const char*>(&timestamp), 8);
  // First field value: 10k nested single-element lists.
  for (int i = 0; i < 10'000; ++i) {
    buf.push_back(static_cast<char>(kTagList));
    uint32_t one = 1;
    buf.append(reinterpret_cast<const char*>(&one), 4);
  }
  size_t offset = 0;
  Result<Event> e = DecodeEvent(registry_, buf, &offset);
  EXPECT_FALSE(e.ok());
  EXPECT_NE(e.status().ToString().find("nesting"), std::string::npos)
      << e.status().ToString();
}

TEST_F(WireFuzzTest, RandomByteFlipsNeverCrashTheDecoder) {
  const std::string batch = EncodeBatch(
      {SampleEvent(1), SampleEvent(2), SampleEvent(3)});
  Rng rng(0xf00d);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string buf = batch;
    const int flips = 1 + static_cast<int>(rng.NextUint64() % 8);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(rng.NextUint64() % buf.size());
      buf[pos] = static_cast<char>(rng.NextUint64() & 0xff);
    }
    // Must terminate with ok-or-status; ASan/UBSan keep "terminate" honest.
    (void)DecodeBatch(registry_, buf);
  }
}

TEST_F(WireFuzzTest, RandomGarbageNeverCrashesTheDecoder) {
  Rng rng(0xbeef);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t len = static_cast<size_t>(rng.NextUint64() % 256);
    std::string buf;
    buf.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      buf.push_back(static_cast<char>(rng.NextUint64() & 0xff));
    }
    (void)DecodeBatch(registry_, buf);
    size_t offset = 0;
    (void)DecodeEvent(registry_, buf, &offset);
  }
}

}  // namespace
}  // namespace scrub
