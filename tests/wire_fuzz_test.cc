// Fuzz-style negative tests for the wire codec: DecodeEvent/DecodeBatch run
// on bytes that crossed the network, so every length prefix, count and tag
// byte is hostile until proven otherwise. Decoding corrupt input must fail
// with a status — never crash, never allocate unbounded memory. The
// SCRUB_SANITIZE (ASan+UBSan) build flavor exists to keep these honest.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/event/column_batch.h"
#include "src/event/event.h"
#include "src/event/schema.h"
#include "src/event/wire.h"

namespace scrub {
namespace {

class WireFuzzTest : public ::testing::Test {
 protected:
  WireFuzzTest() {
    schema_ = *EventSchema::Builder("probe")
                   .AddField("flag", FieldType::kBool)
                   .AddField("n", FieldType::kLong)
                   .AddField("x", FieldType::kDouble)
                   .AddField("name", FieldType::kString)
                   .AddField("ids", FieldType::kLongList)
                   .AddField("meta", FieldType::kObject)
                   .Build();
    EXPECT_TRUE(registry_.Register(schema_).ok());
  }

  Event SampleEvent(uint64_t request_id) const {
    Event e(schema_, request_id, /*timestamp=*/123'456);
    e.SetField(0, Value(true));
    e.SetField(1, Value(int64_t{42}));
    e.SetField(2, Value(3.25));
    e.SetField(3, Value("hello wire"));
    e.SetField(4, Value(std::vector<Value>{Value(int64_t{1}),
                                           Value(int64_t{2})}));
    NestedObject meta;
    meta.fields.emplace_back("k", Value(int64_t{7}));
    e.SetField(5, Value(std::move(meta)));
    return e;
  }

  std::string EncodedEvent() const {
    std::string buf;
    EncodeEvent(SampleEvent(1), &buf);
    return buf;
  }

  SchemaRegistry registry_;
  SchemaPtr schema_;
};

// Overwrites 4 bytes at `pos` with a little-endian u32.
void PatchU32(std::string* buf, size_t pos, uint32_t v) {
  ASSERT_LE(pos + 4, buf->size());
  std::memcpy(buf->data() + pos, &v, 4);
}

TEST_F(WireFuzzTest, EveryTruncationOfAnEventFailsCleanly) {
  const std::string full = EncodedEvent();
  for (size_t len = 0; len < full.size(); ++len) {
    const std::string truncated = full.substr(0, len);
    size_t offset = 0;
    Result<Event> e = DecodeEvent(registry_, truncated, &offset);
    EXPECT_FALSE(e.ok()) << "decode succeeded on prefix of " << len
                         << " of " << full.size() << " bytes";
  }
  // Sanity: the untruncated buffer round-trips.
  size_t offset = 0;
  Result<Event> e = DecodeEvent(registry_, full, &offset);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(offset, full.size());
}

TEST_F(WireFuzzTest, EveryTruncationOfABatchFailsCleanly) {
  const std::string full = EncodeBatch({SampleEvent(1), SampleEvent(2)});
  for (size_t len = 0; len < full.size(); ++len) {
    Result<std::vector<Event>> r =
        DecodeBatch(registry_, full.substr(0, len));
    EXPECT_FALSE(r.ok()) << "decode succeeded on prefix of " << len
                         << " bytes";
  }
  Result<std::vector<Event>> r = DecodeBatch(registry_, full);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
}

TEST_F(WireFuzzTest, OversizedTypeNameLengthIsRejected) {
  std::string buf = EncodedEvent();
  // The event starts with u32 type-name length; claim 4 GB.
  PatchU32(&buf, 0, 0xffffffffu);
  size_t offset = 0;
  EXPECT_FALSE(DecodeEvent(registry_, buf, &offset).ok());
}

TEST_F(WireFuzzTest, OversizedBatchCountIsRejected) {
  std::string buf = EncodeBatch({SampleEvent(1)});
  // A count prefix far beyond what the remaining bytes could hold must be
  // rejected up front, not fed to vector::reserve.
  PatchU32(&buf, 0, 0xffffffffu);
  EXPECT_FALSE(DecodeBatch(registry_, buf).ok());
}

TEST_F(WireFuzzTest, OversizedListAndObjectCountsAreRejected) {
  const std::string full = EncodedEvent();
  // Patch every aligned u32 position to a huge count; whatever structure
  // that byte range encodes (string length, list count, object count), the
  // decoder must fail cleanly instead of allocating.
  for (size_t pos = 0; pos + 4 <= full.size(); ++pos) {
    std::string buf = full;
    PatchU32(&buf, pos, 0xfffffff0u);
    size_t offset = 0;
    Result<Event> e = DecodeEvent(registry_, buf, &offset);
    if (e.ok()) {
      // A patch past the value data may land in trailing payload bytes the
      // schema never reads; success is fine as long as nothing crashed.
      continue;
    }
  }
}

TEST_F(WireFuzzTest, UnknownValueTagIsRejected) {
  const std::string full = EncodedEvent();
  // Flip every single byte to an invalid tag value and decode: corrupt tags
  // must yield a status, never UB.
  for (size_t pos = 0; pos < full.size(); ++pos) {
    std::string buf = full;
    buf[pos] = static_cast<char>(0x7f);  // no value tag uses 0x7f
    size_t offset = 0;
    (void)DecodeEvent(registry_, buf, &offset);  // must not crash
  }
}

TEST_F(WireFuzzTest, DeepListNestingIsCapped) {
  // A list-of-list-of-... crafted at ~5 bytes per level: without the depth
  // cap the recursive decoder would walk off the stack.
  constexpr uint8_t kTagList = 6;  // mirrors wire.cc's private tag table
  std::string buf;
  // Event header for "probe".
  const std::string name = "probe";
  uint32_t name_len = static_cast<uint32_t>(name.size());
  buf.append(reinterpret_cast<const char*>(&name_len), 4);
  buf.append(name);
  uint64_t request_id = 1;
  uint64_t timestamp = 2;
  buf.append(reinterpret_cast<const char*>(&request_id), 8);
  buf.append(reinterpret_cast<const char*>(&timestamp), 8);
  // First field value: 10k nested single-element lists.
  for (int i = 0; i < 10'000; ++i) {
    buf.push_back(static_cast<char>(kTagList));
    uint32_t one = 1;
    buf.append(reinterpret_cast<const char*>(&one), 4);
  }
  size_t offset = 0;
  Result<Event> e = DecodeEvent(registry_, buf, &offset);
  EXPECT_FALSE(e.ok());
  EXPECT_NE(e.status().ToString().find("nesting"), std::string::npos)
      << e.status().ToString();
}

TEST_F(WireFuzzTest, RandomByteFlipsNeverCrashTheDecoder) {
  const std::string batch = EncodeBatch(
      {SampleEvent(1), SampleEvent(2), SampleEvent(3)});
  Rng rng(0xf00d);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string buf = batch;
    const int flips = 1 + static_cast<int>(rng.NextUint64() % 8);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(rng.NextUint64() % buf.size());
      buf[pos] = static_cast<char>(rng.NextUint64() & 0xff);
    }
    // Must terminate with ok-or-status; ASan/UBSan keep "terminate" honest.
    (void)DecodeBatch(registry_, buf);
  }
}

TEST_F(WireFuzzTest, RandomGarbageNeverCrashesTheDecoder) {
  Rng rng(0xbeef);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t len = static_cast<size_t>(rng.NextUint64() % 256);
    std::string buf;
    buf.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      buf.push_back(static_cast<char>(rng.NextUint64() & 0xff));
    }
    (void)DecodeBatch(registry_, buf);
    size_t offset = 0;
    (void)DecodeEvent(registry_, buf, &offset);
  }
}

// ---- Columnar wire format ------------------------------------------------
// The columnar codec carries the same hostile-bytes contract as the row
// codec: every length, row count, null bitmap and column tag is attacker-
// controlled until validated.

// A random value for the property test. Scalar fields occasionally get a
// type-mismatched value (schema drift) to exercise the generic migration.
Value RandomValue(FieldType type, Rng* rng) {
  const auto random_scalar = [&](FieldType t) -> Value {
    switch (t) {
      case FieldType::kBool:
        return Value(rng->NextBool(0.5));
      case FieldType::kInt:
      case FieldType::kLong:
      case FieldType::kDateTime:
        return Value(static_cast<int64_t>(rng->NextUint64() % 100'000));
      case FieldType::kFloat:
      case FieldType::kDouble:
        return Value(static_cast<double>(rng->NextUint64() % 1000) / 8.0);
      case FieldType::kString:
      default:
        return Value(StrFormat("s%llu", static_cast<unsigned long long>(
                                            rng->NextUint64() % 1000)));
    }
  };
  switch (type) {
    case FieldType::kBool:
    case FieldType::kInt:
    case FieldType::kLong:
    case FieldType::kFloat:
    case FieldType::kDouble:
    case FieldType::kDateTime:
    case FieldType::kString: {
      if (rng->NextBool(0.1)) {
        // Drifted payload: a string where a number belongs (or vice versa).
        return random_scalar(type == FieldType::kString ? FieldType::kLong
                                                        : FieldType::kString);
      }
      return random_scalar(type);
    }
    case FieldType::kBoolList:
    case FieldType::kIntList:
    case FieldType::kLongList:
    case FieldType::kFloatList:
    case FieldType::kDoubleList:
    case FieldType::kStringList: {
      static const std::unordered_map<FieldType, FieldType> kElem = {
          {FieldType::kBoolList, FieldType::kBool},
          {FieldType::kIntList, FieldType::kInt},
          {FieldType::kLongList, FieldType::kLong},
          {FieldType::kFloatList, FieldType::kFloat},
          {FieldType::kDoubleList, FieldType::kDouble},
          {FieldType::kStringList, FieldType::kString}};
      std::vector<Value> items;
      const size_t n = rng->NextUint64() % 4;
      for (size_t i = 0; i < n; ++i) {
        items.push_back(random_scalar(kElem.at(type)));
      }
      return Value(std::move(items));
    }
    case FieldType::kObject: {
      NestedObject obj;
      const size_t n = rng->NextUint64() % 3;
      for (size_t i = 0; i < n; ++i) {
        obj.fields.emplace_back(StrFormat("k%zu", i),
                                random_scalar(FieldType::kLong));
      }
      return Value(std::move(obj));
    }
  }
  return Value();
}

class ColumnWireFuzzTest : public WireFuzzTest {
 protected:
  // Encodes `rows` sample events (with a sprinkling of nulls) columnar.
  std::string EncodedColumns(size_t rows) const {
    ColumnBatch batch(schema_);
    for (size_t i = 0; i < rows; ++i) {
      Event e = SampleEvent(i + 1);
      if (i % 3 == 1) {
        e.SetField(3, Value());  // null string column entries
      }
      batch.AppendEvent(e);
    }
    std::string buf;
    EncodeColumnBatch(batch, /*selection=*/nullptr, batch.rows(),
                      /*keep_field=*/nullptr, &buf);
    return buf;
  }

  // Offset of the first per-field column (its tag byte): u32 name length +
  // name + u32 row count + rows x (u64 rid + u64 timestamp).
  size_t FirstColumnOffset(size_t rows) const {
    return 4 + schema_->type_name().size() + 4 + rows * 16;
  }
};

TEST_F(ColumnWireFuzzTest, EveryTruncationOfAColumnBatchFailsCleanly) {
  const std::string full = EncodedColumns(3);
  for (size_t len = 0; len < full.size(); ++len) {
    Result<ColumnBatch> r =
        DecodeColumnBatch(registry_, full.substr(0, len));
    EXPECT_FALSE(r.ok()) << "decode succeeded on prefix of " << len << " of "
                         << full.size() << " bytes";
  }
  Result<ColumnBatch> r = DecodeColumnBatch(registry_, full);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows(), 3u);
}

TEST_F(ColumnWireFuzzTest, OversizedRowCountIsRejected) {
  std::string buf = EncodedColumns(2);
  // Row count sits right after the type name; claim 4 billion rows. The
  // decoder must reject it against the remaining byte budget, not reserve.
  PatchU32(&buf, 4 + schema_->type_name().size(), 0xffffffffu);
  EXPECT_FALSE(DecodeColumnBatch(registry_, buf).ok());
}

TEST_F(ColumnWireFuzzTest, NullBitmapPaddingBitsMustBeZero) {
  // 3 rows -> one bitmap byte with 5 padding bits. A set padding bit means
  // the bitmap disagrees with the row count; the decoder must refuse rather
  // than trust whichever is larger.
  const size_t rows = 3;
  std::string buf = EncodedColumns(rows);
  const size_t tag_at = FirstColumnOffset(rows);
  ASSERT_LT(tag_at + 1, buf.size());
  ASSERT_NE(buf[tag_at], '\0') << "expected a non-null first column";
  std::string corrupt = buf;
  corrupt[tag_at + 1] = static_cast<char>(corrupt[tag_at + 1] | 0x08);
  Result<ColumnBatch> r = DecodeColumnBatch(registry_, corrupt);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("bitmap"), std::string::npos)
      << r.status().ToString();
}

TEST_F(ColumnWireFuzzTest, UnknownColumnTagIsRejected) {
  const size_t rows = 3;
  std::string buf = EncodedColumns(rows);
  buf[FirstColumnOffset(rows)] = static_cast<char>(0x7f);
  Result<ColumnBatch> r = DecodeColumnBatch(registry_, buf);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("column tag"), std::string::npos)
      << r.status().ToString();
}

TEST_F(ColumnWireFuzzTest, TrailingBytesAreRejected) {
  std::string buf = EncodedColumns(3);
  buf.push_back('\0');
  EXPECT_FALSE(DecodeColumnBatch(registry_, buf).ok());
}

TEST_F(ColumnWireFuzzTest, RandomByteFlipsNeverCrashTheColumnarDecoder) {
  const std::string batch = EncodedColumns(5);
  Rng rng(0xc01d);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string buf = batch;
    const int flips = 1 + static_cast<int>(rng.NextUint64() % 8);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(rng.NextUint64() % buf.size());
      buf[pos] = static_cast<char>(rng.NextUint64() & 0xff);
    }
    (void)DecodeColumnBatch(registry_, buf);
  }
}

TEST_F(ColumnWireFuzzTest, RandomGarbageNeverCrashesTheColumnarDecoder) {
  Rng rng(0xfade);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t len = static_cast<size_t>(rng.NextUint64() % 256);
    std::string buf;
    buf.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      buf.push_back(static_cast<char>(rng.NextUint64() & 0xff));
    }
    (void)DecodeColumnBatch(registry_, buf);
  }
}

// Property: for ANY schema and any event population, shipping rows through
// the columnar codec is lossless and agrees field-for-field with the row
// codec. Randomized over schemas (all field types), null density, and row
// counts, including the bitmap-padding edge rows % 8 == 0.
TEST_F(ColumnWireFuzzTest, RowAndColumnarCodecsAgreeOnRandomSchemas) {
  Rng rng(0x5eed);
  static const FieldType kTypes[] = {
      FieldType::kBool,     FieldType::kInt,       FieldType::kLong,
      FieldType::kFloat,    FieldType::kDouble,    FieldType::kDateTime,
      FieldType::kString,   FieldType::kBoolList,  FieldType::kIntList,
      FieldType::kLongList, FieldType::kFloatList, FieldType::kDoubleList,
      FieldType::kStringList, FieldType::kObject};
  for (int trial = 0; trial < 60; ++trial) {
    SchemaRegistry registry;
    const size_t field_count = 1 + rng.NextUint64() % 6;
    auto builder = EventSchema::Builder(StrFormat("rt%d", trial));
    std::vector<FieldType> types;
    for (size_t f = 0; f < field_count; ++f) {
      types.push_back(kTypes[rng.NextUint64() % std::size(kTypes)]);
      builder.AddField(StrFormat("f%zu", f), types.back());
    }
    SchemaPtr schema = *builder.Build();
    ASSERT_TRUE(registry.Register(schema).ok());

    const size_t rows = rng.NextUint64() % 18;  // covers 0, 8, 16 edges
    std::vector<Event> events;
    ColumnBatch batch(schema);
    for (size_t r = 0; r < rows; ++r) {
      Event e(schema, rng.NextUint64(), static_cast<TimeMicros>(
                                            rng.NextUint64() % 1'000'000));
      for (size_t f = 0; f < field_count; ++f) {
        if (rng.NextBool(0.2)) {
          continue;  // leave null
        }
        e.SetField(f, RandomValue(types[f], &rng));
      }
      batch.AppendEvent(e);
      events.push_back(std::move(e));
    }

    std::string columnar;
    EncodeColumnBatch(batch, nullptr, batch.rows(), nullptr, &columnar);
    Result<ColumnBatch> decoded = DecodeColumnBatch(registry, columnar);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

    Result<std::vector<Event>> via_rows =
        DecodeBatch(registry, EncodeBatch(events));
    ASSERT_TRUE(via_rows.ok()) << via_rows.status().ToString();

    ASSERT_EQ(decoded->rows(), events.size());
    ASSERT_EQ(via_rows->size(), events.size());
    for (size_t r = 0; r < events.size(); ++r) {
      const Event from_columns = decoded->MaterializeEvent(r);
      const Event& from_rows = (*via_rows)[r];
      EXPECT_EQ(from_columns.request_id(), from_rows.request_id());
      EXPECT_EQ(from_columns.timestamp(), from_rows.timestamp());
      ASSERT_EQ(from_columns.field_count(), from_rows.field_count());
      for (size_t f = 0; f < from_rows.field_count(); ++f) {
        EXPECT_EQ(from_columns.field(f), from_rows.field(f))
            << "trial " << trial << " row " << r << " field " << f;
      }
    }
  }
}

}  // namespace
}  // namespace scrub
