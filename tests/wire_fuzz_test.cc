// Fuzz-style negative tests for the wire codec: DecodeEvent/DecodeBatch run
// on bytes that crossed the network, so every length prefix, count and tag
// byte is hostile until proven otherwise. Decoding corrupt input must fail
// with a status — never crash, never allocate unbounded memory. The
// SCRUB_SANITIZE (ASan+UBSan) build flavor exists to keep these honest.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/event/column_batch.h"
#include "src/event/event.h"
#include "src/event/schema.h"
#include "src/event/wire.h"

namespace scrub {
namespace {

class WireFuzzTest : public ::testing::Test {
 protected:
  WireFuzzTest() {
    schema_ = *EventSchema::Builder("probe")
                   .AddField("flag", FieldType::kBool)
                   .AddField("n", FieldType::kLong)
                   .AddField("x", FieldType::kDouble)
                   .AddField("name", FieldType::kString)
                   .AddField("ids", FieldType::kLongList)
                   .AddField("meta", FieldType::kObject)
                   .Build();
    EXPECT_TRUE(registry_.Register(schema_).ok());
  }

  Event SampleEvent(uint64_t request_id) const {
    Event e(schema_, request_id, /*timestamp=*/123'456);
    e.SetField(0, Value(true));
    e.SetField(1, Value(int64_t{42}));
    e.SetField(2, Value(3.25));
    e.SetField(3, Value("hello wire"));
    e.SetField(4, Value(std::vector<Value>{Value(int64_t{1}),
                                           Value(int64_t{2})}));
    NestedObject meta;
    meta.fields.emplace_back("k", Value(int64_t{7}));
    e.SetField(5, Value(std::move(meta)));
    return e;
  }

  std::string EncodedEvent() const {
    std::string buf;
    EncodeEvent(SampleEvent(1), &buf);
    return buf;
  }

  SchemaRegistry registry_;
  SchemaPtr schema_;
};

// Overwrites 4 bytes at `pos` with a little-endian u32.
void PatchU32(std::string* buf, size_t pos, uint32_t v) {
  ASSERT_LE(pos + 4, buf->size());
  std::memcpy(buf->data() + pos, &v, 4);
}

TEST_F(WireFuzzTest, EveryTruncationOfAnEventFailsCleanly) {
  const std::string full = EncodedEvent();
  for (size_t len = 0; len < full.size(); ++len) {
    const std::string truncated = full.substr(0, len);
    size_t offset = 0;
    Result<Event> e = DecodeEvent(registry_, truncated, &offset);
    EXPECT_FALSE(e.ok()) << "decode succeeded on prefix of " << len
                         << " of " << full.size() << " bytes";
  }
  // Sanity: the untruncated buffer round-trips.
  size_t offset = 0;
  Result<Event> e = DecodeEvent(registry_, full, &offset);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(offset, full.size());
}

TEST_F(WireFuzzTest, EveryTruncationOfABatchFailsCleanly) {
  const std::string full = EncodeBatch({SampleEvent(1), SampleEvent(2)});
  for (size_t len = 0; len < full.size(); ++len) {
    Result<std::vector<Event>> r =
        DecodeBatch(registry_, full.substr(0, len));
    EXPECT_FALSE(r.ok()) << "decode succeeded on prefix of " << len
                         << " bytes";
  }
  Result<std::vector<Event>> r = DecodeBatch(registry_, full);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
}

TEST_F(WireFuzzTest, OversizedTypeNameLengthIsRejected) {
  std::string buf = EncodedEvent();
  // The event starts with u32 type-name length; claim 4 GB.
  PatchU32(&buf, 0, 0xffffffffu);
  size_t offset = 0;
  EXPECT_FALSE(DecodeEvent(registry_, buf, &offset).ok());
}

TEST_F(WireFuzzTest, OversizedBatchCountIsRejected) {
  std::string buf = EncodeBatch({SampleEvent(1)});
  // A count prefix far beyond what the remaining bytes could hold must be
  // rejected up front, not fed to vector::reserve.
  PatchU32(&buf, 0, 0xffffffffu);
  EXPECT_FALSE(DecodeBatch(registry_, buf).ok());
}

TEST_F(WireFuzzTest, OversizedListAndObjectCountsAreRejected) {
  const std::string full = EncodedEvent();
  // Patch every aligned u32 position to a huge count; whatever structure
  // that byte range encodes (string length, list count, object count), the
  // decoder must fail cleanly instead of allocating.
  for (size_t pos = 0; pos + 4 <= full.size(); ++pos) {
    std::string buf = full;
    PatchU32(&buf, pos, 0xfffffff0u);
    size_t offset = 0;
    Result<Event> e = DecodeEvent(registry_, buf, &offset);
    if (e.ok()) {
      // A patch past the value data may land in trailing payload bytes the
      // schema never reads; success is fine as long as nothing crashed.
      continue;
    }
  }
}

TEST_F(WireFuzzTest, UnknownValueTagIsRejected) {
  const std::string full = EncodedEvent();
  // Flip every single byte to an invalid tag value and decode: corrupt tags
  // must yield a status, never UB.
  for (size_t pos = 0; pos < full.size(); ++pos) {
    std::string buf = full;
    buf[pos] = static_cast<char>(0x7f);  // no value tag uses 0x7f
    size_t offset = 0;
    (void)DecodeEvent(registry_, buf, &offset);  // must not crash
  }
}

TEST_F(WireFuzzTest, DeepListNestingIsCapped) {
  // A list-of-list-of-... crafted at ~5 bytes per level: without the depth
  // cap the recursive decoder would walk off the stack.
  constexpr uint8_t kTagList = 6;  // mirrors wire.cc's private tag table
  std::string buf;
  // Event header for "probe".
  const std::string name = "probe";
  uint32_t name_len = static_cast<uint32_t>(name.size());
  buf.append(reinterpret_cast<const char*>(&name_len), 4);
  buf.append(name);
  uint64_t request_id = 1;
  uint64_t timestamp = 2;
  buf.append(reinterpret_cast<const char*>(&request_id), 8);
  buf.append(reinterpret_cast<const char*>(&timestamp), 8);
  // First field value: 10k nested single-element lists.
  for (int i = 0; i < 10'000; ++i) {
    buf.push_back(static_cast<char>(kTagList));
    uint32_t one = 1;
    buf.append(reinterpret_cast<const char*>(&one), 4);
  }
  size_t offset = 0;
  Result<Event> e = DecodeEvent(registry_, buf, &offset);
  EXPECT_FALSE(e.ok());
  EXPECT_NE(e.status().ToString().find("nesting"), std::string::npos)
      << e.status().ToString();
}

TEST_F(WireFuzzTest, RandomByteFlipsNeverCrashTheDecoder) {
  const std::string batch = EncodeBatch(
      {SampleEvent(1), SampleEvent(2), SampleEvent(3)});
  Rng rng(0xf00d);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string buf = batch;
    const int flips = 1 + static_cast<int>(rng.NextUint64() % 8);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(rng.NextUint64() % buf.size());
      buf[pos] = static_cast<char>(rng.NextUint64() & 0xff);
    }
    // Must terminate with ok-or-status; ASan/UBSan keep "terminate" honest.
    (void)DecodeBatch(registry_, buf);
  }
}

TEST_F(WireFuzzTest, RandomGarbageNeverCrashesTheDecoder) {
  Rng rng(0xbeef);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t len = static_cast<size_t>(rng.NextUint64() % 256);
    std::string buf;
    buf.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      buf.push_back(static_cast<char>(rng.NextUint64() & 0xff));
    }
    (void)DecodeBatch(registry_, buf);
    size_t offset = 0;
    (void)DecodeEvent(registry_, buf, &offset);
  }
}

// ---- Columnar wire format ------------------------------------------------
// The columnar codec carries the same hostile-bytes contract as the row
// codec: every length, row count, null bitmap and column tag is attacker-
// controlled until validated.

// A random value for the property test. Scalar fields occasionally get a
// type-mismatched value (schema drift) to exercise the generic migration.
Value RandomValue(FieldType type, Rng* rng) {
  const auto random_scalar = [&](FieldType t) -> Value {
    switch (t) {
      case FieldType::kBool:
        return Value(rng->NextBool(0.5));
      case FieldType::kInt:
      case FieldType::kLong:
      case FieldType::kDateTime:
        return Value(static_cast<int64_t>(rng->NextUint64() % 100'000));
      case FieldType::kFloat:
      case FieldType::kDouble:
        return Value(static_cast<double>(rng->NextUint64() % 1000) / 8.0);
      case FieldType::kString:
      default:
        return Value(StrFormat("s%llu", static_cast<unsigned long long>(
                                            rng->NextUint64() % 1000)));
    }
  };
  switch (type) {
    case FieldType::kBool:
    case FieldType::kInt:
    case FieldType::kLong:
    case FieldType::kFloat:
    case FieldType::kDouble:
    case FieldType::kDateTime:
    case FieldType::kString: {
      if (rng->NextBool(0.1)) {
        // Drifted payload: a string where a number belongs (or vice versa).
        return random_scalar(type == FieldType::kString ? FieldType::kLong
                                                        : FieldType::kString);
      }
      return random_scalar(type);
    }
    case FieldType::kBoolList:
    case FieldType::kIntList:
    case FieldType::kLongList:
    case FieldType::kFloatList:
    case FieldType::kDoubleList:
    case FieldType::kStringList: {
      static const std::unordered_map<FieldType, FieldType> kElem = {
          {FieldType::kBoolList, FieldType::kBool},
          {FieldType::kIntList, FieldType::kInt},
          {FieldType::kLongList, FieldType::kLong},
          {FieldType::kFloatList, FieldType::kFloat},
          {FieldType::kDoubleList, FieldType::kDouble},
          {FieldType::kStringList, FieldType::kString}};
      std::vector<Value> items;
      const size_t n = rng->NextUint64() % 4;
      for (size_t i = 0; i < n; ++i) {
        items.push_back(random_scalar(kElem.at(type)));
      }
      return Value(std::move(items));
    }
    case FieldType::kObject: {
      NestedObject obj;
      const size_t n = rng->NextUint64() % 3;
      for (size_t i = 0; i < n; ++i) {
        obj.fields.emplace_back(StrFormat("k%zu", i),
                                random_scalar(FieldType::kLong));
      }
      return Value(std::move(obj));
    }
  }
  return Value();
}

class ColumnWireFuzzTest : public WireFuzzTest {
 protected:
  // Encodes `rows` sample events (with a sprinkling of nulls) columnar.
  std::string EncodedColumns(size_t rows) const {
    ColumnBatch batch(schema_);
    for (size_t i = 0; i < rows; ++i) {
      Event e = SampleEvent(i + 1);
      if (i % 3 == 1) {
        e.SetField(3, Value());  // null string column entries
      }
      batch.AppendEvent(e);
    }
    std::string buf;
    EncodeColumnBatch(batch, /*selection=*/nullptr, batch.rows(),
                      /*keep_field=*/nullptr, &buf);
    return buf;
  }

  // Offset of the first per-field column (its tag byte): u32 name length +
  // name + u32 row count + rows x (u64 rid + u64 timestamp).
  size_t FirstColumnOffset(size_t rows) const {
    return 4 + schema_->type_name().size() + 4 + rows * 16;
  }
};

TEST_F(ColumnWireFuzzTest, EveryTruncationOfAColumnBatchFailsCleanly) {
  const std::string full = EncodedColumns(3);
  for (size_t len = 0; len < full.size(); ++len) {
    Result<ColumnBatch> r =
        DecodeColumnBatch(registry_, full.substr(0, len));
    EXPECT_FALSE(r.ok()) << "decode succeeded on prefix of " << len << " of "
                         << full.size() << " bytes";
  }
  Result<ColumnBatch> r = DecodeColumnBatch(registry_, full);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows(), 3u);
}

TEST_F(ColumnWireFuzzTest, OversizedRowCountIsRejected) {
  std::string buf = EncodedColumns(2);
  // Row count sits right after the type name; claim 4 billion rows. The
  // decoder must reject it against the remaining byte budget, not reserve.
  PatchU32(&buf, 4 + schema_->type_name().size(), 0xffffffffu);
  EXPECT_FALSE(DecodeColumnBatch(registry_, buf).ok());
}

TEST_F(ColumnWireFuzzTest, NullBitmapPaddingBitsMustBeZero) {
  // 3 rows -> one bitmap byte with 5 padding bits. A set padding bit means
  // the bitmap disagrees with the row count; the decoder must refuse rather
  // than trust whichever is larger.
  const size_t rows = 3;
  std::string buf = EncodedColumns(rows);
  const size_t tag_at = FirstColumnOffset(rows);
  ASSERT_LT(tag_at + 1, buf.size());
  ASSERT_NE(buf[tag_at], '\0') << "expected a non-null first column";
  std::string corrupt = buf;
  corrupt[tag_at + 1] = static_cast<char>(corrupt[tag_at + 1] | 0x08);
  Result<ColumnBatch> r = DecodeColumnBatch(registry_, corrupt);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("bitmap"), std::string::npos)
      << r.status().ToString();
}

TEST_F(ColumnWireFuzzTest, UnknownColumnTagIsRejected) {
  const size_t rows = 3;
  std::string buf = EncodedColumns(rows);
  buf[FirstColumnOffset(rows)] = static_cast<char>(0x7f);
  Result<ColumnBatch> r = DecodeColumnBatch(registry_, buf);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("column tag"), std::string::npos)
      << r.status().ToString();
}

TEST_F(ColumnWireFuzzTest, TrailingBytesAreRejected) {
  std::string buf = EncodedColumns(3);
  buf.push_back('\0');
  EXPECT_FALSE(DecodeColumnBatch(registry_, buf).ok());
}

TEST_F(ColumnWireFuzzTest, RandomByteFlipsNeverCrashTheColumnarDecoder) {
  const std::string batch = EncodedColumns(5);
  Rng rng(0xc01d);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string buf = batch;
    const int flips = 1 + static_cast<int>(rng.NextUint64() % 8);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(rng.NextUint64() % buf.size());
      buf[pos] = static_cast<char>(rng.NextUint64() & 0xff);
    }
    (void)DecodeColumnBatch(registry_, buf);
  }
}

TEST_F(ColumnWireFuzzTest, RandomGarbageNeverCrashesTheColumnarDecoder) {
  Rng rng(0xfade);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t len = static_cast<size_t>(rng.NextUint64() % 256);
    std::string buf;
    buf.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      buf.push_back(static_cast<char>(rng.NextUint64() & 0xff));
    }
    (void)DecodeColumnBatch(registry_, buf);
  }
}

// ---- Dictionary-encoded string columns -----------------------------------
// kColDict carries a second layer of attacker-controlled counts: the
// dictionary entry count, every entry's length prefix, and one code byte
// per non-null row. Each must be validated against the buffer and against
// the dictionary itself (codes index entries).

class DictWireFuzzTest : public ::testing::Test {
 protected:
  DictWireFuzzTest() {
    schema_ = *EventSchema::Builder("dictprobe")
                   .AddField("op", FieldType::kString)
                   .Build();
    EXPECT_TRUE(registry_.Register(schema_).ok());
  }

  // 8 rows alternating between two values: low cardinality, so the encoder
  // must pick the dictionary (dict bytes 29 < plain bytes 68).
  std::string EncodedDict(std::vector<int>* encodings = nullptr) const {
    ColumnBatch batch(schema_);
    for (size_t i = 0; i < 8; ++i) {
      Event e(schema_, i + 1, /*timestamp=*/10 + static_cast<TimeMicros>(i));
      e.SetField(0, Value(i % 2 == 0 ? "alpha" : "beta"));
      batch.AppendEvent(e);
    }
    std::string buf;
    EncodeColumnBatch(batch, nullptr, batch.rows(), nullptr, &buf, encodings);
    return buf;
  }

  // Offset of the string column's tag byte (8 rows, see FirstColumnOffset).
  size_t TagOffset() const {
    return 4 + schema_->type_name().size() + 4 + 8 * 16;
  }
  // u32 dict_count follows the tag and the single bitmap byte.
  size_t DictCountOffset() const { return TagOffset() + 2; }
  // Codes follow the count and the two entries ("alpha", "beta").
  size_t CodesOffset() const { return DictCountOffset() + 4 + 9 + 8; }

  SchemaRegistry registry_;
  SchemaPtr schema_;
};

void PatchU32At(std::string* buf, size_t pos, uint32_t v) {
  ASSERT_LE(pos + 4, buf->size());
  std::memcpy(buf->data() + pos, &v, 4);
}

TEST_F(DictWireFuzzTest, LowCardinalityColumnPicksDictAndRoundTrips) {
  std::vector<int> encodings;
  const std::string buf = EncodedDict(&encodings);
  ASSERT_EQ(encodings.size(), 1u);
  EXPECT_EQ(encodings[0], 2) << "expected a 2-entry dictionary";
  ASSERT_LT(TagOffset(), buf.size());
  EXPECT_EQ(buf[TagOffset()], 6) << "expected the kColDict tag";
  Result<ColumnBatch> r = DecodeColumnBatch(registry_, buf);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(r->ValueAt(/*field=*/0, i), Value(i % 2 == 0 ? "alpha" : "beta"));
  }
}

TEST_F(DictWireFuzzTest, EveryTruncationOfADictBatchFailsCleanly) {
  // Sweeps through the dictionary header, every entry prefix, and the code
  // bytes: all the "truncated dictionary ..." decode paths.
  const std::string full = EncodedDict();
  for (size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(DecodeColumnBatch(registry_, full.substr(0, len)).ok())
        << "decode succeeded on prefix of " << len << " bytes";
  }
}

TEST_F(DictWireFuzzTest, OutOfRangeDictCodeIsRejected) {
  std::string buf = EncodedDict();
  ASSERT_LT(CodesOffset(), buf.size());
  buf[CodesOffset()] = static_cast<char>(0xfe);  // dict has 2 entries
  Result<ColumnBatch> r = DecodeColumnBatch(registry_, buf);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("code out of range"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(DictWireFuzzTest, DictCountZeroIsRejected) {
  std::string buf = EncodedDict();
  PatchU32At(&buf, DictCountOffset(), 0);
  Result<ColumnBatch> r = DecodeColumnBatch(registry_, buf);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("count out of range"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(DictWireFuzzTest, DictCountBeyondCapIsRejected) {
  std::string buf = EncodedDict();
  PatchU32At(&buf, DictCountOffset(), 0xffffffffu);
  EXPECT_FALSE(DecodeColumnBatch(registry_, buf).ok());
}

TEST_F(DictWireFuzzTest, DictCountExceedingBufferIsRejected) {
  std::string buf = EncodedDict();
  // 200 is within the 256-entry cap but far beyond what the remaining
  // bytes could hold even at 4 bytes per entry.
  PatchU32At(&buf, DictCountOffset(), 200);
  EXPECT_FALSE(DecodeColumnBatch(registry_, buf).ok());
}

TEST_F(DictWireFuzzTest, DictTagOnNonStringColumnIsRejected) {
  // A dictionary tag is only legal on string schema fields; patch one onto
  // a long column and the decoder must refuse before trusting any count.
  SchemaRegistry registry;
  SchemaPtr schema = *EventSchema::Builder("longprobe")
                          .AddField("n", FieldType::kLong)
                          .Build();
  ASSERT_TRUE(registry.Register(schema).ok());
  ColumnBatch batch(schema);
  for (size_t i = 0; i < 3; ++i) {
    Event e(schema, i + 1, 10);
    e.SetField(0, Value(int64_t{7}));
    batch.AppendEvent(e);
  }
  std::string buf;
  EncodeColumnBatch(batch, nullptr, batch.rows(), nullptr, &buf);
  const size_t tag_at = 4 + schema->type_name().size() + 4 + 3 * 16;
  ASSERT_LT(tag_at, buf.size());
  buf[tag_at] = 6;  // kColDict
  Result<ColumnBatch> r = DecodeColumnBatch(registry, buf);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("non-string"), std::string::npos)
      << r.status().ToString();
}

TEST_F(DictWireFuzzTest, TrailingBytesAfterDictBatchAreRejected) {
  std::string buf = EncodedDict();
  buf.push_back('\0');
  EXPECT_FALSE(DecodeColumnBatch(registry_, buf).ok());
}

TEST_F(DictWireFuzzTest, RandomByteFlipsNeverCrashTheDictDecoder) {
  const std::string full = EncodedDict();
  Rng rng(0xd1c7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string buf = full;
    const int flips = 1 + static_cast<int>(rng.NextUint64() % 8);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(rng.NextUint64() % buf.size());
      buf[pos] = static_cast<char>(rng.NextUint64() & 0xff);
    }
    (void)DecodeColumnBatch(registry_, buf);
  }
}

// ---- Columnar join batches -------------------------------------------------
// The join wrapper adds a section count, per-section length prefixes, and
// the order bytes — all hostile. The order must agree with the sections
// exactly (count and per-source multiplicity) or the decode fails.

class JoinWireFuzzTest : public ::testing::Test {
 protected:
  JoinWireFuzzTest() {
    rpc_ = *EventSchema::Builder("rpc")
                .AddField("op", FieldType::kString)
                .AddField("lat", FieldType::kLong)
                .Build();
    db_ = *EventSchema::Builder("db")
              .AddField("table", FieldType::kString)
              .Build();
    EXPECT_TRUE(registry_.Register(rpc_).ok());
    EXPECT_TRUE(registry_.Register(db_).ok());
  }

  // Two sections (3 rpc rows, 2 db rows) and the interleave 0 1 0 1 0.
  std::string EncodedJoin() const {
    ColumnBatch rpc(rpc_);
    for (size_t i = 0; i < 3; ++i) {
      Event e(rpc_, i + 1, 10 + static_cast<TimeMicros>(i));
      e.SetField(0, Value("get"));
      e.SetField(1, Value(static_cast<int64_t>(i)));
      rpc.AppendEvent(e);
    }
    ColumnBatch db(db_);
    for (size_t i = 0; i < 2; ++i) {
      Event e(db_, i + 1, 20 + static_cast<TimeMicros>(i));
      e.SetField(0, Value("users"));
      db.AppendEvent(e);
    }
    const std::vector<ColumnJoinSection> sections = {
        {&rpc, nullptr, rpc.rows(), nullptr},
        {&db, nullptr, db.rows(), nullptr}};
    std::string buf;
    EncodeColumnJoinBatch(sections, {0, 1, 0, 1, 0}, &buf);
    return buf;
  }

  SchemaRegistry registry_;
  SchemaPtr rpc_;
  SchemaPtr db_;
};

TEST_F(JoinWireFuzzTest, JoinBatchRoundTrips) {
  Result<ColumnJoinBatch> r = DecodeColumnJoinBatch(registry_, EncodedJoin());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->sections.size(), 2u);
  EXPECT_EQ(r->sections[0].rows(), 3u);
  EXPECT_EQ(r->sections[1].rows(), 2u);
  EXPECT_EQ(r->order, (std::vector<uint8_t>{0, 1, 0, 1, 0}));
  EXPECT_EQ(r->sections[0].ValueAt(/*field=*/0, /*row=*/0), Value("get"));
  EXPECT_EQ(r->sections[1].ValueAt(/*field=*/0, /*row=*/1), Value("users"));
}

TEST_F(JoinWireFuzzTest, EveryTruncationOfAJoinBatchFailsCleanly) {
  const std::string full = EncodedJoin();
  for (size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(DecodeColumnJoinBatch(registry_, full.substr(0, len)).ok())
        << "decode succeeded on prefix of " << len << " bytes";
  }
}

TEST_F(JoinWireFuzzTest, SectionCountOutOfRangeIsRejected) {
  for (const uint32_t count : {0u, 17u, 0xffffffffu}) {
    std::string buf = EncodedJoin();
    PatchU32At(&buf, 0, count);
    Result<ColumnJoinBatch> r = DecodeColumnJoinBatch(registry_, buf);
    ASSERT_FALSE(r.ok()) << "section count " << count;
  }
}

TEST_F(JoinWireFuzzTest, OrderIndexOutOfRangeIsRejected) {
  std::string buf = EncodedJoin();
  buf[buf.size() - 1] = static_cast<char>(9);  // only 2 sections exist
  Result<ColumnJoinBatch> r = DecodeColumnJoinBatch(registry_, buf);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("order index"), std::string::npos)
      << r.status().ToString();
}

TEST_F(JoinWireFuzzTest, OrderSourceMultiplicityMismatchIsRejected) {
  // Flip one in-range order byte: the order still has 5 entries but now
  // claims 2 rpc rows and 3 db rows, disagreeing with the sections.
  std::string buf = EncodedJoin();
  ASSERT_EQ(buf[buf.size() - 1], 0);
  buf[buf.size() - 1] = static_cast<char>(1);
  Result<ColumnJoinBatch> r = DecodeColumnJoinBatch(registry_, buf);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("does not match section rows"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(JoinWireFuzzTest, OrderCountMismatchIsRejected) {
  std::string buf = EncodedJoin();
  PatchU32At(&buf, buf.size() - 5 - 4, 4);  // claims 4 entries, rows sum 5
  EXPECT_FALSE(DecodeColumnJoinBatch(registry_, buf).ok());
}

TEST_F(JoinWireFuzzTest, TrailingBytesAfterJoinBatchAreRejected) {
  std::string buf = EncodedJoin();
  buf.push_back('\0');
  Result<ColumnJoinBatch> r = DecodeColumnJoinBatch(registry_, buf);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("trailing"), std::string::npos)
      << r.status().ToString();
}

TEST_F(JoinWireFuzzTest, RandomByteFlipsNeverCrashTheJoinDecoder) {
  const std::string full = EncodedJoin();
  Rng rng(0x10b5);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string buf = full;
    const int flips = 1 + static_cast<int>(rng.NextUint64() % 8);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(rng.NextUint64() % buf.size());
      buf[pos] = static_cast<char>(rng.NextUint64() & 0xff);
    }
    (void)DecodeColumnJoinBatch(registry_, buf);
  }
}

// Property: a multi-source staging (random schemas, random interleave,
// low-cardinality strings that trigger the dictionary) survives the join
// codec losslessly — every section row materializes to the original event
// and the interleave round-trips exactly.
TEST_F(JoinWireFuzzTest, MultiSourceStagingRoundTripsOnRandomSchemas) {
  Rng rng(0x2b1d);
  for (int trial = 0; trial < 40; ++trial) {
    SchemaRegistry registry;
    const size_t num_sources = 2 + rng.NextUint64() % 2;  // 2 or 3
    std::vector<SchemaPtr> schemas;
    std::vector<std::vector<Event>> events(num_sources);
    std::vector<ColumnBatch> batches;
    for (size_t s = 0; s < num_sources; ++s) {
      auto builder = EventSchema::Builder(StrFormat("j%d_%zu", trial, s));
      builder.AddField("tag", FieldType::kString);
      builder.AddField("n", FieldType::kLong);
      schemas.push_back(*builder.Build());
      ASSERT_TRUE(registry.Register(schemas.back()).ok());
      batches.emplace_back(schemas.back());
    }
    // Random interleave of 0..20 events across the sources; strings drawn
    // from a 3-value pool so most trials hit the dictionary encoder.
    std::vector<uint8_t> order;
    const size_t total = rng.NextUint64() % 21;
    for (size_t i = 0; i < total; ++i) {
      const size_t s = rng.NextUint64() % num_sources;
      Event e(schemas[s], rng.NextUint64() % 50,
              static_cast<TimeMicros>(rng.NextUint64() % 1000));
      if (!rng.NextBool(0.15)) {
        e.SetField(0, Value(StrFormat("v%llu", static_cast<unsigned long long>(
                                                   rng.NextUint64() % 3))));
      }
      e.SetField(1, Value(static_cast<int64_t>(i)));
      batches[s].AppendEvent(e);
      events[s].push_back(std::move(e));
      order.push_back(static_cast<uint8_t>(s));
    }
    std::vector<ColumnJoinSection> sections;
    for (size_t s = 0; s < num_sources; ++s) {
      sections.push_back({&batches[s], nullptr, batches[s].rows(), nullptr});
    }
    std::string buf;
    EncodeColumnJoinBatch(sections, order, &buf);
    Result<ColumnJoinBatch> decoded = DecodeColumnJoinBatch(registry, buf);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded->order, order) << "trial " << trial;
    ASSERT_EQ(decoded->sections.size(), num_sources);
    for (size_t s = 0; s < num_sources; ++s) {
      ASSERT_EQ(decoded->sections[s].rows(), events[s].size());
      for (size_t r = 0; r < events[s].size(); ++r) {
        const Event got = decoded->sections[s].MaterializeEvent(r);
        EXPECT_EQ(got.request_id(), events[s][r].request_id());
        EXPECT_EQ(got.timestamp(), events[s][r].timestamp());
        for (size_t f = 0; f < events[s][r].field_count(); ++f) {
          EXPECT_EQ(got.field(f), events[s][r].field(f))
              << "trial " << trial << " source " << s << " row " << r;
        }
      }
    }
  }
}

// Property: for ANY schema and any event population, shipping rows through
// the columnar codec is lossless and agrees field-for-field with the row
// codec. Randomized over schemas (all field types), null density, and row
// counts, including the bitmap-padding edge rows % 8 == 0.
TEST_F(ColumnWireFuzzTest, RowAndColumnarCodecsAgreeOnRandomSchemas) {
  Rng rng(0x5eed);
  static const FieldType kTypes[] = {
      FieldType::kBool,     FieldType::kInt,       FieldType::kLong,
      FieldType::kFloat,    FieldType::kDouble,    FieldType::kDateTime,
      FieldType::kString,   FieldType::kBoolList,  FieldType::kIntList,
      FieldType::kLongList, FieldType::kFloatList, FieldType::kDoubleList,
      FieldType::kStringList, FieldType::kObject};
  for (int trial = 0; trial < 60; ++trial) {
    SchemaRegistry registry;
    const size_t field_count = 1 + rng.NextUint64() % 6;
    auto builder = EventSchema::Builder(StrFormat("rt%d", trial));
    std::vector<FieldType> types;
    for (size_t f = 0; f < field_count; ++f) {
      types.push_back(kTypes[rng.NextUint64() % std::size(kTypes)]);
      builder.AddField(StrFormat("f%zu", f), types.back());
    }
    SchemaPtr schema = *builder.Build();
    ASSERT_TRUE(registry.Register(schema).ok());

    const size_t rows = rng.NextUint64() % 18;  // covers 0, 8, 16 edges
    std::vector<Event> events;
    ColumnBatch batch(schema);
    for (size_t r = 0; r < rows; ++r) {
      Event e(schema, rng.NextUint64(), static_cast<TimeMicros>(
                                            rng.NextUint64() % 1'000'000));
      for (size_t f = 0; f < field_count; ++f) {
        if (rng.NextBool(0.2)) {
          continue;  // leave null
        }
        e.SetField(f, RandomValue(types[f], &rng));
      }
      batch.AppendEvent(e);
      events.push_back(std::move(e));
    }

    std::string columnar;
    EncodeColumnBatch(batch, nullptr, batch.rows(), nullptr, &columnar);
    Result<ColumnBatch> decoded = DecodeColumnBatch(registry, columnar);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

    Result<std::vector<Event>> via_rows =
        DecodeBatch(registry, EncodeBatch(events));
    ASSERT_TRUE(via_rows.ok()) << via_rows.status().ToString();

    ASSERT_EQ(decoded->rows(), events.size());
    ASSERT_EQ(via_rows->size(), events.size());
    for (size_t r = 0; r < events.size(); ++r) {
      const Event from_columns = decoded->MaterializeEvent(r);
      const Event& from_rows = (*via_rows)[r];
      EXPECT_EQ(from_columns.request_id(), from_rows.request_id());
      EXPECT_EQ(from_columns.timestamp(), from_rows.timestamp());
      ASSERT_EQ(from_columns.field_count(), from_rows.field_count());
      for (size_t f = 0; f < from_rows.field_count(); ++f) {
        EXPECT_EQ(from_columns.field(f), from_rows.field(f))
            << "trial " << trial << " row " << r << " field " << f;
      }
    }
  }
}

}  // namespace
}  // namespace scrub
