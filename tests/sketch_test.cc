// Unit + property tests for src/sketch: HyperLogLog, SpaceSaving, reservoir
// sampling, running stats, t quantiles, and the multi-stage sampling
// estimator (paper Equations 1-3).

#include <cmath>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sketch/hyperloglog.h"
#include "src/sketch/multistage.h"
#include "src/sketch/reservoir.h"
#include "src/sketch/space_saving.h"
#include "src/sketch/stats.h"

namespace scrub {
namespace {

// ---------------------------------------------------------------------------
// HyperLogLog.

class HllCardinalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HllCardinalityTest, RelativeErrorWithinEnvelope) {
  const uint64_t n = GetParam();
  HyperLogLog hll(14);
  for (uint64_t i = 0; i < n; ++i) {
    hll.Add(static_cast<int64_t>(i * 2654435761u + 17));
  }
  const double est = hll.Estimate();
  // Standard error for p=14 is ~0.81%; allow 5 sigma.
  const double tolerance = 5 * 0.0081 * static_cast<double>(n) + 3.0;
  EXPECT_NEAR(est, static_cast<double>(n), tolerance) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllCardinalityTest,
                         ::testing::Values(10, 100, 1000, 5000, 20000, 100000,
                                           500000));

TEST(HllTest, EmptyEstimatesZero) {
  HyperLogLog hll(12);
  EXPECT_NEAR(hll.Estimate(), 0.0, 0.01);
}

TEST(HllTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(14);
  for (int round = 0; round < 100; ++round) {
    for (int64_t i = 0; i < 500; ++i) {
      hll.Add(i);
    }
  }
  EXPECT_NEAR(hll.Estimate(), 500.0, 25.0);
}

TEST(HllTest, MergeEqualsUnion) {
  HyperLogLog a(14);
  HyperLogLog b(14);
  HyperLogLog u(14);
  for (int64_t i = 0; i < 30000; ++i) {
    a.Add(i);
    u.Add(i);
  }
  for (int64_t i = 15000; i < 45000; ++i) {
    b.Add(i);
    u.Add(i);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), u.Estimate());
}

TEST(HllTest, StringAndIntKeysBothWork) {
  HyperLogLog hll(12);
  for (int i = 0; i < 1000; ++i) {
    hll.Add("user_" + std::to_string(i));
  }
  EXPECT_NEAR(hll.Estimate(), 1000.0, 120.0);
}

TEST(HllTest, ResetClears) {
  HyperLogLog hll(10);
  for (int64_t i = 0; i < 1000; ++i) {
    hll.Add(i);
  }
  hll.Reset();
  EXPECT_NEAR(hll.Estimate(), 0.0, 0.01);
}

// ---------------------------------------------------------------------------
// SpaceSaving.

TEST(SpaceSavingTest, ExactWhenUnderCapacity) {
  SpaceSaving<std::string> ss(16);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j <= i; ++j) {
      ss.Add("k" + std::to_string(i));
    }
  }
  const auto top = ss.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "k9");
  EXPECT_EQ(top[0].count, 10u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, "k8");
  EXPECT_EQ(ss.ErrorBound(), 0u);
}

TEST(SpaceSavingTest, GuaranteesUnderEviction) {
  // Zipf stream; capacity far below the key universe. Space-saving
  // guarantees: reported count overestimates by at most N/m, and every key
  // with true count > N/m is present.
  const size_t capacity = 50;
  SpaceSaving<uint64_t> ss(capacity);
  std::map<uint64_t, uint64_t> exact;
  ZipfGenerator zipf(5000, 1.2);
  Rng rng(21);
  const uint64_t n = 200000;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t key = zipf.Next(rng);
    ss.Add(key);
    ++exact[key];
  }
  const uint64_t bound = ss.ErrorBound();
  EXPECT_LE(bound, n / capacity);

  std::map<uint64_t, uint64_t> reported;
  for (const auto& entry : ss.TopK()) {
    reported[entry.key] = entry.count;
    // Overestimate-only, and by at most the bound.
    EXPECT_GE(entry.count, exact[entry.key]);
    EXPECT_LE(entry.count - exact[entry.key], bound);
    EXPECT_LE(entry.error, bound);
  }
  // Every genuinely heavy key is present.
  for (const auto& [key, count] : exact) {
    if (count > bound) {
      EXPECT_TRUE(reported.count(key)) << "missing heavy key " << key;
    }
  }
}

TEST(SpaceSavingTest, TopOrderCorrectForSkewedStream) {
  SpaceSaving<uint64_t> ss(100);
  ZipfGenerator zipf(1000, 1.5);
  Rng rng(22);
  for (int i = 0; i < 100000; ++i) {
    ss.Add(zipf.Next(rng));
  }
  const auto top = ss.TopK(5);
  ASSERT_EQ(top.size(), 5u);
  // With s=1.5 the top item is key 0 and counts strictly dominate.
  EXPECT_EQ(top[0].key, 0u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].count, top[i].count);
  }
}

TEST(SpaceSavingTest, MergePreservesHeavyHitters) {
  SpaceSaving<uint64_t> a(64);
  SpaceSaving<uint64_t> b(64);
  // Key 7 is heavy in both; key 9 heavy only in b.
  for (int i = 0; i < 5000; ++i) {
    a.Add(7);
    b.Add(7);
    b.Add(9);
    a.Add(static_cast<uint64_t>(i % 200) + 100);
    b.Add(static_cast<uint64_t>(i % 200) + 400);
  }
  a.Merge(b);
  const auto top = a.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 7u);
  EXPECT_GE(top[0].count, 10000u);
  EXPECT_EQ(top[1].key, 9u);
  EXPECT_EQ(a.total(), 25000u);  // 10000 adds into a + 15000 into b
}

// ---------------------------------------------------------------------------
// Reservoir sampling.

TEST(ReservoirTest, KeepsAllWhenUnderCapacity) {
  ReservoirSampler<int> sampler(100, 1);
  for (int i = 0; i < 50; ++i) {
    sampler.Add(i);
  }
  EXPECT_EQ(sampler.sample().size(), 50u);
  EXPECT_EQ(sampler.seen(), 50u);
}

TEST(ReservoirTest, UniformInclusionProbability) {
  // Each of 1000 items should appear with probability k/n = 0.1; check the
  // first and last items across many trials.
  int first_in = 0;
  int last_in = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler<int> sampler(100, static_cast<uint64_t>(t));
    for (int i = 0; i < 1000; ++i) {
      sampler.Add(i);
    }
    for (const int v : sampler.sample()) {
      if (v == 0) {
        ++first_in;
      }
      if (v == 999) {
        ++last_in;
      }
    }
  }
  EXPECT_NEAR(first_in / static_cast<double>(trials), 0.1, 0.025);
  EXPECT_NEAR(last_in / static_cast<double>(trials), 0.1, 0.025);
}

// ---------------------------------------------------------------------------
// RunningStats & quantiles.

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats s;
  for (int i = 1; i <= 9; ++i) {
    s.Add(i);
  }
  EXPECT_EQ(s.count(), 9u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 7.5);  // sample variance of 1..9
  EXPECT_DOUBLE_EQ(s.sum(), 45.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(31);
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextGaussian() * 3 + 10;
    if (i % 2) {
      a.Add(x);
    } else {
      b.Add(x);
    }
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStatsTest, ConstantFactory) {
  RunningStats zeros = RunningStats::Constant(100, 0.0);
  EXPECT_EQ(zeros.count(), 100u);
  EXPECT_EQ(zeros.mean(), 0.0);
  EXPECT_EQ(zeros.variance(), 0.0);
  RunningStats mixed;
  mixed.Add(1.0);
  mixed.Merge(RunningStats::Constant(1, 0.0));
  EXPECT_DOUBLE_EQ(mixed.mean(), 0.5);
  EXPECT_DOUBLE_EQ(mixed.variance(), 0.5);
}

TEST(QuantileTest, NormalReferencePoints) {
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959964, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.9), 1.281552, 1e-4);
}

TEST(QuantileTest, StudentTReferencePoints) {
  // Reference values from standard t tables (97.5th percentile).
  EXPECT_NEAR(StudentTQuantile(0.975, 1), 12.7062, 1e-3);
  EXPECT_NEAR(StudentTQuantile(0.975, 2), 4.3027, 1e-3);
  EXPECT_NEAR(StudentTQuantile(0.975, 5), 2.5706, 5e-3);
  EXPECT_NEAR(StudentTQuantile(0.975, 10), 2.2281, 5e-3);
  EXPECT_NEAR(StudentTQuantile(0.975, 30), 2.0423, 5e-3);
  EXPECT_NEAR(StudentTQuantile(0.975, 100), 1.9840, 5e-3);
  // Symmetry.
  EXPECT_NEAR(StudentTQuantile(0.025, 10), -StudentTQuantile(0.975, 10),
              1e-9);
  EXPECT_NEAR(StudentTQuantile(0.5, 7), 0.0, 1e-12);
}

TEST(QuantileTest, TApproachesNormalForLargeDf) {
  EXPECT_NEAR(StudentTQuantile(0.975, 10000), NormalQuantile(0.975), 1e-3);
}

// ---------------------------------------------------------------------------
// Multi-stage sampling estimator (Eqs. 1-3).

TEST(MultistageTest, ExactWhenFullySampled) {
  // n = N and m_i = M_i: the estimate is the exact sum, zero error.
  std::vector<HostSampleStats> hosts(3);
  double exact = 0;
  for (size_t i = 0; i < hosts.size(); ++i) {
    for (int j = 0; j < 100; ++j) {
      const double v = static_cast<double>(i * 100 + j);
      hosts[i].readings.Add(v);
      exact += v;
    }
    hosts[i].population = 100;
  }
  Result<ApproxSum> est = EstimateSum(hosts, 3, 0.95);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->estimate, exact, 1e-6);
  EXPECT_NEAR(est->error_bound, 0.0, 1e-6);
}

TEST(MultistageTest, RejectsBadInputs) {
  std::vector<HostSampleStats> hosts(2);
  hosts[0].population = 10;
  hosts[1].population = 10;
  EXPECT_FALSE(EstimateSum({}, 5, 0.95).ok());
  EXPECT_FALSE(EstimateSum(hosts, 1, 0.95).ok());  // n > N
  EXPECT_FALSE(EstimateSum(hosts, 5, 0.0).ok());
  EXPECT_FALSE(EstimateSum(hosts, 5, 1.0).ok());
}

TEST(MultistageTest, SingleHostHasInfiniteBoundWithVariance) {
  std::vector<HostSampleStats> hosts(1);
  hosts[0].population = 1000;
  hosts[0].readings.Add(1.0);
  hosts[0].readings.Add(3.0);
  Result<ApproxSum> est = EstimateSum(hosts, 10, 0.95);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(std::isinf(est->error_bound));
}

TEST(MultistageTest, CountModeMatchesPopulationScaling) {
  // Pure counting with event sampling: estimate = sum (M_i/m_i)*m_i = sum M_i.
  std::vector<HostSampleStats> hosts(4);
  uint64_t total_pop = 0;
  for (size_t i = 0; i < hosts.size(); ++i) {
    hosts[i].population = 1000 * (i + 1);
    total_pop += hosts[i].population;
    for (int j = 0; j < 50; ++j) {
      hosts[i].readings.Add(1.0);
    }
  }
  Result<ApproxSum> est = EstimateCount(hosts, 4, 0.95);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->estimate, static_cast<double>(total_pop), 1e-6);
}

// Property: across many random draws, the 95% interval covers the true sum
// ~95% of the time (within tolerance — this is the statistical contract the
// paper's Section 3.2 relies on).
TEST(MultistageTest, CoverageOfConfidenceInterval) {
  Rng rng(41);
  const uint64_t total_hosts = 40;
  const uint64_t sampled_hosts = 12;
  const int events_per_host = 400;
  const double event_rate = 0.25;

  // Fixed per-host value distributions (host effects + noise).
  std::vector<std::vector<double>> values(total_hosts);
  double true_sum = 0;
  for (auto& host_values : values) {
    const double host_mean = 5.0 + rng.NextDouble() * 10.0;
    for (int j = 0; j < events_per_host; ++j) {
      const double v = host_mean + rng.NextGaussian() * 2.0;
      host_values.push_back(v);
      true_sum += v;
    }
  }

  int covered = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    // Stage 1: sample hosts without replacement.
    std::vector<uint64_t> ids(total_hosts);
    for (uint64_t i = 0; i < total_hosts; ++i) {
      ids[i] = i;
    }
    for (uint64_t i = 0; i < sampled_hosts; ++i) {
      const uint64_t j = i + rng.NextBelow(total_hosts - i);
      std::swap(ids[i], ids[j]);
    }
    // Stage 2: Bernoulli event sampling within each chosen host.
    std::vector<HostSampleStats> hosts;
    for (uint64_t i = 0; i < sampled_hosts; ++i) {
      HostSampleStats h;
      h.population = events_per_host;
      for (const double v : values[ids[i]]) {
        if (rng.NextBool(event_rate)) {
          h.readings.Add(v);
        }
      }
      hosts.push_back(std::move(h));
    }
    Result<ApproxSum> est = EstimateSum(hosts, total_hosts, 0.95);
    ASSERT_TRUE(est.ok());
    if (std::abs(est->estimate - true_sum) <= est->error_bound) {
      ++covered;
    }
  }
  const double coverage = covered / static_cast<double>(trials);
  EXPECT_GT(coverage, 0.88) << "interval under-covers";
  EXPECT_LE(coverage, 1.0);
}

}  // namespace
}  // namespace scrub
