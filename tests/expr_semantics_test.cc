// Randomized property tests for value and operator semantics — the
// algebraic contracts the join, group-by and predicate machinery lean on —
// plus the differential property that the typed expression IR (lowered,
// lowered-without-folding, and analysis-folded) agrees with the legacy tree
// evaluator and the vectorized columnar evaluator on random expressions over
// random events, including nulls and type-mismatched operands.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/event/column_batch.h"
#include "src/event/event.h"
#include "src/event/schema.h"
#include "src/plan/expr_analysis.h"
#include "src/plan/expr_eval.h"
#include "src/plan/expr_ir.h"
#include "src/plan/vectorized.h"

namespace scrub {
namespace {

Value RandomPrimitive(Rng& rng) {
  switch (rng.NextBelow(5)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(rng.NextBool(0.5));
    case 2:
      return Value(static_cast<int64_t>(rng.NextInRange(-1000, 1000)));
    case 3:
      return Value(rng.NextDouble() * 200 - 100);
    default:
      return Value("s" + std::to_string(rng.NextBelow(50)));
  }
}

Value RandomValue(Rng& rng, int depth = 0) {
  if (depth < 2 && rng.NextBool(0.2)) {
    std::vector<Value> list;
    for (uint64_t i = 0; i < rng.NextBelow(4); ++i) {
      list.push_back(RandomValue(rng, depth + 1));
    }
    return Value(std::move(list));
  }
  return RandomPrimitive(rng);
}

TEST(ValueSemanticsTest, HashAgreesWithEquality) {
  Rng rng(1);
  std::vector<Value> values;
  for (int i = 0; i < 400; ++i) {
    values.push_back(RandomValue(rng));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) {
      if (values[i] == values[j]) {
        EXPECT_EQ(values[i].Hash(), values[j].Hash())
            << values[i].ToString() << " vs " << values[j].ToString();
      }
    }
  }
}

TEST(ValueSemanticsTest, CompareIsAntisymmetricAndConsistent) {
  Rng rng(2);
  for (int trial = 0; trial < 2000; ++trial) {
    const Value a = RandomValue(rng);
    const Value b = RandomValue(rng);
    const int ab = a.Compare(b);
    const int ba = b.Compare(a);
    EXPECT_EQ(ab > 0, ba < 0) << a.ToString() << " vs " << b.ToString();
    EXPECT_EQ(ab == 0, ba == 0);
    if (a == b && !a.is_null()) {
      EXPECT_EQ(ab, 0);
    }
  }
}

TEST(ValueSemanticsTest, CompareIsTransitiveWithinNumericClass) {
  Rng rng(3);
  for (int trial = 0; trial < 1000; ++trial) {
    const Value a(rng.NextDouble() * 100);
    const Value b(static_cast<int64_t>(rng.NextInRange(-100, 100)));
    const Value c(rng.NextDouble() * 100 - 50);
    if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
      EXPECT_LE(a.Compare(c), 0);
    }
  }
}

TEST(OperatorSemanticsTest, AddAndMulCommuteOnNumerics) {
  Rng rng(4);
  for (int trial = 0; trial < 2000; ++trial) {
    const Value a = rng.NextBool(0.5)
                        ? Value(static_cast<int64_t>(
                              rng.NextInRange(-1000, 1000)))
                        : Value(rng.NextDouble() * 100);
    const Value b = rng.NextBool(0.5)
                        ? Value(static_cast<int64_t>(
                              rng.NextInRange(-1000, 1000)))
                        : Value(rng.NextDouble() * 100);
    EXPECT_EQ(ApplyBinaryOp(BinaryOp::kAdd, a, b),
              ApplyBinaryOp(BinaryOp::kAdd, b, a));
    EXPECT_EQ(ApplyBinaryOp(BinaryOp::kMul, a, b),
              ApplyBinaryOp(BinaryOp::kMul, b, a));
  }
}

TEST(OperatorSemanticsTest, ComparisonTrichotomyOnComparables) {
  Rng rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    Value a;
    Value b;
    if (rng.NextBool(0.5)) {
      a = Value(static_cast<int64_t>(rng.NextInRange(-50, 50)));
      b = Value(rng.NextDouble() * 100 - 50);
    } else {
      a = Value("s" + std::to_string(rng.NextBelow(20)));
      b = Value("s" + std::to_string(rng.NextBelow(20)));
    }
    const bool lt = ApplyBinaryOp(BinaryOp::kLt, a, b).AsBool();
    const bool eq = ApplyBinaryOp(BinaryOp::kEq, a, b).AsBool();
    const bool gt = ApplyBinaryOp(BinaryOp::kGt, a, b).AsBool();
    EXPECT_EQ(static_cast<int>(lt) + static_cast<int>(eq) +
                  static_cast<int>(gt),
              1)
        << a.ToString() << " vs " << b.ToString();
    // <= and >= are the complements.
    EXPECT_EQ(ApplyBinaryOp(BinaryOp::kLe, a, b).AsBool(), lt || eq);
    EXPECT_EQ(ApplyBinaryOp(BinaryOp::kGe, a, b).AsBool(), gt || eq);
    EXPECT_EQ(ApplyBinaryOp(BinaryOp::kNe, a, b).AsBool(), !eq);
  }
}

TEST(OperatorSemanticsTest, NullPropagatesThroughArithmetic) {
  const Value null = Value::Null();
  const Value two(int64_t{2});
  for (const BinaryOp op :
       {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv}) {
    EXPECT_TRUE(ApplyBinaryOp(op, null, two).is_null());
    EXPECT_TRUE(ApplyBinaryOp(op, two, null).is_null());
  }
  // Ordered comparisons against null are false; equality treats null=null.
  EXPECT_FALSE(ApplyBinaryOp(BinaryOp::kLt, null, two).AsBool());
  EXPECT_FALSE(ApplyBinaryOp(BinaryOp::kGt, null, two).AsBool());
  EXPECT_TRUE(ApplyBinaryOp(BinaryOp::kEq, null, null).AsBool());
  EXPECT_TRUE(ApplyBinaryOp(BinaryOp::kNe, null, two).AsBool());
}

TEST(OperatorSemanticsTest, IntegerArithmeticStaysIntegral) {
  const Value a(int64_t{7});
  const Value b(int64_t{3});
  EXPECT_TRUE(ApplyBinaryOp(BinaryOp::kAdd, a, b).is_int());
  EXPECT_TRUE(ApplyBinaryOp(BinaryOp::kMul, a, b).is_int());
  // Division always widens (7/3 must not truncate).
  const Value q = ApplyBinaryOp(BinaryOp::kDiv, a, b);
  ASSERT_TRUE(q.is_double());
  EXPECT_NEAR(q.AsDoubleExact(), 7.0 / 3.0, 1e-12);
  // Division by zero is null, not a trap.
  EXPECT_TRUE(ApplyBinaryOp(BinaryOp::kDiv, a, Value(int64_t{0})).is_null());
}

TEST(OperatorSemanticsTest, BooleanAlgebra) {
  const Value t(true);
  const Value f(false);
  EXPECT_TRUE(ApplyBinaryOp(BinaryOp::kAnd, t, t).AsBool());
  EXPECT_FALSE(ApplyBinaryOp(BinaryOp::kAnd, t, f).AsBool());
  EXPECT_TRUE(ApplyBinaryOp(BinaryOp::kOr, f, t).AsBool());
  EXPECT_FALSE(ApplyBinaryOp(BinaryOp::kOr, f, f).AsBool());
  EXPECT_EQ(ApplyUnaryOp(UnaryOp::kNot, ApplyUnaryOp(UnaryOp::kNot, t)), t);
  // Non-boolean operands degrade to false rather than misfiring.
  EXPECT_FALSE(ApplyBinaryOp(BinaryOp::kAnd, Value(int64_t{1}), t).AsBool());
}

TEST(OperatorSemanticsTest, NegationRoundTrips) {
  Rng rng(6);
  for (int trial = 0; trial < 500; ++trial) {
    const Value v(static_cast<int64_t>(rng.NextInRange(-10000, 10000)));
    EXPECT_EQ(ApplyUnaryOp(UnaryOp::kNegate,
                           ApplyUnaryOp(UnaryOp::kNegate, v)),
              v);
  }
  EXPECT_TRUE(ApplyUnaryOp(UnaryOp::kNegate, Value("x")).is_null());
}

TEST(OperatorSemanticsTest, ContainsSemantics) {
  Value list(std::vector<Value>{Value(int64_t{1}), Value("a"),
                                Value(2.0)});
  EXPECT_TRUE(ApplyBinaryOp(BinaryOp::kContains, list,
                            Value(int64_t{1})).AsBool());
  EXPECT_TRUE(ApplyBinaryOp(BinaryOp::kContains, list, Value("a")).AsBool());
  // Numeric cross-type membership (2.0 in list matches int 2? list holds
  // double 2.0; probe int 2 compares equal).
  EXPECT_TRUE(ApplyBinaryOp(BinaryOp::kContains, list,
                            Value(int64_t{2})).AsBool());
  EXPECT_FALSE(ApplyBinaryOp(BinaryOp::kContains, list,
                             Value("b")).AsBool());
  // Non-list left operand is false, not an error.
  EXPECT_FALSE(ApplyBinaryOp(BinaryOp::kContains, Value(int64_t{1}),
                             Value(int64_t{1})).AsBool());
}

// ---------------------------------------------------------------------------
// IR differential property: every evaluator executes the same semantics.

// Integer magnitudes stay tiny so a depth-3 tree of multiplications cannot
// overflow int64 (signed overflow is UB and would trip UBSan before it ever
// said anything about semantics).
Value RandomLeafValue(Rng& rng) {
  switch (rng.NextBelow(6)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(rng.NextBool(0.5));
    case 2:
      return Value(static_cast<int64_t>(rng.NextInRange(-15, 15)));
    case 3:
      return Value(rng.NextDouble() * 20 - 10);
    case 4:
      return Value("s" + std::to_string(rng.NextBelow(6)));
    default:
      return Value(static_cast<int64_t>(rng.NextInRange(0, 3)));
  }
}

CompiledExpr RandomExprTree(Rng& rng, int depth) {
  CompiledExpr e;
  // Leaves: literals (any class, deliberately including nulls and classes
  // that mismatch whatever operator sits above) or field/system loads.
  if (depth <= 0 || rng.NextBool(0.3)) {
    switch (rng.NextBelow(4)) {
      case 0: {
        e.kind = CompiledKind::kField;
        e.source = 0;
        e.field_index = static_cast<int>(rng.NextBelow(4));
        break;
      }
      case 1:
        e.kind = rng.NextBool(0.5) ? CompiledKind::kRequestId
                                   : CompiledKind::kTimestamp;
        e.source = 0;
        break;
      default:
        e.kind = CompiledKind::kLiteral;
        e.literal = RandomLeafValue(rng);
        break;
    }
    return e;
  }
  const uint64_t pick = rng.NextBelow(10);
  if (pick == 0) {
    e.kind = CompiledKind::kUnary;
    e.unary_op = rng.NextBool(0.5) ? UnaryOp::kNegate : UnaryOp::kNot;
    e.children.push_back(RandomExprTree(rng, depth - 1));
    e.node_count = 1 + e.children[0].node_count;
    return e;
  }
  if (pick == 1) {
    e.kind = CompiledKind::kInList;
    e.children.push_back(RandomExprTree(rng, depth - 1));
    for (uint64_t i = 0; i < rng.NextBelow(4); ++i) {
      e.in_list.push_back(RandomLeafValue(rng));
    }
    e.node_count = 1 + e.children[0].node_count;
    return e;
  }
  static constexpr BinaryOp kOps[] = {
      BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv,
      BinaryOp::kEq,  BinaryOp::kNe,  BinaryOp::kLt,  BinaryOp::kLe,
      BinaryOp::kGt,  BinaryOp::kGe,  BinaryOp::kAnd, BinaryOp::kOr,
      BinaryOp::kContains};
  e.kind = CompiledKind::kBinary;
  e.binary_op = kOps[rng.NextBelow(sizeof(kOps) / sizeof(kOps[0]))];
  e.children.push_back(RandomExprTree(rng, depth - 1));
  e.children.push_back(RandomExprTree(rng, depth - 1));
  e.node_count = 1 + e.children[0].node_count + e.children[1].node_count;
  return e;
}

TEST(IrDifferentialTest, AllEvaluatorsAgreeOnRandomExpressions) {
  const SchemaPtr schema = *EventSchema::Builder("bid")
                                .AddField("won", FieldType::kBool)
                                .AddField("user_id", FieldType::kLong)
                                .AddField("price", FieldType::kDouble)
                                .AddField("country", FieldType::kString)
                                .Build();
  const std::vector<SchemaPtr> schemas = {schema};

  Rng rng(7);
  // A small pool of events, some with null (unset) fields and one with a
  // deliberately schema-violating string in the double slot: SetField does
  // not validate, and every evaluator must shrug identically.
  std::vector<Event> events;
  ColumnBatch batch(schema);
  for (uint64_t i = 0; i < 12; ++i) {
    Event e(schema, /*request_id=*/i, static_cast<TimeMicros>(100 + i));
    if (i % 4 != 1) {
      e.SetField(0, Value(rng.NextBool(0.5)));
    }
    if (i % 3 != 2) {
      e.SetField(1, Value(static_cast<int64_t>(rng.NextInRange(-15, 15))));
    }
    if (i % 5 != 0) {
      e.SetField(2, i == 7 ? Value("oops")
                           : Value(rng.NextDouble() * 20 - 10));
    }
    e.SetField(3, Value("s" + std::to_string(rng.NextBelow(6))));
    batch.AppendEvent(e);
    events.push_back(std::move(e));
  }

  int folded_programs = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const CompiledExpr expr = RandomExprTree(rng, 3);
    const ExprProgram lowered = LowerExpr(expr, schemas);
    ExprProgram unfolded = LowerExpr(expr, schemas, /*fold=*/false);
    ASSERT_TRUE(VerifyProgram(lowered).ok());
    ASSERT_TRUE(VerifyProgram(unfolded).ok());
    const ProgramAnalysis analysis = AnalyzeProgram(unfolded);
    if (FoldProgram(&unfolded, analysis)) {
      ++folded_programs;
    }
    for (size_t row = 0; row < events.size(); ++row) {
      const Value expected = EvalExprSingle(expr, events[row]);
      EXPECT_EQ(EvalProgramSingle(lowered, events[row]), expected)
          << "trial " << trial << " row " << row << "\n"
          << ProgramToString(lowered, {"bid"}, schemas);
      EXPECT_EQ(EvalProgramSingle(unfolded, events[row]), expected)
          << "trial " << trial << " row " << row << " (analysis-folded)\n"
          << ProgramToString(unfolded, {"bid"}, schemas);
      const Value columnar_legacy = EvalExprColumns(expr, batch, row);
      EXPECT_EQ(columnar_legacy, expected) << "trial " << trial;
      EXPECT_EQ(EvalProgramColumns(lowered, batch, row), expected)
          << "trial " << trial << " row " << row << " (columnar)\n"
          << ProgramToString(lowered, {"bid"}, schemas);
    }
    // Batch predicate compaction matches per-row predicate evaluation.
    std::vector<uint32_t> selection(batch.rows());
    for (uint32_t i = 0; i < batch.rows(); ++i) {
      selection[i] = i;
    }
    EvalProgramPredicateBatch(lowered, batch, &selection);
    std::vector<uint32_t> expected_sel;
    for (uint32_t i = 0; i < batch.rows(); ++i) {
      if (EvalPredicateSingle(expr, events[i])) {
        expected_sel.push_back(i);
      }
    }
    EXPECT_EQ(selection, expected_sel) << "trial " << trial;
  }
  // Sanity: the generator produces install-time-decidable programs often
  // enough that the folding path is genuinely exercised.
  EXPECT_GT(folded_programs, 20);
}

}  // namespace
}  // namespace scrub
