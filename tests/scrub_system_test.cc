// Tests for the ScrubSystem facade: wiring, overhead reporting, traffic
// accounting, multiple concurrent queries, cancellation, and the
// scrub-disabled mode used by the overhead experiments.

#include <gtest/gtest.h>

#include "src/scrub/scrub_system.h"

namespace scrub {
namespace {

SystemConfig TinySystem(uint64_t seed) {
  SystemConfig config;
  config.seed = seed;
  config.platform.seed = seed;
  config.platform.datacenters = 1;
  config.platform.bidservers_per_dc = 2;
  config.platform.adservers_per_dc = 1;
  config.platform.presentation_per_dc = 1;
  config.platform.num_campaigns = 3;
  config.platform.line_items_per_campaign = 3;
  return config;
}

TEST(ScrubSystemTest, WiresAgentsOntoEveryMonitorableHost) {
  ScrubSystem system(TinySystem(1));
  size_t monitorable = 0;
  for (size_t i = 0; i < system.registry().size(); ++i) {
    const HostInfo& info = system.registry().Get(static_cast<HostId>(i));
    if (info.monitorable) {
      ++monitorable;
      EXPECT_NE(system.agent(info.id), nullptr) << info.name;
    } else {
      EXPECT_EQ(system.agent(info.id), nullptr) << info.name;
    }
  }
  // 2 bid + 1 ad + 1 pres + 1 profile store.
  EXPECT_EQ(monitorable, 5u);
}

TEST(ScrubSystemTest, OverheadReportsSplitAppAndScrub) {
  ScrubSystem system(TinySystem(2));
  PoissonLoadConfig load;
  load.requests_per_second = 200;
  load.duration = 5 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);
  ASSERT_TRUE(system
                  .Submit("SELECT COUNT(*) FROM bid WINDOW 1 s "
                          "DURATION 5 s;",
                          [](const ResultRow&) {})
                  .ok());
  system.RunUntil(6 * kMicrosPerSecond);
  system.Drain();

  const OverheadReport bid = system.ServiceOverhead("BidServers");
  EXPECT_GT(bid.app_ns, 0);
  EXPECT_GT(bid.scrub_ns, 0);
  EXPECT_GT(bid.scrub_fraction, 0.0);
  EXPECT_LT(bid.scrub_fraction, 0.05);  // the paper's regime

  const OverheadReport total = system.TotalOverhead();
  EXPECT_GE(total.app_ns, bid.app_ns);

  // Per-host reports sum to the service report.
  int64_t scrub_sum = 0;
  for (const HostId h : system.platform().bid_servers()) {
    scrub_sum += system.HostOverhead(h).scrub_ns;
  }
  EXPECT_EQ(scrub_sum, bid.scrub_ns);
}

TEST(ScrubSystemTest, ScrubDisabledMeansZeroScrubCost) {
  SystemConfig config = TinySystem(3);
  config.scrub_enabled = false;
  ScrubSystem system(config);
  PoissonLoadConfig load;
  load.requests_per_second = 200;
  load.duration = 3 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);
  system.RunUntil(5 * kMicrosPerSecond);
  const OverheadReport total = system.TotalOverhead();
  EXPECT_GT(total.app_ns, 0);
  EXPECT_EQ(total.scrub_ns, 0);
  EXPECT_EQ(total.scrub_fraction, 0.0);
}

TEST(ScrubSystemTest, TrafficCategoriesAccounted) {
  ScrubSystem system(TinySystem(4));
  PoissonLoadConfig load;
  load.requests_per_second = 300;
  load.duration = 4 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);
  std::vector<ResultRow> rows;
  ASSERT_TRUE(system
                  .Submit("SELECT COUNT(*) FROM bid WINDOW 1 s "
                          "DURATION 4 s;",
                          [&rows](const ResultRow& r) { rows.push_back(r); })
                  .ok());
  system.RunUntil(5 * kMicrosPerSecond);
  system.Drain();
  ASSERT_FALSE(rows.empty());
  const Transport& t = system.transport();
  EXPECT_GT(t.bytes_sent(TrafficCategory::kAppTraffic), 0u);
  EXPECT_GT(t.bytes_sent(TrafficCategory::kScrubControl), 0u);
  EXPECT_GT(t.bytes_sent(TrafficCategory::kScrubEvents), 0u);
  EXPECT_GT(t.bytes_sent(TrafficCategory::kScrubResults), 0u);
  EXPECT_EQ(t.bytes_sent(TrafficCategory::kBaselineLog), 0u);
}

TEST(ScrubSystemTest, ConcurrentQueriesDeliverIndependently) {
  ScrubSystem system(TinySystem(5));
  PoissonLoadConfig load;
  load.requests_per_second = 300;
  load.duration = 4 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);
  uint64_t bids = 0;
  uint64_t imps = 0;
  ASSERT_TRUE(system
                  .Submit("SELECT COUNT(*) FROM bid WINDOW 4 s "
                          "DURATION 4 s;",
                          [&bids](const ResultRow& r) {
                            bids += static_cast<uint64_t>(
                                r.values[0].AsInt());
                          })
                  .ok());
  ASSERT_TRUE(system
                  .Submit("SELECT COUNT(*) FROM impression WINDOW 4 s "
                          "DURATION 4 s;",
                          [&imps](const ResultRow& r) {
                            imps += static_cast<uint64_t>(
                                r.values[0].AsInt());
                          })
                  .ok());
  system.RunUntil(5 * kMicrosPerSecond);
  system.Drain();
  EXPECT_GT(bids, 0u);
  EXPECT_GT(imps, 0u);
  EXPECT_GT(bids, imps);  // not every bid wins the external auction
}

TEST(ScrubSystemTest, CancelStopsResults) {
  ScrubSystem system(TinySystem(6));
  PoissonLoadConfig load;
  load.requests_per_second = 300;
  load.duration = 10 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);
  size_t rows = 0;
  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 10 s;",
      [&rows](const ResultRow&) { ++rows; });
  ASSERT_TRUE(submitted.ok());
  system.RunUntil(3 * kMicrosPerSecond);
  ASSERT_TRUE(system.server().Cancel(submitted->id).ok());
  system.RunUntil(4 * kMicrosPerSecond);
  const size_t rows_at_cancel = rows;
  system.RunUntil(10 * kMicrosPerSecond);
  system.Drain();
  EXPECT_EQ(rows, rows_at_cancel);
}

TEST(ScrubSystemTest, DeterministicAcrossRuns) {
  auto run = [] {
    ScrubSystem system(TinySystem(7));
    PoissonLoadConfig load;
    load.requests_per_second = 250;
    load.duration = 4 * kMicrosPerSecond;
    system.workload().SchedulePoissonLoad(load);
    uint64_t total = 0;
    EXPECT_TRUE(system
                    .Submit("SELECT COUNT(*) FROM bid WINDOW 1 s "
                            "DURATION 4 s;",
                            [&total](const ResultRow& r) {
                              total += static_cast<uint64_t>(
                                  r.values[0].AsInt());
                            })
                    .ok());
    system.RunUntil(5 * kMicrosPerSecond);
    system.Drain();
    return std::make_pair(total, system.platform().stats().bids);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace scrub
