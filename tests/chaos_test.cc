// End-to-end chaos tests: the Scrub pipeline under deterministic fault
// injection. Each test wires a FaultPlan (or scheduled crash) into a full
// ScrubSystem and checks the robustness story the design promises:
//
//  * dropped event batches are retransmitted until acked, so COUNT(*)
//    converges to the fault-free answer with completeness ~ 1;
//  * a cross-DC partition shows up as per-window completeness equal to the
//    reachable-host fraction, not as silently wrong numbers;
//  * lost teardowns cost nothing: agents and central self-expire;
//  * a crashed host dents completeness for exactly the windows it missed,
//    and a restart re-disseminates its queries;
//  * duplicates and reordering are absorbed by (host, epoch, seq) dedup;
//  * the whole faulted run is bit-deterministic per seed.
//
// The fault seed comes from SCRUB_CHAOS_SEED when set (tools/chaos_sweep.sh
// re-runs this binary across a seed range); the default keeps plain ctest
// runs reproducible.

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/scrub/scrub_system.h"

namespace scrub {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("SCRUB_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

SystemConfig ChaosSystem(uint64_t seed, int datacenters = 1) {
  SystemConfig config;
  config.seed = seed;
  config.platform.seed = seed;
  config.platform.datacenters = datacenters;
  config.platform.bidservers_per_dc = 2;
  config.platform.adservers_per_dc = 1;
  config.platform.presentation_per_dc = 1;
  config.platform.num_campaigns = 3;
  config.platform.line_items_per_campaign = 3;
  return config;
}

// (window_start, count) pairs — the part of a COUNT(*) result that must
// match the fault-free run exactly. Completeness is compared separately.
std::vector<std::pair<TimeMicros, int64_t>> Counts(
    const std::vector<ResultRow>& rows) {
  std::vector<std::pair<TimeMicros, int64_t>> out;
  out.reserve(rows.size());
  for (const ResultRow& r : rows) {
    out.emplace_back(r.window_start, r.values[0].AsInt());
  }
  return out;
}

// Sums one agent-side delivery counter for query `id` across all agents.
uint64_t SumAgentStat(ScrubSystem& system, QueryId id,
                      uint64_t AgentQueryStats::*field) {
  uint64_t total = 0;
  for (size_t i = 0; i < system.registry().size(); ++i) {
    ScrubAgent* a = system.agent(static_cast<HostId>(i));
    if (a == nullptr) {
      continue;
    }
    const AgentQueryStats* s = a->StatsFor(id);
    if (s != nullptr) {
      total += s->*field;
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Tentpole acceptance: 20% event-batch drop, COUNT(*) converges to the
// fault-free answer via retransmission, completeness stays ~ 1.
// ---------------------------------------------------------------------------

TEST(ChaosTest, EventDropsConvergeToFaultFreeAnswer) {
  auto run = [](const FaultPlan& faults) {
    SystemConfig config = ChaosSystem(11);
    // Generous straggler grace: at 20% drop a batch needs several retry
    // rounds to get through, and each round is quantized to the 500 ms
    // flush pump. ~7 transmissions fit this budget.
    config.central.allowed_lateness = 5 * kMicrosPerSecond;
    config.agent.retransmit_backoff = 125 * kMicrosPerMilli;
    config.faults = faults;
    auto system = std::make_unique<ScrubSystem>(config);
    PoissonLoadConfig load;
    load.requests_per_second = 300;
    load.duration = 4 * kMicrosPerSecond;
    system->workload().SchedulePoissonLoad(load);
    std::vector<ResultRow> rows;
    EXPECT_TRUE(system
                    ->Submit("SELECT COUNT(*) FROM bid WINDOW 1 s "
                             "DURATION 4 s;",
                             [&rows](const ResultRow& r) { rows.push_back(r); })
                    .ok());
    system->RunUntil(5 * kMicrosPerSecond);
    system->Drain();
    return std::make_pair(std::move(rows), std::move(system));
  };

  auto [clean_rows, clean] = run(FaultPlan{});

  FaultPlan hostile;
  hostile.seed = ChaosSeed();
  hostile.Category(TrafficCategory::kScrubEvents).drop = 0.2;
  auto [faulted_rows, faulted] = run(hostile);

  // The fault layer really fired, and the agents really recovered from it.
  const FaultStats& fs =
      faulted->transport().fault_stats(TrafficCategory::kScrubEvents);
  EXPECT_GT(fs.dropped, 0u);
  EXPECT_GT(SumAgentStat(*faulted, 1, &AgentQueryStats::batches_retransmitted),
            0u);

  // Same windows, same counts as the fault-free run.
  ASSERT_FALSE(clean_rows.empty());
  EXPECT_EQ(Counts(faulted_rows), Counts(clean_rows));

  // Every window heard from (essentially) every host despite the drops.
  for (const ResultRow& r : faulted_rows) {
    EXPECT_GE(r.completeness, 0.99) << "window " << r.window_start;
  }
}

// ---------------------------------------------------------------------------
// Cross-DC partition: windows that close while DC2 is unreachable report
// completeness == reachable-host fraction, and earlier windows stay whole.
// ---------------------------------------------------------------------------

TEST(ChaosTest, PartitionShowsUpAsReachableHostFraction) {
  SystemConfig config = ChaosSystem(12, /*datacenters=*/2);
  FaultPlan faults;
  faults.seed = ChaosSeed();
  PartitionSpec partition;
  partition.datacenter = "DC2";
  partition.start = 2 * kMicrosPerSecond;
  partition.end = 12 * kMicrosPerSecond;
  faults.partitions.push_back(partition);
  config.faults = faults;

  ScrubSystem system(config);
  PoissonLoadConfig load;
  load.requests_per_second = 300;
  load.duration = 6 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);
  std::vector<ResultRow> rows;
  ASSERT_TRUE(system
                  .Submit("SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 6 s;",
                          [&rows](const ResultRow& r) { rows.push_back(r); })
                  .ok());
  system.RunUntil(7 * kMicrosPerSecond);
  system.Drain();

  // 2 DCs x (2 bid + 1 ad + 1 presentation) + the DC1 profile store.
  // DC2's four hosts are unreachable from [2s, 12s).
  const double reachable = 5.0 / 9.0;
  ASSERT_EQ(rows.size(), 6u);
  for (const ResultRow& r : rows) {
    if (r.window_start < 2 * kMicrosPerSecond) {
      EXPECT_DOUBLE_EQ(r.completeness, 1.0) << "window " << r.window_start;
    } else {
      EXPECT_NEAR(r.completeness, reachable, 1e-9)
          << "window " << r.window_start;
      // Degraded rows say so in their rendered form.
      EXPECT_NE(r.ToString().find("completeness"), std::string::npos);
    }
  }

  const FaultStats& fs =
      system.transport().fault_stats(TrafficCategory::kScrubEvents);
  EXPECT_GT(fs.partitioned, 0u);
  // DC2 agents kept retrying into the partition until their budgets spent.
  EXPECT_GT(SumAgentStat(system, 1, &AgentQueryStats::batches_expired), 0u);
}

// ---------------------------------------------------------------------------
// Satellite: every teardown message lost. Agents and central self-expire;
// the run costs exactly what a clean run costs.
// ---------------------------------------------------------------------------

TEST(ChaosTest, LostTeardownsLeaveNoResidualCost) {
  auto run = [](bool drop_control) {
    SystemConfig config = ChaosSystem(21);
    auto system = std::make_unique<ScrubSystem>(config);
    PoissonLoadConfig load;
    load.requests_per_second = 300;
    load.duration = 6 * kMicrosPerSecond;
    system->workload().SchedulePoissonLoad(load);
    std::vector<ResultRow> rows;
    Result<SubmittedQuery> submitted = system->Submit(
        "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 2 s;",
        [&rows](const ResultRow& r) { rows.push_back(r); });
    EXPECT_TRUE(submitted.ok());
    if (drop_control) {
      // Let the installs land and ack first, then cut the control plane:
      // from 1 s on, every teardown (and its ack) vanishes.
      system->scheduler().ScheduleAt(1 * kMicrosPerSecond, [&system] {
        FaultPlan p;
        p.seed = ChaosSeed();
        p.Category(TrafficCategory::kScrubControl).drop = 1.0;
        system->SetFaultPlan(p);
      });
    }
    system->RunUntil(14 * kMicrosPerSecond);
    return std::make_pair(std::move(rows), std::move(system));
  };

  auto [clean_rows, clean] = run(false);
  auto [faulted_rows, faulted] = run(true);
  const QueryId id = 1;

  // Results are unaffected: windows close at central by lateness either way.
  ASSERT_EQ(clean_rows.size(), 2u);
  EXPECT_EQ(Counts(faulted_rows), Counts(clean_rows));

  // Teardowns were really lost and really retried — bounded times.
  const ControlStats* ctl = faulted->server().ControlStatsFor(id);
  ASSERT_NE(ctl, nullptr);
  EXPECT_GT(ctl->teardown_sends, 0u);
  EXPECT_GT(ctl->teardown_retries, 0u);
  EXPECT_EQ(ctl->teardown_acks, 0u);
  EXPECT_GT(faulted->transport()
                .fault_stats(TrafficCategory::kScrubControl)
                .dropped,
            0u);

  // Self-expiry cleaned everything up anyway: no query state anywhere, no
  // retry loops still running.
  EXPECT_EQ(faulted->server().active_queries(), 0u);
  EXPECT_EQ(faulted->server().pending_teardowns(), 0u);
  EXPECT_FALSE(faulted->central().HasQuery(id));
  for (size_t i = 0; i < faulted->registry().size(); ++i) {
    ScrubAgent* a = faulted->agent(static_cast<HostId>(i));
    if (a != nullptr) {
      EXPECT_FALSE(a->HasQuery(id));
      EXPECT_EQ(a->active_queries(), 0u);
      EXPECT_EQ(a->pending_retransmits(), 0u);
    }
  }

  // "No residual cost", literally: the workload ran 4 s past the query's
  // span in both runs, and the host-side Scrub cost is identical — the
  // orphaned query stopped charging the moment it self-expired.
  EXPECT_EQ(faulted->TotalOverhead().scrub_ns, clean->TotalOverhead().scrub_ns);
}

// ---------------------------------------------------------------------------
// Crash + restart: the dead host dents completeness for exactly the windows
// it missed; the restart re-disseminates its queries and recovery is full.
// ---------------------------------------------------------------------------

TEST(ChaosTest, CrashDentsCompletenessAndRestartRecovers) {
  SystemConfig config = ChaosSystem(31);
  ScrubSystem system(config);
  PoissonLoadConfig load;
  load.requests_per_second = 300;
  load.duration = 6 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);

  const HostId victim = system.platform().bid_servers()[0];
  system.ScheduleCrash(victim, /*down_at=*/900 * kMicrosPerMilli,
                       /*up_at=*/2100 * kMicrosPerMilli);

  std::vector<ResultRow> rows;
  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 5 s;",
      [&rows](const ResultRow& r) { rows.push_back(r); });
  ASSERT_TRUE(submitted.ok());
  system.RunUntil(6 * kMicrosPerSecond);
  system.Drain();

  ASSERT_EQ(rows.size(), 5u);
  for (const ResultRow& r : rows) {
    if (r.window_start == 1 * kMicrosPerSecond) {
      // The victim was down for all of [1 s, 2 s): 4 of 5 hosts heard.
      EXPECT_NEAR(r.completeness, 0.8, 1e-9);
    } else {
      // Before the crash its heartbeats had already covered [0 s, 1 s);
      // after the restart the re-installed query object resumes them.
      EXPECT_DOUBLE_EQ(r.completeness, 1.0) << "window " << r.window_start;
    }
  }

  // The restart really went through the control plane.
  const ControlStats* ctl = system.server().ControlStatsFor(submitted->id);
  ASSERT_NE(ctl, nullptr);
  EXPECT_GE(ctl->reinstalls, 1u);
  ASSERT_NE(system.agent(victim), nullptr);
  EXPECT_EQ(system.agent(victim)->epoch(), 1u);
  // Messages to/from the dead host were dropped, not executed on its behalf.
  EXPECT_GT(system.transport().TotalFaultStats().dead_host, 0u);
}

// ---------------------------------------------------------------------------
// Duplication + reordering + lost acks: (host, epoch, seq) dedup keeps the
// answer exact while every batch is delivered at-least-once.
// ---------------------------------------------------------------------------

TEST(ChaosTest, DuplicatesAndLostAcksNeverDoubleCount) {
  auto run = [](const FaultPlan& faults) {
    SystemConfig config = ChaosSystem(41);
    config.faults = faults;
    auto system = std::make_unique<ScrubSystem>(config);
    PoissonLoadConfig load;
    load.requests_per_second = 300;
    load.duration = 4 * kMicrosPerSecond;
    system->workload().SchedulePoissonLoad(load);
    std::vector<ResultRow> rows;
    EXPECT_TRUE(system
                    ->Submit("SELECT COUNT(*) FROM bid WINDOW 1 s "
                             "DURATION 4 s;",
                             [&rows](const ResultRow& r) { rows.push_back(r); })
                    .ok());
    system->RunUntil(5 * kMicrosPerSecond);
    system->Drain();
    return std::make_pair(std::move(rows), std::move(system));
  };

  auto [clean_rows, clean] = run(FaultPlan{});

  FaultPlan hostile;
  hostile.seed = ChaosSeed();
  hostile.Category(TrafficCategory::kScrubEvents).duplicate = 0.3;
  hostile.Category(TrafficCategory::kScrubEvents).reorder = 0.3;
  hostile.Category(TrafficCategory::kScrubAcks).drop = 0.3;
  auto [faulted_rows, faulted] = run(hostile);

  const FaultStats& events =
      faulted->transport().fault_stats(TrafficCategory::kScrubEvents);
  EXPECT_GT(events.duplicated, 0u);
  EXPECT_GT(events.reordered, 0u);
  EXPECT_GT(
      faulted->transport().fault_stats(TrafficCategory::kScrubAcks).dropped,
      0u);

  // Duplicates reached central and were recognized as such...
  const CentralQueryStats* cs = faulted->central().StatsFor(1);
  ASSERT_NE(cs, nullptr);
  EXPECT_GT(cs->batches_duplicate, 0u);

  // ...so the counts are exactly the fault-free counts.
  ASSERT_FALSE(clean_rows.empty());
  EXPECT_EQ(Counts(faulted_rows), Counts(clean_rows));
  for (const ResultRow& r : faulted_rows) {
    EXPECT_GE(r.completeness, 0.99);
  }
}

// ---------------------------------------------------------------------------
// Hierarchical topology: a DC partition must surface as completeness ==
// reachable-host fraction through BOTH hops. The cut severs the DC2 combiner
// from central, so the partials AND the counter digests for the affected
// windows are lost together — degraded windows report 5/9 with fewer counts,
// never full counts at 5/9 or missing counts at 1.0.
// ---------------------------------------------------------------------------

TEST(ChaosTest, HierarchicalPartitionShowsReachableFractionThroughTwoHops) {
  auto run = [](const FaultPlan& faults) {
    SystemConfig config = ChaosSystem(12, /*datacenters=*/2);
    config.combiner_regions = 2;  // combiner 0 -> DC1, combiner 1 -> DC2
    config.faults = faults;
    auto system = std::make_unique<ScrubSystem>(config);
    PoissonLoadConfig load;
    load.requests_per_second = 300;
    load.duration = 6 * kMicrosPerSecond;
    system->workload().SchedulePoissonLoad(load);
    std::vector<ResultRow> rows;
    EXPECT_TRUE(system
                    ->Submit("SELECT COUNT(*) FROM bid WINDOW 1 s "
                             "DURATION 6 s;",
                             [&rows](const ResultRow& r) { rows.push_back(r); })
                    .ok());
    system->RunUntil(7 * kMicrosPerSecond);
    system->Drain();
    return std::make_pair(std::move(rows), std::move(system));
  };

  auto [clean_rows, clean] = run(FaultPlan{});

  // The cut starts at 5 s: window [w, w+1) reaches central as a partial
  // envelope once the inner lateness grace (2 s) expires, so windows 0 and 1
  // ship before the cut and windows 2..5 are marooned on the DC2 side until
  // the combiner's retransmit budget expires.
  FaultPlan hostile;
  hostile.seed = ChaosSeed();
  PartitionSpec partition;
  partition.datacenter = "DC2";
  partition.start = 5 * kMicrosPerSecond;
  partition.end = 20 * kMicrosPerSecond;
  hostile.partitions.push_back(partition);
  auto [faulted_rows, faulted] = run(hostile);

  const double reachable = 5.0 / 9.0;  // DC1's five hosts of nine
  ASSERT_EQ(clean_rows.size(), 6u);
  ASSERT_EQ(faulted_rows.size(), 6u);
  for (size_t i = 0; i < faulted_rows.size(); ++i) {
    const ResultRow& f = faulted_rows[i];
    const ResultRow& c = clean_rows[i];
    ASSERT_EQ(f.window_start, c.window_start);
    if (f.window_start < 2 * kMicrosPerSecond) {
      EXPECT_DOUBLE_EQ(f.completeness, 1.0) << "window " << f.window_start;
      EXPECT_EQ(f.values[0].AsInt(), c.values[0].AsInt())
          << "window " << f.window_start;
    } else {
      EXPECT_NEAR(f.completeness, reachable, 1e-9)
          << "window " << f.window_start;
      // Honest accounting: the count is dented in exactly the windows that
      // say so — DC2's events are missing, not silently absorbed.
      EXPECT_LT(f.values[0].AsInt(), c.values[0].AsInt())
          << "window " << f.window_start;
    }
  }

  // The cut really hit the combiner -> central hop, and the DC2 combiner
  // really retried until its budget was spent.
  EXPECT_GT(faulted->transport()
                .fault_stats(TrafficCategory::kScrubPartials)
                .partitioned,
            0u);
  const std::vector<HostId> chosts = faulted->combiner_hosts();
  ASSERT_EQ(chosts.size(), 2u);
  const CombinerStats& dc2 = faulted->combiner(chosts[1])->stats();
  EXPECT_GT(dc2.envelopes_retransmitted, 0u);
  EXPECT_GT(dc2.envelopes_expired, 0u);
  // DC1's combiner never lost an envelope.
  EXPECT_EQ(faulted->combiner(chosts[0])->stats().envelopes_expired, 0u);
}

// ---------------------------------------------------------------------------
// Combiner crash + restart. A combiner acks agent batches before shipping
// their aggregate upstream, so a crash loses exactly the acked-but-unshipped
// state (the documented at-least-once corner); everything still buffered on
// the agents is retransmitted into the fresh incarnation and recovered. The
// counts must never exceed the clean run's — dedup across incarnations.
// ---------------------------------------------------------------------------

TEST(ChaosTest, CombinerCrashLosesOnlyUnshippedStateAndRecovers) {
  auto run = [](bool crash) {
    SystemConfig config = ChaosSystem(32, /*datacenters=*/2);
    config.combiner_regions = 2;
    auto system = std::make_unique<ScrubSystem>(config);
    PoissonLoadConfig load;
    load.requests_per_second = 300;
    load.duration = 5 * kMicrosPerSecond;
    system->workload().SchedulePoissonLoad(load);
    if (crash) {
      const std::vector<HostId> chosts = system->combiner_hosts();
      EXPECT_EQ(chosts.size(), 2u);
      // Down across the 1.0 s and 2.0 s flush pumps: those batches go
      // unacked and survive on the agents; the 0.5 s pump's batches were
      // acked and die with the incarnation.
      system->ScheduleCrash(chosts[1], /*down_at=*/900 * kMicrosPerMilli,
                            /*up_at=*/2100 * kMicrosPerMilli);
    }
    std::vector<ResultRow> rows;
    EXPECT_TRUE(system
                    ->Submit("SELECT COUNT(*) FROM bid WINDOW 1 s "
                             "DURATION 5 s;",
                             [&rows](const ResultRow& r) { rows.push_back(r); })
                    .ok());
    system->RunUntil(6 * kMicrosPerSecond);
    system->Drain();
    return std::make_pair(std::move(rows), std::move(system));
  };

  auto [clean_rows, clean] = run(false);
  auto [faulted_rows, faulted] = run(true);

  ASSERT_EQ(clean_rows.size(), 5u);
  ASSERT_EQ(faulted_rows.size(), 5u);
  for (size_t i = 0; i < faulted_rows.size(); ++i) {
    const ResultRow& f = faulted_rows[i];
    const ResultRow& c = clean_rows[i];
    ASSERT_EQ(f.window_start, c.window_start);
    // Never MORE than the clean run: retransmits into the fresh incarnation
    // are deduped per (host, epoch, seq), and the coordinator never merges
    // the same envelope twice.
    EXPECT_LE(f.values[0].AsInt(), c.values[0].AsInt())
        << "window " << f.window_start;
    if (f.window_start == 0) {
      // DC2's [0, 0.5 s) events were acked into the dead incarnation and
      // never shipped upstream: gone. (Their hosts still surface in later
      // slot-0 heartbeat deltas, so completeness alone cannot flag this —
      // the at-least-once corner DESIGN.md documents.)
      EXPECT_LT(f.values[0].AsInt(), c.values[0].AsInt());
    } else {
      // Unacked batches outlived the crash agent-side and were delivered to
      // the fresh incarnation within the inner lateness grace.
      EXPECT_EQ(f.values[0].AsInt(), c.values[0].AsInt())
          << "window " << f.window_start;
      EXPECT_DOUBLE_EQ(f.completeness, 1.0) << "window " << f.window_start;
    }
  }

  // The restart really produced a fresh incarnation that re-installed the
  // query and absorbed the retransmits.
  const std::vector<HostId> chosts = faulted->combiner_hosts();
  const RegionalCombiner* fresh = faulted->combiner(chosts[1]);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->epoch(), 2u);
  EXPECT_GT(fresh->stats().batches_absorbed, 0u);
  EXPECT_GT(SumAgentStat(*faulted, 1, &AgentQueryStats::batches_retransmitted),
            0u);
  EXPECT_GT(faulted->transport().TotalFaultStats().dead_host, 0u);
}

// ---------------------------------------------------------------------------
// Lossy combiner -> central hop: dropped partial envelopes are retransmitted
// until acked, dropped acks make retransmits race their admission — and the
// coordinator's per-(combiner, epoch, seq) dedup keeps the merge exactly
//-once. Counts match the fault-free run bit for bit.
// ---------------------------------------------------------------------------

TEST(ChaosTest, LostPartialEnvelopesRetransmitWithoutDoubleCounting) {
  auto run = [](const FaultPlan& faults) {
    SystemConfig config = ChaosSystem(61);
    config.combiner_regions = 1;
    config.central.allowed_lateness = 5 * kMicrosPerSecond;
    config.agent.retransmit_backoff = 125 * kMicrosPerMilli;
    config.faults = faults;
    auto system = std::make_unique<ScrubSystem>(config);
    PoissonLoadConfig load;
    load.requests_per_second = 300;
    load.duration = 4 * kMicrosPerSecond;
    system->workload().SchedulePoissonLoad(load);
    std::vector<ResultRow> rows;
    // 16 half-second windows: every flush pump past the lateness grace
    // ships a fresh envelope, so the fault probabilities below fire at
    // every sweep seed, not just the default.
    EXPECT_TRUE(system
                    ->Submit("SELECT COUNT(*) FROM bid WINDOW 500 ms "
                             "DURATION 8 s;",
                             [&rows](const ResultRow& r) { rows.push_back(r); })
                    .ok());
    system->RunUntil(9 * kMicrosPerSecond);
    system->Drain();
    return std::make_pair(std::move(rows), std::move(system));
  };

  auto [clean_rows, clean] = run(FaultPlan{});

  FaultPlan hostile;
  hostile.seed = ChaosSeed();
  hostile.Category(TrafficCategory::kScrubPartials).drop = 0.3;
  hostile.Category(TrafficCategory::kScrubPartials).duplicate = 0.5;
  hostile.Category(TrafficCategory::kScrubAcks).drop = 0.3;
  auto [faulted_rows, faulted] = run(hostile);

  // The fault layer fired on the upstream hop, the combiner retried, and at
  // least one retransmit raced a lost ack into the coordinator's dedup.
  EXPECT_GT(faulted->transport()
                .fault_stats(TrafficCategory::kScrubPartials)
                .dropped,
            0u);
  const std::vector<HostId> chosts = faulted->combiner_hosts();
  ASSERT_EQ(chosts.size(), 1u);
  const CombinerStats& cs = faulted->combiner(chosts[0])->stats();
  EXPECT_GT(cs.envelopes_retransmitted, 0u);
  ASSERT_NE(faulted->coordinator(), nullptr);
  EXPECT_GT(faulted->coordinator()->DuplicateBatches(1), 0u);

  // Exactly-once merge: same windows, same counts, whole windows.
  ASSERT_FALSE(clean_rows.empty());
  EXPECT_EQ(Counts(faulted_rows), Counts(clean_rows));
  for (const ResultRow& r : faulted_rows) {
    EXPECT_GE(r.completeness, 0.99) << "window " << r.window_start;
  }
}

// ---------------------------------------------------------------------------
// The whole point of seeded chaos: an identically-seeded hostile run is
// bit-identical, faults and all.
// ---------------------------------------------------------------------------

TEST(ChaosTest, HostileRunsAreDeterministicPerSeed) {
  auto run = [] {
    SystemConfig config = ChaosSystem(51, /*datacenters=*/2);
    FaultPlan faults;
    faults.seed = ChaosSeed();
    FaultSpec& events = faults.Category(TrafficCategory::kScrubEvents);
    events.drop = 0.1;
    events.duplicate = 0.2;
    events.reorder = 0.2;
    events.spike = 0.1;
    faults.Category(TrafficCategory::kScrubAcks).drop = 0.2;
    faults.Category(TrafficCategory::kScrubControl).drop = 0.05;
    PartitionSpec partition;
    partition.datacenter = "DC2";
    partition.start = 1500 * kMicrosPerMilli;
    partition.end = 2500 * kMicrosPerMilli;
    faults.partitions.push_back(partition);
    config.faults = faults;

    ScrubSystem system(config);
    PoissonLoadConfig load;
    load.requests_per_second = 250;
    load.duration = 4 * kMicrosPerSecond;
    system.workload().SchedulePoissonLoad(load);
    system.ScheduleCrash(system.platform().bid_servers()[0],
                         /*down_at=*/1 * kMicrosPerSecond,
                         /*up_at=*/2 * kMicrosPerSecond);
    std::string transcript;
    EXPECT_TRUE(system
                    .Submit("SELECT COUNT(*) FROM bid WINDOW 1 s "
                            "DURATION 4 s;",
                            [&transcript](const ResultRow& r) {
                              transcript += r.ToString();
                              transcript += '\n';
                            })
                    .ok());
    system.RunUntil(5 * kMicrosPerSecond);
    system.Drain();

    const FaultStats total = system.transport().TotalFaultStats();
    transcript += std::to_string(total.dropped) + '/' +
                  std::to_string(total.duplicated) + '/' +
                  std::to_string(total.reordered) + '/' +
                  std::to_string(total.spiked) + '/' +
                  std::to_string(total.partitioned) + '/' +
                  std::to_string(total.dead_host) + '/' +
                  std::to_string(system.platform().stats().bids);
    return transcript;
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace scrub
