// Unit tests for src/event: Value semantics, schemas, events, wire codec.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/event/event.h"
#include "src/event/schema.h"
#include "src/event/value.h"
#include "src/event/wire.h"

namespace scrub {
namespace {

SchemaPtr TestSchema() {
  return *EventSchema::Builder("probe")
              .AddField("flag", FieldType::kBool)
              .AddField("n", FieldType::kLong)
              .AddField("x", FieldType::kDouble)
              .AddField("name", FieldType::kString)
              .AddField("ids", FieldType::kLongList)
              .AddField("meta", FieldType::kObject)
              .Build();
}

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(int64_t{2}), Value(2.0));
  EXPECT_NE(Value(int64_t{2}), Value(2.5));
  EXPECT_EQ(Value(int64_t{2}).Hash(), Value(2.0).Hash());
}

TEST(ValueTest, CompareWithinClasses) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(int64_t{2})), 0);
  EXPECT_GT(Value(2.5).Compare(Value(int64_t{2})), 0);
  EXPECT_EQ(Value("abc").Compare(Value("abc")), 0);
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_LT(Value(false).Compare(Value(true)), 0);
}

TEST(ValueTest, ListEqualityAndOrder) {
  Value a(std::vector<Value>{Value(int64_t{1}), Value(int64_t{2})});
  Value b(std::vector<Value>{Value(int64_t{1}), Value(int64_t{2})});
  Value c(std::vector<Value>{Value(int64_t{1}), Value(int64_t{3})});
  Value shorter(std::vector<Value>{Value(int64_t{1})});
  EXPECT_EQ(a, b);
  EXPECT_LT(a.Compare(c), 0);
  EXPECT_GT(a.Compare(shorter), 0);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ValueTest, NestedObjectLookup) {
  NestedObject obj;
  obj.fields.emplace_back("inner", Value(int64_t{5}));
  obj.fields.emplace_back("tag", Value("t"));
  Value v(std::move(obj));
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.AsObject().Find("tag"), nullptr);
  EXPECT_EQ(*v.AsObject().Find("inner"), Value(int64_t{5}));
  EXPECT_EQ(v.AsObject().Find("missing"), nullptr);
  EXPECT_EQ(v.ToString(), "{inner: 5, tag: \"t\"}");
}

TEST(ValueTest, ConformsToDeclaredTypes) {
  EXPECT_TRUE(Value(int64_t{1}).ConformsTo(FieldType::kLong));
  EXPECT_TRUE(Value(int64_t{1}).ConformsTo(FieldType::kInt));
  EXPECT_TRUE(Value(int64_t{1}).ConformsTo(FieldType::kDateTime));
  EXPECT_TRUE(Value(1.5).ConformsTo(FieldType::kDouble));
  EXPECT_TRUE(Value(int64_t{1}).ConformsTo(FieldType::kDouble));  // widening
  EXPECT_FALSE(Value(1.5).ConformsTo(FieldType::kLong));
  EXPECT_FALSE(Value("x").ConformsTo(FieldType::kBool));
  EXPECT_TRUE(Value::Null().ConformsTo(FieldType::kString));
  Value list(std::vector<Value>{Value(int64_t{1}), Value(int64_t{2})});
  EXPECT_TRUE(list.ConformsTo(FieldType::kLongList));
  EXPECT_FALSE(list.ConformsTo(FieldType::kStringList));
  EXPECT_FALSE(list.ConformsTo(FieldType::kLong));
}

TEST(FieldTypeTest, NameRoundTrip) {
  for (const FieldType t :
       {FieldType::kBool, FieldType::kInt, FieldType::kLong, FieldType::kFloat,
        FieldType::kDouble, FieldType::kDateTime, FieldType::kString,
        FieldType::kLongList, FieldType::kStringList, FieldType::kObject}) {
    Result<FieldType> back = FieldTypeFromName(FieldTypeName(t));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(FieldTypeFromName("quux").ok());
}

TEST(FieldTypeTest, ListPredicates) {
  EXPECT_TRUE(IsListType(FieldType::kDoubleList));
  EXPECT_FALSE(IsListType(FieldType::kDouble));
  EXPECT_EQ(ListElementType(FieldType::kLongList), FieldType::kLong);
  EXPECT_TRUE(IsNumericType(FieldType::kDateTime));
  EXPECT_FALSE(IsNumericType(FieldType::kString));
  EXPECT_TRUE(IsOrderedType(FieldType::kString));
  EXPECT_FALSE(IsOrderedType(FieldType::kBool));
}

TEST(SchemaTest, BuilderRejectsBadDefinitions) {
  EXPECT_FALSE(EventSchema::Builder("").Build().ok());
  EXPECT_FALSE(EventSchema::Builder("t")
                   .AddField("a", FieldType::kLong)
                   .AddField("a", FieldType::kString)
                   .Build()
                   .ok());
  EXPECT_FALSE(EventSchema::Builder("t")
                   .AddField("__request_id", FieldType::kLong)
                   .Build()
                   .ok());
  EXPECT_FALSE(EventSchema::Builder("t")
                   .AddField("", FieldType::kLong)
                   .Build()
                   .ok());
}

TEST(SchemaTest, FieldLookupIncludesSystemFields) {
  SchemaPtr schema = TestSchema();
  EXPECT_EQ(schema->FieldIndex("n"), 1);
  EXPECT_EQ(schema->FieldIndex("missing"), -1);
  EXPECT_TRUE(schema->HasField("__request_id"));
  EXPECT_TRUE(schema->HasField("__timestamp"));
  EXPECT_EQ(*schema->FieldTypeOf("__request_id"), FieldType::kLong);
  EXPECT_EQ(*schema->FieldTypeOf("__timestamp"), FieldType::kDateTime);
  EXPECT_EQ(*schema->FieldTypeOf("x"), FieldType::kDouble);
  EXPECT_FALSE(schema->FieldTypeOf("missing").ok());
}

TEST(SchemaRegistryTest, RegisterAndLookup) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry.Register(TestSchema()).ok());
  EXPECT_TRUE(registry.Contains("probe"));
  EXPECT_FALSE(registry.Contains("other"));
  EXPECT_TRUE(registry.Get("probe").ok());
  EXPECT_FALSE(registry.Get("other").ok());
  // Duplicate registration fails.
  EXPECT_EQ(registry.Register(TestSchema()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.TypeNames(), std::vector<std::string>{"probe"});
}

TEST(EventTest, SetAndGetFields) {
  Event e(TestSchema(), /*request_id=*/42, /*timestamp=*/1000);
  ASSERT_TRUE(e.SetFieldByName("n", Value(int64_t{7})).ok());
  ASSERT_TRUE(e.SetFieldByName("name", Value("turn")).ok());
  EXPECT_EQ(e.GetField("n"), Value(int64_t{7}));
  EXPECT_EQ(e.GetField("x"), Value::Null());  // unset
  EXPECT_EQ(e.GetField("__request_id"), Value(int64_t{42}));
  EXPECT_EQ(e.GetField("__timestamp"), Value(int64_t{1000}));
  EXPECT_TRUE(e.GetField("no_such").is_null());
}

TEST(EventTest, TypeMismatchRejected) {
  Event e(TestSchema(), 1, 1);
  EXPECT_EQ(e.SetFieldByName("n", Value("string")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(e.SetFieldByName("ghost", Value(int64_t{1})).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(e.Validate().ok());
}

TEST(EventBuilderTest, FluentConstruction) {
  Result<Event> e = EventBuilder(TestSchema(), 9, 99)
                        .Set("flag", Value(true))
                        .Set("x", Value(2.5))
                        .Build();
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->GetField("flag"), Value(true));
  EXPECT_EQ(e->request_id(), 9u);

  Result<Event> bad = EventBuilder(TestSchema(), 9, 99)
                          .Set("flag", Value(int64_t{1}))
                          .Build();
  EXPECT_FALSE(bad.ok());
}

TEST(WireTest, RoundTripAllFieldKinds) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry.Register(TestSchema()).ok());
  Event e(*registry.Get("probe"), 77, 123456);
  e.SetField(0, Value(true));
  e.SetField(1, Value(int64_t{-5}));
  e.SetField(2, Value(3.25));
  e.SetField(3, Value("quoted \"text\""));
  e.SetField(4, Value(std::vector<Value>{Value(int64_t{1}),
                                         Value(int64_t{2})}));
  NestedObject obj;
  obj.fields.emplace_back("k", Value("v"));
  e.SetField(5, Value(std::move(obj)));

  std::string buffer;
  const size_t written = EncodeEvent(e, &buffer);
  EXPECT_EQ(written, buffer.size());
  EXPECT_EQ(written, e.WireSize()) << "WireSize must match the codec exactly";

  size_t offset = 0;
  Result<Event> back = DecodeEvent(registry, buffer, &offset);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(offset, buffer.size());
  EXPECT_EQ(back->request_id(), 77u);
  EXPECT_EQ(back->timestamp(), 123456);
  for (size_t i = 0; i < e.field_count(); ++i) {
    EXPECT_EQ(back->field(i), e.field(i)) << "field " << i;
  }
}

TEST(WireTest, BatchRoundTrip) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry.Register(TestSchema()).ok());
  std::vector<Event> events;
  for (int i = 0; i < 10; ++i) {
    Event e(*registry.Get("probe"), static_cast<RequestId>(i), i * 10);
    e.SetField(1, Value(int64_t{i}));
    events.push_back(std::move(e));
  }
  const std::string buffer = EncodeBatch(events);
  Result<std::vector<Event>> back = DecodeBatch(registry, buffer);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*back)[static_cast<size_t>(i)].field(1), Value(int64_t{i}));
  }
}

TEST(WireTest, TruncationDetected) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry.Register(TestSchema()).ok());
  Event e(*registry.Get("probe"), 1, 1);
  e.SetField(3, Value("some payload"));
  std::string buffer;
  EncodeEvent(e, &buffer);
  for (const size_t cut : {size_t{1}, size_t{5}, buffer.size() - 1}) {
    std::string truncated = buffer.substr(0, cut);
    size_t offset = 0;
    EXPECT_FALSE(DecodeEvent(registry, truncated, &offset).ok())
        << "cut=" << cut;
  }
}

TEST(WireTest, UnknownTypeRejected) {
  SchemaRegistry full;
  ASSERT_TRUE(full.Register(TestSchema()).ok());
  Event e(*full.Get("probe"), 1, 1);
  std::string buffer;
  EncodeEvent(e, &buffer);
  SchemaRegistry empty;
  size_t offset = 0;
  EXPECT_EQ(DecodeEvent(empty, buffer, &offset).status().code(),
            StatusCode::kNotFound);
}

TEST(WireTest, TrailingBytesInBatchRejected) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry.Register(TestSchema()).ok());
  std::string buffer = EncodeBatch({});
  buffer += "junk";
  EXPECT_FALSE(DecodeBatch(registry, buffer).ok());
}

// Property: WireSize always equals the encoded size, across random events.
TEST(WireTest, WireSizePropertyOnRandomEvents) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry.Register(TestSchema()).ok());
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    Event e(*registry.Get("probe"), rng.NextUint64(),
            static_cast<TimeMicros>(rng.NextBelow(1u << 30)));
    if (rng.NextBool(0.5)) {
      e.SetField(0, Value(rng.NextBool(0.5)));
    }
    if (rng.NextBool(0.5)) {
      e.SetField(1, Value(static_cast<int64_t>(rng.NextUint64())));
    }
    if (rng.NextBool(0.5)) {
      e.SetField(2, Value(rng.NextDouble()));
    }
    if (rng.NextBool(0.5)) {
      std::string s(rng.NextBelow(64), 'x');
      e.SetField(3, Value(std::move(s)));
    }
    if (rng.NextBool(0.5)) {
      std::vector<Value> list;
      for (uint64_t i = 0; i < rng.NextBelow(8); ++i) {
        list.push_back(Value(static_cast<int64_t>(i)));
      }
      e.SetField(4, Value(std::move(list)));
    }
    std::string buffer;
    const size_t written = EncodeEvent(e, &buffer);
    EXPECT_EQ(written, e.WireSize());
    size_t offset = 0;
    Result<Event> back = DecodeEvent(registry, buffer, &offset);
    ASSERT_TRUE(back.ok());
    for (size_t i = 0; i < e.field_count(); ++i) {
      EXPECT_EQ(back->field(i), e.field(i));
    }
  }
}

}  // namespace
}  // namespace scrub
