// Unit tests for src/plan: expression compilation/evaluation and the
// host/central planner split.

#include <gtest/gtest.h>

#include "src/plan/expr_eval.h"
#include "src/plan/plan.h"
#include "src/query/analyzer.h"
#include "src/query/parser.h"

namespace scrub {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() {
    bid_schema_ = *EventSchema::Builder("bid")
                       .AddField("user_id", FieldType::kLong)
                       .AddField("price", FieldType::kDouble)
                       .AddField("country", FieldType::kString)
                       .AddField("items", FieldType::kLongList)
                       .Build();
    click_schema_ = *EventSchema::Builder("click")
                         .AddField("user_id", FieldType::kLong)
                         .AddField("model", FieldType::kString)
                         .Build();
    EXPECT_TRUE(registry_.Register(bid_schema_).ok());
    EXPECT_TRUE(registry_.Register(click_schema_).ok());
  }

  Event MakeBid(RequestId rid, TimeMicros ts, int64_t user, double price,
                const char* country) {
    Event e(bid_schema_, rid, ts);
    e.SetField(0, Value(user));
    e.SetField(1, Value(price));
    e.SetField(2, Value(country));
    return e;
  }

  Result<QueryPlan> Plan(std::string_view text, TimeMicros submit = 0) {
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_);
    if (!aq.ok()) {
      return aq.status();
    }
    return PlanQuery(*aq, 1, submit);
  }

  // Compiles the WHERE of a single-source query for direct evaluation.
  CompiledExpr CompileWhere(std::string_view text) {
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    Result<CompiledExpr> compiled =
        CompileExpr(*aq->query.where, aq->query.sources, aq->schemas);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    return std::move(compiled).value();
  }

  SchemaRegistry registry_;
  SchemaPtr bid_schema_;
  SchemaPtr click_schema_;
};

TEST_F(PlanTest, PredicateEvaluation) {
  const CompiledExpr pred = CompileWhere(
      "SELECT COUNT(*) FROM bid WHERE bid.price > 1.5 AND "
      "bid.country IN ('US', 'CA');");
  Event yes = MakeBid(1, 10, 100, 2.0, "US");
  Event no_price = MakeBid(2, 10, 100, 1.0, "US");
  Event no_country = MakeBid(3, 10, 100, 2.0, "JP");
  EXPECT_TRUE(EvalPredicateSingle(pred, yes));
  EXPECT_FALSE(EvalPredicateSingle(pred, no_price));
  EXPECT_FALSE(EvalPredicateSingle(pred, no_country));
}

TEST_F(PlanTest, ArithmeticAndComparisonSemantics) {
  const CompiledExpr pred = CompileWhere(
      "SELECT COUNT(*) FROM bid WHERE bid.price * 2 + 1 >= 4.0;");
  EXPECT_TRUE(EvalPredicateSingle(pred, MakeBid(1, 0, 1, 1.5, "US")));
  EXPECT_FALSE(EvalPredicateSingle(pred, MakeBid(1, 0, 1, 1.49, "US")));
}

TEST_F(PlanTest, NullFieldsFailComparisons) {
  const CompiledExpr pred =
      CompileWhere("SELECT COUNT(*) FROM bid WHERE bid.price > 0.0;");
  Event e(bid_schema_, 1, 0);  // price never set -> null
  EXPECT_FALSE(EvalPredicateSingle(pred, e));

  const CompiledExpr isnull =
      CompileWhere("SELECT COUNT(*) FROM bid WHERE bid.price = NULL;");
  EXPECT_TRUE(EvalPredicateSingle(isnull, e));
  EXPECT_FALSE(
      EvalPredicateSingle(isnull, MakeBid(1, 0, 1, 2.0, "US")));
}

TEST_F(PlanTest, DivisionByZeroYieldsNull) {
  const CompiledExpr pred =
      CompileWhere("SELECT COUNT(*) FROM bid WHERE bid.price / 0 > 1;");
  // null > 1 is false, not a crash.
  EXPECT_FALSE(EvalPredicateSingle(pred, MakeBid(1, 0, 1, 5.0, "US")));
}

TEST_F(PlanTest, ContainsEvaluation) {
  const CompiledExpr pred =
      CompileWhere("SELECT COUNT(*) FROM bid WHERE bid.items CONTAINS 7;");
  Event with(bid_schema_, 1, 0);
  with.SetField(3, Value(std::vector<Value>{Value(int64_t{5}),
                                            Value(int64_t{7})}));
  Event without(bid_schema_, 2, 0);
  without.SetField(3, Value(std::vector<Value>{Value(int64_t{5})}));
  Event unset(bid_schema_, 3, 0);
  EXPECT_TRUE(EvalPredicateSingle(pred, with));
  EXPECT_FALSE(EvalPredicateSingle(pred, without));
  EXPECT_FALSE(EvalPredicateSingle(pred, unset));
}

TEST_F(PlanTest, SystemFieldAccess) {
  const CompiledExpr pred = CompileWhere(
      "SELECT COUNT(*) FROM bid WHERE __timestamp >= 100 AND "
      "__request_id = 9;");
  EXPECT_TRUE(EvalPredicateSingle(pred, MakeBid(9, 100, 1, 1.0, "US")));
  EXPECT_FALSE(EvalPredicateSingle(pred, MakeBid(9, 99, 1, 1.0, "US")));
  EXPECT_FALSE(EvalPredicateSingle(pred, MakeBid(8, 100, 1, 1.0, "US")));
}

TEST_F(PlanTest, ShortCircuitAndOr) {
  // Right side would be null-ish; short circuit means the left decides.
  const CompiledExpr pred = CompileWhere(
      "SELECT COUNT(*) FROM bid WHERE bid.price > 100.0 AND "
      "bid.country = 'US';");
  EXPECT_FALSE(EvalPredicateSingle(pred, MakeBid(1, 0, 1, 1.0, "US")));
}

TEST_F(PlanTest, HostPlanContainsOnlySelectionAndProjection) {
  Result<QueryPlan> plan = Plan(
      "SELECT bid.user_id, COUNT(*) FROM bid WHERE bid.price > 1.0 "
      "GROUP BY bid.user_id WINDOW 10 s DURATION 60 s;",
      /*submit=*/1000);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const HostPlan& host = plan->host;
  EXPECT_EQ(host.query_id, 1u);
  EXPECT_EQ(host.start_time, 1000);
  EXPECT_EQ(host.end_time, 1000 + 60 * kMicrosPerSecond);
  ASSERT_EQ(host.sources.size(), 1u);
  EXPECT_EQ(host.sources[0].conjuncts.size(), 1u);
  // Projection: user_id and price read; country and items dropped.
  EXPECT_TRUE(host.sources[0].keep_field[0]);
  EXPECT_TRUE(host.sources[0].keep_field[1]);
  EXPECT_FALSE(host.sources[0].keep_field[2]);
  EXPECT_FALSE(host.sources[0].keep_field[3]);
  EXPECT_EQ(host.sources[0].kept_fields, 2);
}

TEST_F(PlanTest, CentralPlanCarriesAggregatesAndGrouping) {
  Result<QueryPlan> plan = Plan(
      "SELECT bid.user_id, COUNT(*) AS n, 1000 * AVG(bid.price) FROM bid "
      "GROUP BY bid.user_id;");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const CentralPlan& central = plan->central;
  EXPECT_TRUE(central.aggregate_mode);
  ASSERT_EQ(central.group_by.size(), 1u);
  ASSERT_EQ(central.aggregates.size(), 2u);
  EXPECT_EQ(central.aggregates[0].func, AggregateFunc::kCount);
  EXPECT_EQ(central.aggregates[1].func, AggregateFunc::kAvg);
  ASSERT_EQ(central.outputs.size(), 3u);
  EXPECT_EQ(central.outputs[0].expr.kind, OutputKind::kGroupKey);
  EXPECT_EQ(central.outputs[1].expr.kind, OutputKind::kAggregate);
  EXPECT_EQ(central.outputs[1].name, "n");
  EXPECT_EQ(central.outputs[2].expr.kind, OutputKind::kBinary);
}

TEST_F(PlanTest, RawModeForProjectionQueries) {
  Result<QueryPlan> plan =
      Plan("SELECT bid.user_id, bid.price FROM bid WHERE bid.price > 2.0;");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->central.aggregate_mode);
  EXPECT_EQ(plan->central.raw_select.size(), 2u);
  EXPECT_EQ(plan->central.column_names.size(), 2u);
}

TEST_F(PlanTest, JoinConjunctsRouteToTheirSources) {
  Result<QueryPlan> plan = Plan(
      "SELECT COUNT(*) FROM bid, click "
      "WHERE bid.price > 1.0 AND click.model = 'modelA';");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->host.sources.size(), 2u);
  EXPECT_EQ(plan->host.sources[0].event_type, "bid");
  EXPECT_EQ(plan->host.sources[0].conjuncts.size(), 1u);
  EXPECT_EQ(plan->host.sources[1].event_type, "click");
  EXPECT_EQ(plan->host.sources[1].conjuncts.size(), 1u);
}

TEST_F(PlanTest, JoinedTupleEvaluation) {
  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      "SELECT COUNT(*) FROM bid, click WHERE bid.user_id = 5;", registry_);
  ASSERT_TRUE(aq.ok());
  // Cross-source select expression compiled against the full source list.
  Result<CompiledExpr> user_ref = CompileExpr(
      *Expr::MakeFieldRef("click", "model"), aq->query.sources, aq->schemas);
  ASSERT_TRUE(user_ref.ok());
  Event bid = MakeBid(1, 0, 5, 1.0, "US");
  Event click(click_schema_, 1, 5);
  click.SetField(0, Value(int64_t{5}));
  click.SetField(1, Value("modelB"));
  EventTuple tuple{&bid, &click};
  EXPECT_EQ(EvalExpr(*user_ref, tuple), Value("modelB"));
}

TEST_F(PlanTest, OutputExprEvaluation) {
  Result<QueryPlan> plan = Plan(
      "SELECT bid.user_id, 1000 * AVG(bid.price) FROM bid "
      "GROUP BY bid.user_id;");
  ASSERT_TRUE(plan.ok());
  const std::vector<Value> group_key = {Value(int64_t{42})};
  const std::vector<Value> aggs = {Value(2.5)};
  EXPECT_EQ(EvalOutputExpr(plan->central.outputs[0].expr, group_key, aggs),
            Value(int64_t{42}));
  EXPECT_EQ(EvalOutputExpr(plan->central.outputs[1].expr, group_key, aggs),
            Value(2500.0));
}

TEST_F(PlanTest, NodeCountsChargeable) {
  Result<QueryPlan> plan = Plan(
      "SELECT COUNT(*) FROM bid WHERE bid.price > 1.0 AND "
      "bid.country = 'US';");
  ASSERT_TRUE(plan.ok());
  // Conjuncts: (price > 1.0) has 3 nodes; (country = 'US') has 3 nodes.
  EXPECT_EQ(plan->host.sources[0].predicate_nodes, 6);
  EXPECT_GT(plan->host.WireSize(), 64u);
}

TEST_F(PlanTest, SamplingRatesPropagate) {
  Result<QueryPlan> plan = Plan(
      "SELECT COUNT(*) FROM bid DURATION 60 s "
      "SAMPLE HOSTS 50% SAMPLE EVENTS 25%;");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->host.event_sample_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan->central.host_sample_rate, 0.50);
  EXPECT_DOUBLE_EQ(plan->central.event_sample_rate, 0.25);
  EXPECT_TRUE(plan->central.SamplingActive());
}

}  // namespace
}  // namespace scrub
