// Unit tests for the synthetic bidding platform: topology, the request
// pipeline, event emission, frequency caps, budgets, exchange activation,
// and the workload generators.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/bidsim/platform.h"
#include "src/bidsim/workload.h"

namespace scrub {
namespace {

class BidsimTest : public ::testing::Test {
 protected:
  BidsimTest() : transport_(&scheduler_, &registry_) {
    PlatformConfig config;
    config.seed = 5;
    config.datacenters = 2;
    config.bidservers_per_dc = 2;
    config.adservers_per_dc = 1;
    config.presentation_per_dc = 1;
    config.num_campaigns = 3;
    config.line_items_per_campaign = 4;
    platform_ = std::make_unique<BiddingPlatform>(
        &scheduler_, &transport_, &registry_, &schemas_, config);
    platform_->SetEventLogger([this](HostId host, const Event& event) {
      logged_.emplace_back(host, event);
      return int64_t{500};
    });
  }

  BidRequest MakeRequest(UserId user, ExchangeId exchange, TimeMicros at) {
    BidRequest req;
    req.user_id = user;
    req.exchange_id = exchange;
    req.publisher_id = 3;
    req.country = "US";
    req.city = "san_jose";
    req.arrival = at;
    return req;
  }

  size_t CountEvents(const std::string& type) const {
    size_t n = 0;
    for (const auto& [host, event] : logged_) {
      if (event.type_name() == type) {
        ++n;
      }
    }
    return n;
  }

  Scheduler scheduler_;
  HostRegistry registry_;
  Transport transport_;
  SchemaRegistry schemas_;
  std::unique_ptr<BiddingPlatform> platform_;
  std::vector<std::pair<HostId, Event>> logged_;
};

TEST_F(BidsimTest, TopologyMatchesConfig) {
  EXPECT_EQ(platform_->bid_servers().size(), 4u);
  EXPECT_EQ(platform_->ad_servers().size(), 2u);
  EXPECT_EQ(platform_->presentation_servers().size(), 2u);
  EXPECT_EQ(registry_.Get(platform_->bid_servers()[0]).service,
            "BidServers");
  EXPECT_EQ(registry_.Get(platform_->bid_servers()[0]).datacenter, "DC1");
  EXPECT_EQ(registry_.Get(platform_->profile_store_host()).service,
            "ProfileStore");
  EXPECT_EQ(platform_->line_items().size(), 12u);
  EXPECT_EQ(platform_->exchanges().size(), 4u);
}

TEST_F(BidsimTest, PipelineEmitsEventsAtTheRightHosts) {
  platform_->SubmitBidRequest(MakeRequest(1, 1, 1000));
  scheduler_.RunUntil(10 * kMicrosPerSecond);

  EXPECT_EQ(platform_->stats().requests, 1u);
  EXPECT_GE(CountEvents(kExclusionEvent) + CountEvents(kAuctionEvent), 1u);

  std::set<std::string> services_by_type[3];
  for (const auto& [host, event] : logged_) {
    const std::string& service = registry_.Get(host).service;
    if (event.type_name() == kBidEvent) {
      EXPECT_EQ(service, "BidServers");
    } else if (event.type_name() == kAuctionEvent ||
               event.type_name() == kExclusionEvent) {
      EXPECT_EQ(service, "AdServers");
    } else if (event.type_name() == kImpressionEvent ||
               event.type_name() == kClickEvent) {
      EXPECT_EQ(service, "PresentationServers");
    } else if (event.type_name() == kProfileUpdateEvent) {
      EXPECT_EQ(service, "ProfileStore");
    }
  }
}

TEST_F(BidsimTest, EventsOfOneRequestShareTheRequestId) {
  platform_->SubmitBidRequest(MakeRequest(9, 2, 1000));
  scheduler_.RunUntil(10 * kMicrosPerSecond);
  std::set<RequestId> rids;
  for (const auto& [host, event] : logged_) {
    rids.insert(event.request_id());
  }
  EXPECT_EQ(rids.size(), 1u);
}

TEST_F(BidsimTest, RequestLatencyWithinSlo) {
  for (int i = 0; i < 200; ++i) {
    platform_->SubmitBidRequest(
        MakeRequest(static_cast<UserId>(i), (i % 4) + 1,
                    1000 + i * 1000));
  }
  scheduler_.RunUntil(10 * kMicrosPerSecond);
  ASSERT_EQ(platform_->request_latency_us().count(), 200u);
  // Two intra-DC hops (~500us) + ~1ms processing; well under the 20ms SLO.
  EXPECT_LT(platform_->request_latency_us().p99(), 20'000);
  EXPECT_GT(platform_->request_latency_us().mean(), 500.0);
}

TEST_F(BidsimTest, InactiveExchangeProducesNoTraffic) {
  platform_->exchanges()[0].active_from = 100 * kMicrosPerSecond;
  platform_->SubmitBidRequest(MakeRequest(1, 1, 1000));  // before activation
  scheduler_.RunUntil(2 * kMicrosPerSecond);
  EXPECT_EQ(platform_->stats().requests, 0u);
  platform_->SubmitBidRequest(
      MakeRequest(1, 1, 101 * kMicrosPerSecond));  // after
  scheduler_.RunUntil(102 * kMicrosPerSecond);
  EXPECT_EQ(platform_->stats().requests, 1u);
}

TEST_F(BidsimTest, ExclusionReasonsAreMeaningful) {
  // A line item targeting only exchange 1 must be excluded with
  // exchange_mismatch on exchange-2 traffic.
  LineItem narrow;
  narrow.id = 9999;
  narrow.campaign_id = 99;
  narrow.advisory_bid_price = 2.0;
  narrow.exchanges = {1};
  platform_->AddLineItem(narrow);
  platform_->SubmitBidRequest(MakeRequest(1, 2, 1000));
  scheduler_.RunUntil(5 * kMicrosPerSecond);
  bool found = false;
  for (const auto& [host, event] : logged_) {
    if (event.type_name() == kExclusionEvent &&
        event.GetField("line_item_id") == Value(int64_t{9999})) {
      EXPECT_EQ(event.GetField("reason"), Value(kExclExchange));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(BidsimTest, CannibalizationDynamics) {
  // Two line items with identical (open) targeting; A's advisory price is
  // far above B's, so A wins every auction both enter (Section 8.5).
  for (LineItem& item : platform_->line_items()) {
    item.active = false;  // isolate the pair
  }
  LineItem a;
  a.id = 501;
  a.campaign_id = 50;
  a.advisory_bid_price = 5.0;
  LineItem b;
  b.id = 502;
  b.campaign_id = 50;
  b.advisory_bid_price = 1.0;
  platform_->AddLineItem(a);
  platform_->AddLineItem(b);

  for (int i = 0; i < 100; ++i) {
    platform_->SubmitBidRequest(MakeRequest(static_cast<UserId>(i),
                                            (i % 4) + 1, 1000 + i * 2000));
  }
  scheduler_.RunUntil(10 * kMicrosPerSecond);
  size_t a_wins = 0;
  size_t b_wins = 0;
  for (const auto& [host, event] : logged_) {
    if (event.type_name() != kAuctionEvent) {
      continue;
    }
    const Value winner = event.GetField("winner_line_item_id");
    if (winner == Value(int64_t{501})) {
      ++a_wins;
    }
    if (winner == Value(int64_t{502})) {
      ++b_wins;
    }
  }
  EXPECT_GT(a_wins, 50u);
  EXPECT_EQ(b_wins, 0u);  // fully cannibalized
}

TEST_F(BidsimTest, FrequencyCapExcludesAfterServes) {
  // Force a single capped line item and drive repeated wins for one user.
  for (LineItem& item : platform_->line_items()) {
    item.active = false;
  }
  LineItem capped;
  capped.id = 700;
  capped.campaign_id = 70;
  capped.advisory_bid_price = 4.0;
  capped.frequency_cap_per_day = 1;
  platform_->AddLineItem(capped);

  // Serve once via the profile store directly, then check filtering.
  platform_->profile_store().RecordServe(42, 700, 1000);
  platform_->SubmitBidRequest(MakeRequest(42, 1, 2000));
  scheduler_.RunUntil(5 * kMicrosPerSecond);
  bool excluded_for_cap = false;
  for (const auto& [host, event] : logged_) {
    if (event.type_name() == kExclusionEvent &&
        event.GetField("line_item_id") == Value(int64_t{700})) {
      excluded_for_cap =
          event.GetField("reason") == Value(kExclFrequencyCap);
    }
  }
  EXPECT_TRUE(excluded_for_cap);
  EXPECT_EQ(platform_->stats().no_bids, 1u);
}

TEST_F(BidsimTest, ProfileUpdateLossInjection) {
  ProfileStore lossy(/*update_loss_rate=*/0.5, /*seed=*/3);
  int losses = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!lossy.RecordServe(1, 1, 1000)) {
      ++losses;
    }
  }
  EXPECT_NEAR(losses, 500, 60);
  // True count advances regardless; recorded lags by the losses.
  EXPECT_EQ(lossy.TrueServeCount(1, 1, 1000), 1000);
  EXPECT_EQ(lossy.RecordedServeCount(1, 1, 1000), 1000 - losses);
  // Day rollover resets counts.
  EXPECT_EQ(lossy.TrueServeCount(1, 1, 1000 + kMicrosPerDay), 0);
}

TEST_F(BidsimTest, HumanTrafficIsMostlySingleBatchPerUser) {
  WorkloadDriver driver(&scheduler_, platform_.get(), 11);
  HumanTrafficConfig humans;
  humans.users = 500;
  humans.horizon = 60 * kMicrosPerSecond;
  driver.ScheduleHumanTraffic(humans);
  scheduler_.RunUntil(70 * kMicrosPerSecond);
  EXPECT_GT(driver.requests_issued(), 500u);    // >= 1 slot per page view
  EXPECT_LT(driver.requests_issued(), 500 * 9); // bounded fan-out
}

TEST_F(BidsimTest, BotIssuesLargeBatches) {
  WorkloadDriver driver(&scheduler_, platform_.get(), 12);
  BotConfig bot;
  bot.user_id = 666;
  bot.requests_per_batch = 50;
  bot.batch_interval = 10 * kMicrosPerSecond;
  bot.stop = 30 * kMicrosPerSecond;
  driver.ScheduleBot(bot);
  scheduler_.RunUntil(40 * kMicrosPerSecond);
  EXPECT_EQ(driver.requests_issued(), 150u);  // 3 batches of 50
  EXPECT_EQ(platform_->stats().requests, 150u);
}

TEST_F(BidsimTest, PoissonLoadHitsTargetRate) {
  WorkloadDriver driver(&scheduler_, platform_.get(), 13);
  PoissonLoadConfig load;
  load.requests_per_second = 500;
  load.duration = 10 * kMicrosPerSecond;
  driver.SchedulePoissonLoad(load);
  scheduler_.RunUntil(12 * kMicrosPerSecond);
  EXPECT_NEAR(static_cast<double>(driver.requests_issued()), 5000.0, 300.0);
}

TEST_F(BidsimTest, AppCpuChargedToMeters) {
  platform_->SubmitBidRequest(MakeRequest(1, 1, 1000));
  scheduler_.RunUntil(5 * kMicrosPerSecond);
  int64_t total_app = 0;
  for (size_t i = 0; i < registry_.size(); ++i) {
    total_app += registry_.meter(static_cast<HostId>(i)).app_ns();
  }
  EXPECT_GT(total_app, 0);
}

}  // namespace
}  // namespace scrub
