// Property tests: ScrubCentral's windowed grouped aggregation must agree
// with a brute-force reference computation over the same random event
// stream, across a sweep of window sizes, group cardinalities and batch
// arrival orders.

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "src/central/central.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/event/wire.h"
#include "src/query/analyzer.h"

namespace scrub {
namespace {

struct PropertyParams {
  TimeMicros window = kMicrosPerSecond;
  int64_t users = 10;
  int events = 2000;
  int batches = 7;   // arrival split
  uint64_t seed = 1;
};

class CentralPropertyTest
    : public ::testing::TestWithParam<PropertyParams> {
 protected:
  CentralPropertyTest() {
    schema_ = *EventSchema::Builder("bid")
                   .AddField("user_id", FieldType::kLong)
                   .AddField("price", FieldType::kDouble)
                   .Build();
    EXPECT_TRUE(registry_.Register(schema_).ok());
  }

  SchemaRegistry registry_;
  SchemaPtr schema_;
};

TEST_P(CentralPropertyTest, MatchesBruteForceReference) {
  const PropertyParams p = GetParam();
  Rng rng(p.seed);

  // Random events across a 10-second span.
  std::vector<Event> events;
  struct Ref {
    int64_t count = 0;
    double sum = 0;
    double min = 1e18;
    double max = -1e18;
  };
  std::map<std::pair<TimeMicros, int64_t>, Ref> reference;
  for (int i = 0; i < p.events; ++i) {
    const TimeMicros ts =
        static_cast<TimeMicros>(rng.NextBelow(10 * kMicrosPerSecond));
    const int64_t user = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(p.users)));
    const double price = 0.25 + rng.NextDouble() * 9.5;
    Event e(schema_, rng.NextUint64(), ts);
    e.SetField(0, Value(user));
    e.SetField(1, Value(price));
    events.push_back(std::move(e));

    Ref& ref = reference[{(ts / p.window) * p.window, user}];
    ++ref.count;
    ref.sum += price;
    ref.min = std::min(ref.min, price);
    ref.max = std::max(ref.max, price);
  }

  // Query with every exact aggregate.
  const std::string text = StrFormat(
      "SELECT bid.user_id, COUNT(*), SUM(bid.price), AVG(bid.price), "
      "MIN(bid.price), MAX(bid.price) FROM bid GROUP BY bid.user_id "
      "WINDOW %lld us DURATION 10 s;",
      static_cast<long long>(p.window));
  Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  Result<QueryPlan> plan = PlanQuery(*aq, 1, 0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  CentralPlan central_plan = plan->central;
  central_plan.hosts_targeted = 1;
  central_plan.hosts_sampled = 1;

  ScrubCentral central(&registry_);
  std::map<std::pair<TimeMicros, int64_t>, ResultRow> rows;
  ASSERT_TRUE(central
                  .InstallQuery(central_plan,
                                [&rows](const ResultRow& row) {
                                  rows[{row.window_start,
                                        row.values[0].AsInt()}] = row;
                                })
                  .ok());

  // Deliver in `batches` chunks, each from a different "host".
  const size_t chunk = events.size() / static_cast<size_t>(p.batches) + 1;
  for (int b = 0; b < p.batches; ++b) {
    const size_t begin = static_cast<size_t>(b) * chunk;
    if (begin >= events.size()) {
      break;
    }
    const size_t end = std::min(events.size(), begin + chunk);
    std::vector<Event> slice(events.begin() + static_cast<long>(begin),
                             events.begin() + static_cast<long>(end));
    EventBatch batch;
    batch.query_id = central_plan.query_id;
    batch.host = b;
    batch.event_count = slice.size();
    batch.payload = EncodeBatch(slice);
    ASSERT_TRUE(central.IngestBatch(batch, 0).ok());
  }
  central.OnTick(60 * kMicrosPerSecond);

  ASSERT_EQ(rows.size(), reference.size());
  for (const auto& [key, ref] : reference) {
    const auto it = rows.find(key);
    ASSERT_NE(it, rows.end())
        << "missing window=" << key.first << " user=" << key.second;
    const ResultRow& row = it->second;
    EXPECT_EQ(row.values[1], Value(ref.count));
    EXPECT_NEAR(row.values[2].AsNumber(), ref.sum, 1e-9);
    EXPECT_NEAR(row.values[3].AsNumber(),
                ref.sum / static_cast<double>(ref.count), 1e-9);
    EXPECT_NEAR(row.values[4].AsNumber(), ref.min, 1e-12);
    EXPECT_NEAR(row.values[5].AsNumber(), ref.max, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CentralPropertyTest,
    ::testing::Values(
        PropertyParams{kMicrosPerSecond, 10, 2000, 7, 1},
        PropertyParams{kMicrosPerSecond, 1, 500, 1, 2},     // single group
        PropertyParams{kMicrosPerSecond, 500, 4000, 13, 3}, // many groups
        PropertyParams{10 * kMicrosPerSecond, 25, 3000, 4, 4},  // one window
        PropertyParams{250 * kMicrosPerMilli, 5, 2500, 9, 5},   // many windows
        PropertyParams{kMicrosPerSecond, 50, 1, 1, 6},      // single event
        PropertyParams{2 * kMicrosPerSecond, 100, 5000, 2, 7}));

}  // namespace
}  // namespace scrub
