// Tests for the sharded ScrubCentral deployment: result parity with a
// single instance (the defining property), join colocation by request id,
// shard balance, and the coordinator-level Eq. 1-3 estimation for sampled
// plans.

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "src/central/sharded_central.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/event/wire.h"
#include "src/query/analyzer.h"

namespace scrub {
namespace {

class ShardedCentralTest : public ::testing::Test {
 protected:
  ShardedCentralTest() {
    bid_schema_ = *EventSchema::Builder("bid")
                       .AddField("user_id", FieldType::kLong)
                       .AddField("price", FieldType::kDouble)
                       .Build();
    imp_schema_ = *EventSchema::Builder("impression")
                       .AddField("line_item_id", FieldType::kLong)
                       .AddField("cost", FieldType::kDouble)
                       .Build();
    EXPECT_TRUE(registry_.Register(bid_schema_).ok());
    EXPECT_TRUE(registry_.Register(imp_schema_).ok());
  }

  CentralPlan PlanFor(std::string_view text, QueryId id) {
    AnalyzerOptions options;
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_, options);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    Result<QueryPlan> plan = PlanQuery(*aq, id, 0);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    CentralPlan central = plan->central;
    central.hosts_targeted = 1;
    central.hosts_sampled = 1;
    return central;
  }

  std::vector<Event> RandomBids(int n, uint64_t seed, int64_t users) {
    Rng rng(seed);
    std::vector<Event> events;
    events.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event e(bid_schema_, rng.NextUint64(),
              100 + static_cast<TimeMicros>(rng.NextBelow(8'000'000)));
      e.SetField(0, Value(static_cast<int64_t>(
                        rng.NextBelow(static_cast<uint64_t>(users)))));
      e.SetField(1, Value(rng.NextDouble() * 5));
      events.push_back(std::move(e));
    }
    return events;
  }

  static EventBatch Pack(QueryId qid, const std::vector<Event>& events) {
    EventBatch batch;
    batch.query_id = qid;
    batch.host = 0;
    batch.event_count = events.size();
    batch.payload = EncodeBatch(events);
    return batch;
  }

  // Canonical rendering of a row set for parity comparison.
  static std::map<std::string, std::string> Render(
      const std::vector<ResultRow>& rows) {
    std::map<std::string, std::string> out;
    for (const ResultRow& row : rows) {
      std::string key = StrFormat("%lld|", static_cast<long long>(
                                               row.window_start));
      key += row.values[0].ToString();
      std::string value;
      for (size_t i = 1; i < row.values.size(); ++i) {
        value += row.values[i].ToString() + "|";
      }
      out[key] = value;
    }
    return out;
  }

  SchemaRegistry registry_;
  SchemaPtr bid_schema_;
  SchemaPtr imp_schema_;
};

TEST_F(ShardedCentralTest, ExactParityWithSingleInstance) {
  const char* query =
      "SELECT bid.user_id, COUNT(*), SUM(bid.price), AVG(bid.price), "
      "MIN(bid.price), MAX(bid.price) FROM bid GROUP BY bid.user_id "
      "WINDOW 2 s DURATION 10 s;";
  const std::vector<Event> events = RandomBids(5000, 31, 40);

  // Single instance.
  ScrubCentral single(&registry_);
  const CentralPlan plan1 = PlanFor(query, 1);
  std::vector<ResultRow> single_rows;
  ASSERT_TRUE(single
                  .InstallQuery(plan1, [&](const ResultRow& row) {
                    single_rows.push_back(row);
                  })
                  .ok());
  ASSERT_TRUE(single.IngestBatch(Pack(plan1.query_id, events), 0).ok());
  single.OnTick(60 * kMicrosPerSecond);

  // Four shards.
  ShardedCentral sharded(&registry_, 4);
  const CentralPlan plan2 = PlanFor(query, 2);
  std::vector<ResultRow> sharded_rows;
  ASSERT_TRUE(sharded
                  .InstallQuery(plan2, [&](const ResultRow& row) {
                    sharded_rows.push_back(row);
                  })
                  .ok());
  ASSERT_TRUE(sharded.IngestBatch(Pack(plan2.query_id, events), 0).ok());
  sharded.OnTick(60 * kMicrosPerSecond);

  EXPECT_EQ(Render(single_rows), Render(sharded_rows));
  EXPECT_FALSE(single_rows.empty());
}

TEST_F(ShardedCentralTest, JoinPartnersColocate) {
  const char* query =
      "SELECT impression.line_item_id, COUNT(*) FROM bid, impression "
      "GROUP BY impression.line_item_id WINDOW 10 s DURATION 10 s;";
  // Build matched bid/impression pairs on shared request ids.
  Rng rng(7);
  std::vector<Event> events;
  for (int i = 0; i < 600; ++i) {
    const RequestId rid = rng.NextUint64();
    Event bid(bid_schema_, rid, 100 + i);
    bid.SetField(0, Value(int64_t{1}));
    bid.SetField(1, Value(1.0));
    events.push_back(std::move(bid));
    Event imp(imp_schema_, rid, 200 + i);
    imp.SetField(0, Value(static_cast<int64_t>(i % 7)));
    imp.SetField(1, Value(0.001));
    events.push_back(std::move(imp));
  }
  ShardedCentral sharded(&registry_, 3);
  const CentralPlan plan = PlanFor(query, 9);
  uint64_t total = 0;
  ASSERT_TRUE(sharded
                  .InstallQuery(plan, [&](const ResultRow& row) {
                    total += static_cast<uint64_t>(row.values[1].AsInt());
                  })
                  .ok());
  ASSERT_TRUE(sharded.IngestBatch(Pack(plan.query_id, events), 0).ok());
  sharded.OnTick(60 * kMicrosPerSecond);
  // Every pair joined despite the sharding.
  EXPECT_EQ(total, 600u);
}

TEST_F(ShardedCentralTest, SketchesMergeAcrossShards) {
  const char* query =
      "SELECT COUNT_DISTINCT(bid.user_id), TOPK(3, bid.user_id) FROM bid "
      "WINDOW 10 s DURATION 10 s;";
  // 2000 distinct users plus one mega-user.
  std::vector<Event> events;
  Rng rng(5);
  for (int64_t u = 0; u < 2000; ++u) {
    Event e(bid_schema_, rng.NextUint64(), 100);
    e.SetField(0, Value(u));
    e.SetField(1, Value(1.0));
    events.push_back(std::move(e));
  }
  for (int i = 0; i < 500; ++i) {
    Event e(bid_schema_, rng.NextUint64(), 100);
    e.SetField(0, Value(int64_t{424242}));
    e.SetField(1, Value(1.0));
    events.push_back(std::move(e));
  }
  ShardedCentral sharded(&registry_, 4);
  const CentralPlan plan = PlanFor(query, 3);
  std::vector<ResultRow> rows;
  ASSERT_TRUE(sharded
                  .InstallQuery(plan, [&](const ResultRow& row) {
                    rows.push_back(row);
                  })
                  .ok());
  ASSERT_TRUE(sharded.IngestBatch(Pack(plan.query_id, events), 0).ok());
  sharded.OnTick(60 * kMicrosPerSecond);
  ASSERT_EQ(rows.size(), 1u);
  // 2001 distinct users, ~1% sketch error.
  EXPECT_NEAR(static_cast<double>(rows[0].values[0].AsInt()), 2001.0, 80.0);
  ASSERT_TRUE(rows[0].values[1].is_list());
  ASSERT_FALSE(rows[0].values[1].AsList().empty());
  // The mega-user tops the merged summary.
  EXPECT_NE(rows[0].values[1].AsList()[0].AsString().find("424242:"),
            std::string::npos);
}

TEST_F(ShardedCentralTest, LoadSpreadsAcrossShards) {
  ShardedCentral sharded(&registry_, 4);
  const CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 10 s DURATION 10 s;", 4);
  ASSERT_TRUE(sharded.InstallQuery(plan, [](const ResultRow&) {}).ok());
  const std::vector<Event> events = RandomBids(4000, 11, 100);
  ASSERT_TRUE(sharded.IngestBatch(Pack(plan.query_id, events), 0).ok());
  const std::vector<uint64_t> loads = sharded.ShardLoads(plan.query_id);
  ASSERT_EQ(loads.size(), 4u);
  uint64_t total = 0;
  for (const uint64_t l : loads) {
    total += l;
    EXPECT_GT(l, 700u);   // roughly balanced (1000 expected per shard)
    EXPECT_LT(l, 1300u);
  }
  EXPECT_EQ(total, 4000u);
}

TEST_F(ShardedCentralTest, AcceptsSampledPlansOfBothKinds) {
  // Sampled plans shard: the shard pipelines stop at WindowClose and the
  // coordinator's Finalize runs the Eq. 1-3 estimator over globally merged
  // counters, so neither sampling flavor is refused anymore.
  ShardedCentral sharded(&registry_, 2);
  const CentralPlan host_sampled = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 10 s DURATION 10 s "
      "SAMPLE HOSTS 50%;",
      11);
  const CentralPlan event_sampled = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 10 s DURATION 10 s "
      "SAMPLE EVENTS 25%;",
      12);
  for (const CentralPlan* plan : {&host_sampled, &event_sampled}) {
    const Status status =
        sharded.InstallQuery(*plan, [](const ResultRow&) {});
    EXPECT_TRUE(status.ok()) << status.ToString();
    EXPECT_TRUE(sharded.HasQuery(plan->query_id));
    EXPECT_TRUE(sharded.shard(0).HasQuery(plan->query_id));
    EXPECT_TRUE(sharded.shard(1).HasQuery(plan->query_id));
    EXPECT_TRUE(sharded
                    .IngestBatch(Pack(plan->query_id, RandomBids(10, 1, 5)), 0)
                    .ok());
  }
}

TEST_F(ShardedCentralTest, SampledCountEstimatesPopulationFromCounters) {
  // One host reports 50 of 100 seen events (SAMPLE EVENTS 50%). The
  // coordinator's Finalize must scale the merged readings by the global
  // M_i / m_i: COUNT comes back as exactly 100 — even though the 50 shipped
  // events were split across shards — with a zero bound (all-1.0 readings,
  // no unsampled-host stage, so Eq. 3 variance is 0).
  ShardedCentral sharded(&registry_, 2);
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 10 s DURATION 10 s "
      "SAMPLE EVENTS 50%;",
      7);
  std::vector<ResultRow> rows;
  ASSERT_TRUE(sharded
                  .InstallQuery(plan,
                                [&](const ResultRow& row) {
                                  rows.push_back(row);
                                })
                  .ok());
  EventBatch batch = Pack(plan.query_id, RandomBids(50, 19, 10));
  WindowCounter counter;
  counter.window_start = plan.start_time;
  counter.seen = 100;
  counter.sampled = 50;
  batch.counters.push_back(counter);
  ASSERT_TRUE(sharded.IngestBatch(batch, 0).ok());
  sharded.OnTick(60 * kMicrosPerSecond);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].values[0].AsNumber(), 100.0);
  ASSERT_EQ(rows[0].error_bounds.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].error_bounds[0], 0.0);
  EXPECT_DOUBLE_EQ(rows[0].completeness, 1.0);
}

TEST_F(ShardedCentralTest, SampledGroupedCountsCarryPerGroupBounds) {
  // Grouped + sampled: each group's estimate is bounded per group at the
  // coordinator. With several hosts sampling at 50%, the per-group COUNT
  // estimates must bracket the true per-group populations within the
  // reported Eq. 2-3 bound, and groups the sample missed entirely still
  // finalize cleanly on the groups it did see.
  constexpr int kHosts = 6;
  constexpr int kPerHost = 200;  // events seen per host
  ShardedCentral sharded(&registry_, 3);
  CentralPlan plan = PlanFor(
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "WINDOW 10 s DURATION 10 s SAMPLE EVENTS 50%;",
      8);
  plan.hosts_targeted = kHosts;
  plan.hosts_sampled = kHosts;
  std::vector<ResultRow> rows;
  ASSERT_TRUE(sharded
                  .InstallQuery(plan,
                                [&](const ResultRow& row) {
                                  rows.push_back(row);
                                })
                  .ok());
  // Per host: kPerHost events over 4 users, every second event "sampled".
  std::map<int64_t, uint64_t> truth;  // user -> fleet-wide population
  Rng rng(23);
  for (int h = 0; h < kHosts; ++h) {
    std::vector<Event> shipped;
    uint64_t sampled = 0;
    for (int i = 0; i < kPerHost; ++i) {
      const int64_t user = static_cast<int64_t>(rng.NextBelow(4));
      ++truth[user];
      if (i % 2 == 0) {
        Event e(bid_schema_, rng.NextUint64(), 100 + i);
        e.SetField(0, Value(user));
        e.SetField(1, Value(1.0));
        shipped.push_back(std::move(e));
        ++sampled;
      }
    }
    EventBatch batch = Pack(plan.query_id, shipped);
    batch.host = static_cast<HostId>(h);
    WindowCounter counter;
    counter.window_start = plan.start_time;
    counter.seen = kPerHost;
    counter.sampled = sampled;
    batch.counters.push_back(counter);
    ASSERT_TRUE(sharded.IngestBatch(batch, 0).ok());
  }
  sharded.OnTick(60 * kMicrosPerSecond);
  ASSERT_EQ(rows.size(), truth.size());
  for (const ResultRow& row : rows) {
    const int64_t user = row.values[0].AsInt();
    const double estimate = row.values[1].AsNumber();
    const double bound = row.error_bounds[1];
    EXPECT_GT(bound, 0.0);
    EXPECT_LE(std::abs(estimate - static_cast<double>(truth[user])), bound)
        << "user " << user << ": estimate " << estimate << " truth "
        << truth[user] << " bound " << bound;
  }
}

TEST_F(ShardedCentralTest, RawModeShardsAndMatchesSingleInstance) {
  // Raw (non-aggregate) queries shard trivially: each shard emits its own
  // matching rows, the coordinator forwards them in shard-index order. The
  // row *set* must match a single instance exactly.
  const char* query =
      "SELECT bid.user_id, bid.price FROM bid WHERE bid.price > 4.0 "
      "WINDOW 10 s DURATION 10 s;";
  const std::vector<Event> events = RandomBids(2000, 17, 50);

  auto collect = [&](auto& central, QueryId qid) {
    const CentralPlan plan = PlanFor(query, qid);
    std::vector<std::string> rows;
    EXPECT_TRUE(central
                    .InstallQuery(plan, [&](const ResultRow& row) {
                      rows.push_back(row.ToString());
                    })
                    .ok());
    EXPECT_TRUE(central.IngestBatch(Pack(plan.query_id, events), 0).ok());
    central.OnTick(60 * kMicrosPerSecond);
    std::sort(rows.begin(), rows.end());
    return rows;
  };

  ScrubCentral single(&registry_);
  ShardedCentral sharded(&registry_, 4, CentralConfig{}, /*workers=*/2);
  const std::vector<std::string> single_rows = collect(single, 21);
  const std::vector<std::string> sharded_rows = collect(sharded, 22);
  EXPECT_FALSE(single_rows.empty());
  EXPECT_EQ(sharded_rows, single_rows);
}

TEST_F(ShardedCentralTest, RemoveQueryFlushesPendingWindows) {
  ShardedCentral sharded(&registry_, 2);
  const CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 60 s DURATION 60 s;", 5);
  uint64_t total = 0;
  ASSERT_TRUE(sharded
                  .InstallQuery(plan, [&](const ResultRow& row) {
                    total += static_cast<uint64_t>(row.values[0].AsInt());
                  })
                  .ok());
  const std::vector<Event> events = RandomBids(100, 3, 10);
  ASSERT_TRUE(sharded.IngestBatch(Pack(plan.query_id, events), 0).ok());
  sharded.RemoveQuery(plan.query_id);
  EXPECT_EQ(total, 100u);
  EXPECT_FALSE(sharded.HasQuery(plan.query_id));
}

}  // namespace
}  // namespace scrub
