// Parameterized sweep over the query-language surface: each case is a query
// text plus whether it must be accepted by parse+analyze against the bidsim
// schemas. Keeps the full grammar honest as the language evolves.

#include <gtest/gtest.h>

#include "src/bidsim/schemas.h"
#include "src/query/analyzer.h"

namespace scrub {
namespace {

struct SurfaceCase {
  const char* text;
  bool ok;
};

class QuerySurfaceTest : public ::testing::TestWithParam<SurfaceCase> {
 protected:
  QuerySurfaceTest() { (void)RegisterBidsimSchemas(&registry_); }
  SchemaRegistry registry_;
};

TEST_P(QuerySurfaceTest, AcceptsOrRejects) {
  const SurfaceCase& c = GetParam();
  AnalyzerOptions options;
  options.max_duration_micros = 24 * kMicrosPerHour;
  Result<AnalyzedQuery> aq = ParseAndAnalyze(c.text, registry_, options);
  if (c.ok) {
    EXPECT_TRUE(aq.ok()) << c.text << "\n  -> " << aq.status().ToString();
  } else {
    EXPECT_FALSE(aq.ok()) << c.text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Valid, QuerySurfaceTest,
    ::testing::Values(
        // Plain shapes.
        SurfaceCase{"SELECT COUNT(*) FROM bid;", true},
        SurfaceCase{"SELECT bid.user_id, bid.bid_price FROM bid;", true},
        SurfaceCase{"select count(*) from bid;", true},  // case-insensitive
        SurfaceCase{"SELECT COUNT(*) FROM bid", true},   // semicolon optional
        // Every aggregate.
        SurfaceCase{"SELECT COUNT(bid.user_id) FROM bid;", true},
        SurfaceCase{"SELECT SUM(bid.bid_price) FROM bid;", true},
        SurfaceCase{"SELECT AVG(bid.bid_price) FROM bid;", true},
        SurfaceCase{"SELECT MIN(bid.city), MAX(bid.city) FROM bid;", true},
        SurfaceCase{"SELECT COUNT_DISTINCT(bid.city) FROM bid;", true},
        SurfaceCase{"SELECT TOPK(3, bid.publisher_id) FROM bid;", true},
        SurfaceCase{"SELECT TOP_K(3, bid.publisher_id) FROM bid;", true},
        // Expressions.
        SurfaceCase{"SELECT 1000 * AVG(impression.cost) FROM impression;",
                    true},
        SurfaceCase{"SELECT COUNT(*) + 1, 2 * COUNT(*) FROM bid;", true},
        SurfaceCase{"SELECT -(AVG(bid.bid_price)) FROM bid;", true},
        SurfaceCase{
            "SELECT COUNT(*) FROM bid WHERE NOT (bid.country = 'US' OR "
            "bid.country = 'CA');",
            true},
        SurfaceCase{
            "SELECT COUNT(*) FROM bid WHERE bid.bid_price * 1.2 >= 2 AND "
            "bid.exchange_id IN (1, 2, 3);",
            true},
        SurfaceCase{
            "SELECT COUNT(*) FROM bid WHERE bid.city != 'tokyo' AND "
            "bid.bid_price <= 10 AND bid.user_id <> 0;",
            true},
        // Lists and nested objects.
        SurfaceCase{
            "SELECT COUNT(*) FROM auction WHERE auction.line_item_ids "
            "CONTAINS 1001;",
            true},
        SurfaceCase{"SELECT COUNT(*) FROM bid WHERE bid.device.os = 'ios';",
                    true},
        SurfaceCase{"SELECT device.os, COUNT(*) FROM bid GROUP BY "
                    "device.os;",
                    true},
        // System fields.
        SurfaceCase{
            "SELECT COUNT(*) FROM bid WHERE __timestamp > 0 AND "
            "__request_id != 0;",
            true},
        SurfaceCase{"SELECT MAX(bid.__timestamp) FROM bid;", true},
        // Join shapes.
        SurfaceCase{"SELECT COUNT(*) FROM bid, auction;", true},
        SurfaceCase{
            "SELECT impression.line_item_id, COUNT(*), "
            "AVG(auction.winning_price) FROM auction, impression "
            "GROUP BY impression.line_item_id;",
            true},
        SurfaceCase{
            "SELECT COUNT(*) FROM bid, exclusion WHERE "
            "bid.bid_price > 1.0 AND exclusion.reason = 'budget_exhausted';",
            true},
        // Targets / windows / span / sampling.
        SurfaceCase{
            "SELECT COUNT(*) FROM bid @[SERVICE IN BidServers AND "
            "DATACENTER = DC1];",
            true},
        SurfaceCase{"SELECT COUNT(*) FROM bid @[SERVERS IN (a, b, c)];",
                    true},
        SurfaceCase{"SELECT COUNT(*) FROM bid @[SERVER = 'bid-dc1-00'];",
                    true},
        SurfaceCase{
            "SELECT COUNT(*) FROM bid WINDOW 500 ms DURATION 90 s;", true},
        SurfaceCase{"SELECT COUNT(*) FROM bid WINDOW 1 h DURATION 2 h;",
                    true},
        SurfaceCase{
            "SELECT COUNT(*) FROM bid WINDOW 10 s SLIDE 2 s DURATION 1 m;",
            true},
        SurfaceCase{
            "SELECT COUNT(*) FROM bid START 30 s DURATION 2 m "
            "SAMPLE HOSTS 12.5% SAMPLE EVENTS 3%;",
            true},
        SurfaceCase{"SELECT COUNT(*) AS n, AVG(bid.bid_price) AS p FROM bid;",
                    true},
        SurfaceCase{"SELECT COUNT(*) FROM bid -- trailing comment\n;",
                    true}));

INSTANTIATE_TEST_SUITE_P(
    Invalid, QuerySurfaceTest,
    ::testing::Values(
        // Structure.
        SurfaceCase{"", false},
        SurfaceCase{"SELECT FROM bid;", false},
        SurfaceCase{"SELECT COUNT(*) bid;", false},
        SurfaceCase{"SELECT COUNT(*) FROM;", false},
        SurfaceCase{"FROM bid SELECT COUNT(*);", false},
        SurfaceCase{"SELECT * FROM bid;", false},
        SurfaceCase{"SELECT COUNT(*) FROM bid extra;", false},
        // Unknown names.
        SurfaceCase{"SELECT COUNT(*) FROM ghost;", false},
        SurfaceCase{"SELECT bid.ghost FROM bid;", false},
        SurfaceCase{"SELECT ghost.user_id FROM bid;", false},
        SurfaceCase{"SELECT NOSUCH(bid.user_id) FROM bid;", false},
        // Type errors.
        SurfaceCase{"SELECT SUM(bid.city) FROM bid;", false},
        SurfaceCase{"SELECT COUNT(*) FROM bid WHERE bid.city > 3;", false},
        SurfaceCase{"SELECT COUNT(*) FROM bid WHERE bid.user_id;", false},
        SurfaceCase{"SELECT COUNT(*) FROM bid WHERE bid.city AND TRUE;",
                    false},
        SurfaceCase{"SELECT COUNT(*) FROM bid WHERE bid.user_id IN (1, 'x');",
                    false},
        SurfaceCase{
            "SELECT COUNT(*) FROM bid WHERE bid.city CONTAINS 'x';", false},
        SurfaceCase{"SELECT COUNT(*) FROM bid WHERE bid.user_id.os = 1;",
                    false},  // path into a non-object
        // Aggregation placement.
        SurfaceCase{"SELECT bid.user_id, COUNT(*) FROM bid;", false},
        SurfaceCase{"SELECT COUNT(COUNT(*)) FROM bid;", false},
        SurfaceCase{"SELECT COUNT(*) FROM bid WHERE COUNT(*) > 0;", false},
        SurfaceCase{
            "SELECT COUNT(*) FROM bid GROUP BY bid.user_id + 1;", false},
        SurfaceCase{"SELECT TOPK(0, bid.user_id) FROM bid;", false},
        SurfaceCase{"SELECT TOPK(bid.user_id, 3) FROM bid;", false},
        // Join restriction.
        SurfaceCase{
            "SELECT COUNT(*) FROM bid, exclusion WHERE bid.exchange_id = "
            "exclusion.exchange_id;",
            false},
        SurfaceCase{"SELECT COUNT(*) FROM bid, bid;", false},
        SurfaceCase{"SELECT COUNT(*) FROM bid, auction, impression;", false},
        // Windows / span / sampling.
        SurfaceCase{"SELECT COUNT(*) FROM bid WINDOW 0 s;", false},
        SurfaceCase{"SELECT COUNT(*) FROM bid WINDOW 10 fortnights;", false},
        SurfaceCase{"SELECT COUNT(*) FROM bid WINDOW 10 m DURATION 1 m;",
                    false},
        SurfaceCase{"SELECT COUNT(*) FROM bid WINDOW 10 s SLIDE 20 s;",
                    false},
        SurfaceCase{"SELECT COUNT(*) FROM bid WINDOW 10 s SLIDE 4 s;",
                    false},  // not a multiple
        SurfaceCase{"SELECT COUNT(*) FROM bid DURATION 48 h;", false},
        SurfaceCase{"SELECT COUNT(*) FROM bid SAMPLE HOSTS 0%;", false},
        SurfaceCase{"SELECT COUNT(*) FROM bid SAMPLE EVENTS 101%;", false},
        SurfaceCase{"SELECT COUNT(*) FROM bid SAMPLE HOSTS 10;", false},
        SurfaceCase{"SELECT COUNT(*) FROM bid @[];", false},
        SurfaceCase{"SELECT COUNT(*) FROM bid @[HOSTNAME = x];", false}));

}  // namespace
}  // namespace scrub
