// Unit tests for the physical-operator executor: one compiled pipeline
// interpreted against both input representations. The defining property is
// that a row span and a ColumnBatch selection carrying the same logical
// events fold into byte-identical result rows — same values, same bounds,
// same emission order — because every deployment shares this one engine.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/central/executor.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/plan/physical.h"
#include "src/query/analyzer.h"

namespace scrub {
namespace {

std::string RenderRow(const ResultRow& row) {
  std::string out = StrFormat("w%lld %s c=%.17g",
                              static_cast<long long>(row.window_start),
                              row.ToString().c_str(), row.completeness);
  for (const double b : row.error_bounds) {
    out += StrFormat(" b=%.17g", b);
  }
  return out;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    bid_schema_ = *EventSchema::Builder("bid")
                       .AddField("user_id", FieldType::kLong)
                       .AddField("price", FieldType::kDouble)
                       .Build();
    imp_schema_ = *EventSchema::Builder("impression")
                       .AddField("line_item_id", FieldType::kLong)
                       .AddField("cost", FieldType::kDouble)
                       .Build();
    EXPECT_TRUE(registry_.Register(bid_schema_).ok());
    EXPECT_TRUE(registry_.Register(imp_schema_).ok());
  }

  // QueryState wired the way ScrubCentral's InstallQuery wires it, with the
  // sink appending full-precision renderings to `transcript`.
  QueryState StateFor(std::string_view text, QueryId id,
                      std::vector<std::string>* transcript) {
    AnalyzerOptions options;
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_, options);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    Result<QueryPlan> plan = PlanQuery(*aq, id, 0);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    QueryState q;
    q.plan = plan->central;
    q.plan.hosts_targeted = 1;
    q.plan.hosts_sampled = 1;
    q.pipeline = CompilePhysical(q.plan, PipelineRole::kSingleInstance);
    q.sink = [transcript](const ResultRow& row) {
      transcript->push_back(RenderRow(row));
    };
    return q;
  }

  std::vector<Event> RandomBids(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<Event> events;
    for (int i = 0; i < n; ++i) {
      Event e(bid_schema_, rng.NextUint64(),
              100 + static_cast<TimeMicros>(rng.NextBelow(3'000'000)));
      e.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(6))));
      e.SetField(1, Value(rng.NextDouble() * 5));
      events.push_back(std::move(e));
    }
    return events;
  }

  static std::shared_ptr<const ColumnBatch> ToColumns(
      const SchemaPtr& schema, const std::vector<Event>& events) {
    auto batch = std::make_shared<ColumnBatch>(schema);
    batch->Reserve(events.size());
    for (const Event& e : events) {
      batch->AppendEvent(e);
    }
    return batch;
  }

  // Folds chunks into a fresh QueryState, closes every window in start
  // order, and returns the transcript.
  std::vector<std::string> Run(
      std::string_view text,
      const std::vector<std::pair<HostId, InputChunk>>& chunks) {
    std::vector<std::string> transcript;
    QueryState q = StateFor(text, 1, &transcript);
    Executor executor(&registry_, &config_, &meter_);
    for (const auto& [host, chunk] : chunks) {
      executor.Fold(q, host, chunk);
    }
    while (!q.windows.empty()) {
      auto it = q.windows.begin();
      executor.CloseWindow(q, &it->second);
      q.closed_through = it->first;
      q.windows.erase(it);
    }
    EXPECT_FALSE(transcript.empty());
    return transcript;
  }

  SchemaRegistry registry_;
  SchemaPtr bid_schema_;
  SchemaPtr imp_schema_;
  CentralConfig config_;
  CostMeter meter_;
};

TEST_F(ExecutorTest, CompiledPipelineNamesItsOperators) {
  std::vector<std::string> sink;
  const QueryState agg = StateFor(
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "WINDOW 1 s DURATION 4 s;",
      1, &sink);
  const std::string ops = agg.pipeline.ToString();
  EXPECT_NE(ops.find("Decode("), std::string::npos) << ops;
  EXPECT_NE(ops.find("GroupFold("), std::string::npos) << ops;
  EXPECT_NE(ops.find("WindowClose("), std::string::npos) << ops;
  EXPECT_NE(ops.find("Finalize("), std::string::npos) << ops;
  EXPECT_EQ(ops.find("Join("), std::string::npos) << ops;

  const QueryState join = StateFor(
      "SELECT impression.line_item_id, COUNT(*) FROM bid, impression "
      "GROUP BY impression.line_item_id WINDOW 1 s DURATION 4 s;",
      2, &sink);
  EXPECT_NE(join.pipeline.ToString().find("Join("), std::string::npos);

  const QueryState raw = StateFor(
      "SELECT bid.user_id, bid.price FROM bid WINDOW 1 s DURATION 4 s;", 3,
      &sink);
  EXPECT_NE(raw.pipeline.ToString().find("Project("), std::string::npos);
  EXPECT_EQ(raw.pipeline.ToString().find("GroupFold("), std::string::npos);
}

TEST_F(ExecutorTest, RowAndColumnarChunksFoldByteIdentically) {
  const char* query =
      "SELECT bid.user_id, COUNT(*), SUM(bid.price), AVG(bid.price), "
      "MIN(bid.price), MAX(bid.price) FROM bid GROUP BY bid.user_id "
      "WINDOW 1 s DURATION 4 s;";
  const std::vector<Event> events = RandomBids(500, 17);

  const std::vector<std::string> row_transcript =
      Run(query, {{HostId{0}, InputChunk::Rows(events)}});
  const auto batch = ToColumns(bid_schema_, events);
  const std::vector<std::string> col_transcript =
      Run(query, {{HostId{0}, InputChunk::Columns(batch, nullptr, 0)}});
  EXPECT_EQ(col_transcript, row_transcript);
}

TEST_F(ExecutorTest, ColumnarSelectionFoldsOnlySelectedRows) {
  const char* query =
      "SELECT COUNT(*), SUM(bid.price) FROM bid WINDOW 1 s DURATION 4 s;";
  const std::vector<Event> all = RandomBids(300, 23);
  std::vector<Event> evens;
  std::vector<uint32_t> selection;
  for (size_t i = 0; i < all.size(); i += 2) {
    evens.push_back(all[i]);
    selection.push_back(static_cast<uint32_t>(i));
  }

  const std::vector<std::string> row_transcript =
      Run(query, {{HostId{0}, InputChunk::Rows(evens)}});
  const auto batch = ToColumns(bid_schema_, all);
  const std::vector<std::string> col_transcript = Run(
      query,
      {{HostId{0},
        InputChunk::Columns(batch, selection.data(), selection.size())}});
  EXPECT_EQ(col_transcript, row_transcript);
}

TEST_F(ExecutorTest, JoinFoldsBothRepresentationsIdentically) {
  const char* query =
      "SELECT impression.line_item_id, COUNT(*), SUM(bid.price) "
      "FROM bid, impression GROUP BY impression.line_item_id "
      "WINDOW 1 s DURATION 4 s;";
  Rng rng(31);
  std::vector<Event> bids;
  std::vector<Event> imps;
  for (int i = 0; i < 200; ++i) {
    const RequestId rid = rng.NextUint64();
    const TimeMicros ts =
        100 + static_cast<TimeMicros>(rng.NextBelow(3'000'000));
    Event bid(bid_schema_, rid, ts);
    bid.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(6))));
    bid.SetField(1, Value(rng.NextDouble() * 5));
    bids.push_back(std::move(bid));
    // Two of three requests get a matching impression; the rest stay join
    // orphans that a columnar fold must never materialize into Events.
    if (i % 3 != 0) {
      Event imp(imp_schema_, rid, ts);
      imp.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(4))));
      imp.SetField(1, Value(rng.NextDouble()));
      imps.push_back(std::move(imp));
    }
  }

  const std::vector<std::string> row_transcript =
      Run(query, {{HostId{0}, InputChunk::Rows(bids)},
                  {HostId{1}, InputChunk::Rows(imps)}});
  const auto bid_batch = ToColumns(bid_schema_, bids);
  const auto imp_batch = ToColumns(imp_schema_, imps);
  const std::vector<std::string> col_transcript =
      Run(query, {{HostId{0}, InputChunk::Columns(bid_batch, nullptr, 0)},
                  {HostId{1}, InputChunk::Columns(imp_batch, nullptr, 0)}});
  EXPECT_EQ(col_transcript, row_transcript);

  // Mixed representations join too: columnar bids against row impressions.
  const std::vector<std::string> mixed_transcript =
      Run(query, {{HostId{0}, InputChunk::Columns(bid_batch, nullptr, 0)},
                  {HostId{1}, InputChunk::Rows(imps)}});
  EXPECT_EQ(mixed_transcript, row_transcript);
}

}  // namespace
}  // namespace scrub
