// Tests for EXPLAIN and query diagnostics.

#include <gtest/gtest.h>

#include "src/plan/explain.h"
#include "src/scrub/scrub_system.h"

namespace scrub {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() {
    EXPECT_TRUE(registry_
                    .Register(*EventSchema::Builder("bid")
                                   .AddField("user_id", FieldType::kLong)
                                   .AddField("price", FieldType::kDouble)
                                   .AddField("country", FieldType::kString)
                                   .Build())
                    .ok());
    EXPECT_TRUE(registry_
                    .Register(*EventSchema::Builder("impression")
                                   .AddField("line_item_id", FieldType::kLong)
                                   .AddField("cost", FieldType::kDouble)
                                   .Build())
                    .ok());
  }

  SchemaRegistry registry_;
};

TEST_F(ExplainTest, ShowsSelectionAndProjection) {
  const std::string text = ExplainQuery(
      "SELECT bid.user_id, COUNT(*) FROM bid WHERE bid.price > 2.0 "
      "GROUP BY bid.user_id WINDOW 10 s DURATION 60 s;",
      registry_);
  EXPECT_NE(text.find("host plan"), std::string::npos) << text;
  EXPECT_NE(text.find("(bid.price > 2)"), std::string::npos) << text;
  // user_id + price read; country projected away.
  EXPECT_NE(text.find("2 of 3 fields ship"), std::string::npos) << text;
  EXPECT_EQ(text.find("country"), std::string::npos) << text;
  EXPECT_NE(text.find("group by: 1 key(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("COUNT"), std::string::npos) << text;
}

TEST_F(ExplainTest, ShowsJoinAndSketches) {
  const std::string text = ExplainQuery(
      "SELECT COUNT_DISTINCT(bid.user_id), TOPK(5, impression.line_item_id) "
      "FROM bid, impression WINDOW 10 s DURATION 60 s;",
      registry_);
  EXPECT_NE(text.find("join:"), std::string::npos) << text;
  EXPECT_NE(text.find("__request_id"), std::string::npos) << text;
  EXPECT_NE(text.find("HyperLogLog"), std::string::npos) << text;
  EXPECT_NE(text.find("SpaceSaving"), std::string::npos) << text;
}

TEST_F(ExplainTest, ShowsSamplingAndSliding) {
  const std::string text = ExplainQuery(
      "SELECT COUNT(*) FROM bid WINDOW 10 s SLIDE 5 s DURATION 60 s "
      "SAMPLE HOSTS 10% SAMPLE EVENTS 25%;",
      registry_);
  EXPECT_NE(text.find("sliding"), std::string::npos) << text;
  EXPECT_NE(text.find("event sampling: 25%"), std::string::npos) << text;
  EXPECT_NE(text.find("hosts 10%"), std::string::npos) << text;
}

TEST_F(ExplainTest, ShowsPhysicalPipelineOperators) {
  const std::string agg = ExplainQuery(
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "WINDOW 10 s DURATION 60 s;",
      registry_);
  EXPECT_NE(agg.find("physical pipeline:"), std::string::npos) << agg;
  EXPECT_NE(agg.find("Decode("), std::string::npos) << agg;
  EXPECT_NE(agg.find("GroupFold("), std::string::npos) << agg;
  EXPECT_NE(agg.find("WindowClose("), std::string::npos) << agg;
  EXPECT_NE(agg.find("Finalize("), std::string::npos) << agg;
  EXPECT_EQ(agg.find("Join("), std::string::npos) << agg;

  const std::string join = ExplainQuery(
      "SELECT COUNT(*) FROM bid, impression WINDOW 10 s DURATION 60 s;",
      registry_);
  EXPECT_NE(join.find("Join("), std::string::npos) << join;

  const std::string raw = ExplainQuery(
      "SELECT bid.user_id FROM bid WINDOW 10 s DURATION 60 s;", registry_);
  EXPECT_NE(raw.find("Project("), std::string::npos) << raw;
  EXPECT_EQ(raw.find("Finalize("), std::string::npos) << raw;
}

TEST_F(ExplainTest, ShowsTypedIrPrograms) {
  const std::string text = ExplainQuery(
      "SELECT COUNT(*) FROM bid WHERE bid.price > 2.0 "
      "WINDOW 10 s DURATION 60 s;",
      registry_);
  EXPECT_NE(text.find("ir:"), std::string::npos) << text;
  EXPECT_NE(text.find("filter program 0"), std::string::npos) << text;
  EXPECT_NE(text.find("bid.price"), std::string::npos) << text;
  EXPECT_NE(text.find("null|double"), std::string::npos) << text;
  EXPECT_NE(text.find("predicate unknown"), std::string::npos) << text;
  EXPECT_NE(text.find("central:"), std::string::npos) << text;

  // An unsatisfiable filter is called out, its programs pruned, and lint
  // flags the contradiction alongside.
  const std::string dead = ExplainQuery(
      "SELECT COUNT(*) FROM bid WHERE bid.user_id = 200 AND "
      "bid.user_id >= 500 WINDOW 10 s DURATION 60 s;",
      registry_);
  EXPECT_NE(dead.find("unsatisfiable"), std::string::npos) << dead;
  EXPECT_NE(dead.find("scrubql-filter-contradiction"), std::string::npos)
      << dead;

  // A redundant conjunct is pruned from the executed programs: only the
  // stronger bound survives.
  const std::string pruned = ExplainQuery(
      "SELECT COUNT(*) FROM bid WHERE bid.price > 10 AND bid.price > 5 "
      "WINDOW 10 s DURATION 60 s;",
      registry_);
  EXPECT_NE(pruned.find("folded away or implied"), std::string::npos)
      << pruned;
  EXPECT_NE(pruned.find("filter program 0"), std::string::npos) << pruned;
  EXPECT_EQ(pruned.find("filter program 1"), std::string::npos) << pruned;
}

TEST_F(ExplainTest, ErrorsRenderAsText) {
  const std::string text = ExplainQuery("SELECT COUNT(*) FROM ghost;",
                                        registry_);
  EXPECT_NE(text.find("error:"), std::string::npos);
  EXPECT_NE(text.find("ghost"), std::string::npos);
}

TEST(DescribeQueryTest, ReportsAgentAndCentralCounters) {
  SystemConfig config;
  config.seed = 91;
  config.platform.seed = 91;
  config.platform.datacenters = 1;
  config.platform.bidservers_per_dc = 2;
  config.platform.adservers_per_dc = 1;
  ScrubSystem system(config);
  PoissonLoadConfig load;
  load.requests_per_second = 300;
  load.duration = 4 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);
  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT COUNT(*) FROM bid WHERE bid.exchange_id = 1 "
      "WINDOW 2 s DURATION 4 s;",
      [](const ResultRow&) {});
  ASSERT_TRUE(submitted.ok());
  system.RunUntil(5 * kMicrosPerSecond);
  system.Drain();

  const std::string text = system.DescribeQuery(submitted->id);
  EXPECT_NE(text.find("hosts: 5 reporting"), std::string::npos) << text;
  EXPECT_NE(text.find("considered="), std::string::npos);
  EXPECT_NE(text.find("filtered="), std::string::npos);
  EXPECT_NE(text.find("central: batches="), std::string::npos);
  // Facade-level Explain is also wired.
  EXPECT_NE(system.Explain("SELECT COUNT(*) FROM bid;").find("host plan"),
            std::string::npos);
  // Unknown queries degrade gracefully.
  EXPECT_NE(system.DescribeQuery(999).find("no record"), std::string::npos);
}

TEST(DescribeQueryTest, ReportsStagingAndColumnEncodings) {
  SystemConfig config;
  config.seed = 92;
  config.platform.seed = 92;
  config.platform.datacenters = 1;
  config.platform.bidservers_per_dc = 2;
  config.platform.adservers_per_dc = 1;
  ScrubSystem system(config);
  PoissonLoadConfig load;
  load.requests_per_second = 400;
  load.duration = 4 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);
  Result<SubmittedQuery> grouped = system.Submit(
      "SELECT bid.country, COUNT(*) FROM bid GROUP BY bid.country "
      "WINDOW 2 s DURATION 4 s;",
      [](const ResultRow&) {});
  ASSERT_TRUE(grouped.ok());
  Result<SubmittedQuery> join = system.Submit(
      "SELECT impression.line_item_id, COUNT(*) FROM bid, impression "
      "GROUP BY impression.line_item_id WINDOW 2 s DURATION 4 s;",
      [](const ResultRow&) {});
  ASSERT_TRUE(join.ok());
  system.RunUntil(5 * kMicrosPerSecond);
  system.Drain();

  // Single-source columnar query: the country column is the only shipped
  // field (low-cardinality, so the dictionary wins); the rest render as
  // dropped.
  const std::string g = system.DescribeQuery(grouped->id);
  EXPECT_NE(g.find("staging: columnar\n"), std::string::npos) << g;
  EXPECT_NE(g.find("source bid:"), std::string::npos) << g;
  EXPECT_NE(g.find("country=dict("), std::string::npos) << g;
  EXPECT_NE(g.find("bid_price=dropped"), std::string::npos) << g;
  EXPECT_EQ(g.find("country=plain"), std::string::npos) << g;

  // Join query: one staging line per source, flagged as columnar join.
  const std::string j = system.DescribeQuery(join->id);
  EXPECT_NE(j.find("staging: columnar join\n"), std::string::npos) << j;
  EXPECT_NE(j.find("source bid:"), std::string::npos) << j;
  EXPECT_NE(j.find("source impression:"), std::string::npos) << j;
  EXPECT_NE(j.find("line_item_id=plain"), std::string::npos) << j;

  // Row mode reports itself honestly.
  SystemConfig row_config = config;
  row_config.columnar = false;
  ScrubSystem row_system(row_config);
  row_system.workload().SchedulePoissonLoad(load);
  Result<SubmittedQuery> row_sub = row_system.Submit(
      "SELECT COUNT(*) FROM bid WINDOW 2 s DURATION 4 s;",
      [](const ResultRow&) {});
  ASSERT_TRUE(row_sub.ok());
  row_system.RunUntil(5 * kMicrosPerSecond);
  row_system.Drain();
  const std::string r = row_system.DescribeQuery(row_sub->id);
  EXPECT_NE(r.find("staging: row\n"), std::string::npos) << r;
  EXPECT_NE(r.find("source bid: row events"), std::string::npos) << r;
}

}  // namespace
}  // namespace scrub
