// Chaos stress suite for graceful degradation under memory pressure
// (DESIGN.md §13): budgeted window state, lossless defer-and-replay spill,
// and honest shed accounting.
//
// The contract under test, from strongest to weakest rung of the ladder:
//
//  1. Spill is LOSSLESS: with a spill directory configured, a state budget
//     of half or an eighth of the unbounded run's working set produces a
//     byte-identical result transcript — same rows, same order, same float
//     bits — because deferred events replay through the ordinary fold path
//     in arrival order at window close.
//  2. Shed is HONEST: when spill is unavailable (no directory), exhausted
//     (byte cap), or failing (injected I/O faults), events are counted shed
//     and every affected window's rows carry fidelity < 1 — never a crash,
//     never a silently wrong answer presented as complete.
//  3. Degradation is DETERMINISTIC: transcripts stay byte-identical across
//     worker counts and across the row/columnar pipelines with spill
//     engaged, because budget charges use logical event sizes, not
//     container capacities.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/central/central.h"
#include "src/central/sharded_central.h"
#include "src/common/rng.h"
#include "src/common/spill.h"
#include "src/common/strings.h"
#include "src/event/wire.h"
#include "src/query/analyzer.h"
#include "src/scrub/scrub_system.h"

namespace scrub {
namespace {

// Full-precision rendering: any divergence in values, order, completeness
// or fidelity fails loudly.
std::string RenderRow(const ResultRow& row) {
  return StrFormat("q%llu %s c=%.17g f=%.17g",
                   static_cast<unsigned long long>(row.query_id),
                   row.ToString().c_str(), row.completeness, row.fidelity);
}

// A per-test-case scratch directory under the gtest temp root; SpillManager
// mkdir -p's it on Configure.
std::string SpillDir(const std::string& label) {
  return ::testing::TempDir() + "scrub_spill_" + label;
}

// ---------------------------------------------------------------------------
// ScrubCentral directly: high-cardinality GROUP BY plus an equi-join, the
// two state shapes the accountant charges.
// ---------------------------------------------------------------------------

class SpillCentralTest : public ::testing::Test {
 protected:
  SpillCentralTest() {
    bid_schema_ = *EventSchema::Builder("bid")
                       .AddField("user_id", FieldType::kLong)
                       .AddField("price", FieldType::kDouble)
                       .Build();
    imp_schema_ = *EventSchema::Builder("impression")
                       .AddField("cost", FieldType::kDouble)
                       .Build();
    EXPECT_TRUE(registry_.Register(bid_schema_).ok());
    EXPECT_TRUE(registry_.Register(imp_schema_).ok());
  }

  CentralPlan PlanFor(std::string_view text, QueryId id) {
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    Result<QueryPlan> plan = PlanQuery(*aq, id, 0);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    CentralPlan central = plan->central;
    central.hosts_targeted = 1;
    central.hosts_sampled = 1;
    return central;
  }

  struct RunOutcome {
    std::vector<std::string> transcript;
    size_t group_peak = 0;       // accountant peak of the grouped query
    size_t join_peak = 0;        // accountant peak of the join query
    CentralQueryStats group_stats;
    CentralQueryStats join_stats;
    SpillStats spill;
  };

  // One deterministic multi-host, multi-tick workload: ~1500 distinct group
  // keys per window plus matched join pairs, interleaved with ticks so
  // window closes race ingestion.
  RunOutcome Run(CentralConfig config) {
    config.track_state_bytes = true;  // always measure, optionally budget
    ScrubCentral central(&registry_, config);
    const CentralPlan grouped = PlanFor(
        "SELECT bid.user_id, COUNT(*), SUM(bid.price), AVG(bid.price) "
        "FROM bid GROUP BY bid.user_id WINDOW 1 s DURATION 10 s;",
        1);
    const CentralPlan joined = PlanFor(
        "SELECT COUNT(*), SUM(impression.cost) FROM bid, impression "
        "WINDOW 1 s DURATION 10 s;",
        2);
    RunOutcome out;
    auto sink = [&out](const ResultRow& row) {
      out.transcript.push_back(RenderRow(row));
    };
    EXPECT_TRUE(central.InstallQuery(grouped, sink).ok());
    EXPECT_TRUE(central.InstallQuery(joined, sink).ok());

    Rng rng(42);
    uint64_t seq = 1;
    RequestId rid = 1;
    for (int tick = 0; tick < 8; ++tick) {
      const TimeMicros now = (tick + 1) * 500 * kMicrosPerMilli;
      for (HostId host = 0; host < 4; ++host) {
        std::vector<Event> group_events;
        std::vector<Event> join_events;
        for (int i = 0; i < 60; ++i) {
          const TimeMicros ts = tick * 500 * kMicrosPerMilli +
                                static_cast<TimeMicros>(rng.NextBelow(500'000));
          Event e(bid_schema_, rng.NextUint64(), ts);
          e.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(1500))));
          e.SetField(1, Value(rng.NextDouble() * 5));
          group_events.push_back(std::move(e));
          if (i % 3 == 0) {  // matched pair on a fresh request id
            Event b(bid_schema_, rid, ts);
            b.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(1500))));
            b.SetField(1, Value(rng.NextDouble() * 5));
            join_events.push_back(std::move(b));
            Event m(imp_schema_, rid, ts);
            m.SetField(0, Value(rng.NextDouble() * 0.01));
            join_events.push_back(std::move(m));
            ++rid;
          }
        }
        for (auto* events : {&group_events, &join_events}) {
          EventBatch batch;
          batch.query_id =
              events == &group_events ? grouped.query_id : joined.query_id;
          batch.host = host;
          batch.seq = seq++;
          batch.event_count = events->size();
          batch.payload = EncodeBatch(*events);
          EXPECT_TRUE(central.IngestBatch(batch, now).ok());
        }
      }
      central.OnTick(now);
      // Peaks persist in the accountant, but sample mid-run anyway so the
      // numbers reflect live-window state, not only the final close.
      out.group_peak =
          std::max(out.group_peak, central.accountant().peak(grouped.query_id));
      out.join_peak =
          std::max(out.join_peak, central.accountant().peak(joined.query_id));
    }
    central.OnTick(60 * kMicrosPerSecond);
    out.group_peak =
        std::max(out.group_peak, central.accountant().peak(grouped.query_id));
    out.join_peak =
        std::max(out.join_peak, central.accountant().peak(joined.query_id));
    const CentralQueryStats* gs = central.StatsFor(grouped.query_id);
    const CentralQueryStats* js = central.StatsFor(joined.query_id);
    EXPECT_NE(gs, nullptr);
    EXPECT_NE(js, nullptr);
    if (gs != nullptr) {
      out.group_stats = *gs;
    }
    if (js != nullptr) {
      out.join_stats = *js;
    }
    out.spill = central.spill_stats();
    EXPECT_FALSE(out.transcript.empty());
    return out;
  }

  SchemaRegistry registry_;
  SchemaPtr bid_schema_;
  SchemaPtr imp_schema_;
};

TEST_F(SpillCentralTest, SpillIsByteIdenticalAtHalfAndEighthBudget) {
  const RunOutcome unbounded = Run(CentralConfig{});
  ASSERT_GT(unbounded.group_peak, 0u);
  ASSERT_GT(unbounded.join_peak, 0u);
  EXPECT_EQ(unbounded.group_stats.events_spilled, 0u);
  EXPECT_EQ(unbounded.group_stats.events_shed, 0u);
  EXPECT_DOUBLE_EQ(unbounded.group_stats.fidelity_min, 1.0);

  const size_t working_set =
      std::max(unbounded.group_peak, unbounded.join_peak);
  for (const size_t divisor : {size_t{2}, size_t{8}}) {
    CentralConfig config;
    config.query_state_budget_bytes = working_set / divisor;
    config.spill_dir = SpillDir(StrFormat("identity_%zu", divisor));
    config.spill_instance = StrFormat("central_d%zu", divisor);
    const RunOutcome budgeted = Run(config);
    EXPECT_EQ(budgeted.transcript, unbounded.transcript)
        << "budget = 1/" << divisor << " of working set";
    // Pressure really engaged, losslessly: spilled yes, shed no.
    EXPECT_GT(budgeted.group_stats.events_spilled, 0u)
        << "budget = 1/" << divisor;
    EXPECT_EQ(budgeted.group_stats.events_shed, 0u);
    EXPECT_EQ(budgeted.join_stats.events_shed, 0u);
    EXPECT_DOUBLE_EQ(budgeted.group_stats.fidelity_min, 1.0);
    EXPECT_EQ(budgeted.group_stats.windows_lossy, 0u);
    // Every run opened was replayed and discarded; no files leak.
    EXPECT_EQ(budgeted.spill.runs_opened, budgeted.spill.runs_discarded);
    EXPECT_EQ(budgeted.spill.records_written,
              budgeted.spill.records_replayed);
    EXPECT_EQ(budgeted.spill.write_failures, 0u);
    EXPECT_EQ(budgeted.spill.read_failures, 0u);
  }
}

TEST_F(SpillCentralTest, NoSpillDirectoryDegradesToCountedShed) {
  const RunOutcome unbounded = Run(CentralConfig{});
  CentralConfig config;
  config.query_state_budget_bytes =
      std::max(unbounded.group_peak, unbounded.join_peak) / 8;
  // No spill_dir: the ladder bottoms out at counted shed.
  const RunOutcome shed = Run(config);
  EXPECT_GT(shed.group_stats.events_shed, 0u);
  EXPECT_GT(shed.group_stats.windows_lossy, 0u);
  EXPECT_LT(shed.group_stats.fidelity_min, 1.0);
  EXPECT_EQ(shed.group_stats.events_spilled, 0u);
  // The lossy windows advertise it on their rows.
  bool saw_fidelity_marker = false;
  for (const std::string& row : shed.transcript) {
    saw_fidelity_marker |= row.find("[fidelity") != std::string::npos;
  }
  EXPECT_TRUE(saw_fidelity_marker);
}

TEST_F(SpillCentralTest, InjectedWriteFailuresBecomeCountedShed) {
  const RunOutcome unbounded = Run(CentralConfig{});
  CentralConfig config;
  config.query_state_budget_bytes =
      std::max(unbounded.group_peak, unbounded.join_peak) / 8;
  config.spill_dir = SpillDir("write_fault");
  config.spill_faults.write_fail = 0.5;
  config.spill_seed = 77;
  const RunOutcome faulty = Run(config);
  // Both rungs active at once: some records spilled and replayed, the
  // injected failures counted shed — never a crash, never silent loss.
  EXPECT_GT(faulty.spill.write_failures, 0u);
  EXPECT_GT(faulty.group_stats.spill_write_failures +
                faulty.join_stats.spill_write_failures,
            0u);
  EXPECT_GT(faulty.group_stats.events_spilled, 0u);
  EXPECT_GT(faulty.group_stats.events_shed, 0u);
  EXPECT_LT(faulty.group_stats.fidelity_min, 1.0);
  EXPECT_GT(faulty.group_stats.windows_lossy, 0u);
}

TEST_F(SpillCentralTest, InjectedReadFailuresShedTheLostRemainder) {
  const RunOutcome unbounded = Run(CentralConfig{});
  CentralConfig config;
  config.query_state_budget_bytes =
      std::max(unbounded.group_peak, unbounded.join_peak) / 8;
  config.spill_dir = SpillDir("read_fault");
  config.spill_faults.read_fail = 1.0;  // every replay dies on record one
  config.spill_seed = 78;
  const RunOutcome faulty = Run(config);
  EXPECT_GT(faulty.spill.read_failures, 0u);
  EXPECT_GT(faulty.group_stats.spill_read_failures +
                faulty.join_stats.spill_read_failures,
            0u);
  // Everything written was lost at replay and counted shed.
  EXPECT_GT(faulty.group_stats.events_spilled, 0u);
  EXPECT_GE(faulty.group_stats.events_shed,
            faulty.group_stats.events_spilled);
  EXPECT_LT(faulty.group_stats.fidelity_min, 1.0);
}

TEST_F(SpillCentralTest, SpillByteCapFallsBackToShed) {
  const RunOutcome unbounded = Run(CentralConfig{});
  CentralConfig config;
  config.query_state_budget_bytes =
      std::max(unbounded.group_peak, unbounded.join_peak) / 8;
  config.spill_dir = SpillDir("byte_cap");
  config.max_spill_bytes_per_query = 4096;  // a few records, then exhausted
  const RunOutcome capped = Run(config);
  EXPECT_GT(capped.group_stats.events_spilled, 0u);
  EXPECT_LE(capped.group_stats.spill_bytes, 4096u + 1024u);
  EXPECT_GT(capped.group_stats.events_shed, 0u);
  EXPECT_LT(capped.group_stats.fidelity_min, 1.0);
}

TEST_F(SpillCentralTest, TinyBudgetStressStaysLosslessAndLeakFree) {
  // check.sh drives this with SCRUB_SPILL_STRESS_DIVISOR=64 under
  // ASan+UBSan: a budget a tiny fraction of the working set forces nearly
  // every event through the spill path, and the run must still be lossless,
  // byte-identical, and leak no spill files.
  size_t divisor = 32;
  if (const char* env = std::getenv("SCRUB_SPILL_STRESS_DIVISOR")) {
    divisor = static_cast<size_t>(std::max(1, std::atoi(env)));
  }
  const RunOutcome unbounded = Run(CentralConfig{});
  CentralConfig config;
  config.query_state_budget_bytes = std::max<size_t>(
      1, std::max(unbounded.group_peak, unbounded.join_peak) / divisor);
  config.spill_dir = SpillDir("stress");
  config.spill_instance = "central_stress";
  const RunOutcome stressed = Run(config);
  EXPECT_EQ(stressed.transcript, unbounded.transcript)
      << "divisor=" << divisor;
  EXPECT_GT(stressed.group_stats.events_spilled, 0u);
  EXPECT_EQ(stressed.group_stats.events_shed, 0u);
  EXPECT_EQ(stressed.spill.runs_opened, stressed.spill.runs_discarded);
}

TEST_F(SpillCentralTest, ShedNeverInflatesAggregatesAboveTruth) {
  // Counted shed must subtract work, not corrupt it: every COUNT in the
  // shedding run is <= the unbounded run's count for the same group/window.
  const RunOutcome unbounded = Run(CentralConfig{});
  CentralConfig config;
  config.query_state_budget_bytes =
      std::max(unbounded.group_peak, unbounded.join_peak) / 8;
  const RunOutcome shed = Run(config);
  EXPECT_LE(shed.transcript.size(), unbounded.transcript.size());
  const uint64_t attempted =
      shed.group_stats.events_shed + shed.group_stats.events_spilled;
  EXPECT_GT(attempted, 0u);
}

// ---------------------------------------------------------------------------
// ShardedCentral: per-shard spill under the coordinator merge.
// ---------------------------------------------------------------------------

class SpillShardedTest : public SpillCentralTest {
 protected:
  std::vector<std::string> RunSharded(size_t workers, CentralConfig config) {
    config.track_state_bytes = true;
    ShardedCentral central(&registry_, /*shards=*/4, config, workers);
    const CentralPlan grouped = PlanFor(
        "SELECT bid.user_id, COUNT(*), SUM(bid.price) FROM bid "
        "GROUP BY bid.user_id WINDOW 1 s DURATION 10 s;",
        1);
    std::vector<std::string> transcript;
    auto sink = [&transcript](const ResultRow& row) {
      transcript.push_back(RenderRow(row));
    };
    EXPECT_TRUE(central.InstallQuery(grouped, sink).ok());
    Rng rng(43);
    uint64_t seq = 1;
    for (int tick = 0; tick < 8; ++tick) {
      const TimeMicros now = (tick + 1) * 500 * kMicrosPerMilli;
      std::vector<EventBatch> batches;
      for (HostId host = 0; host < 4; ++host) {
        std::vector<Event> events;
        for (int i = 0; i < 60; ++i) {
          Event e(bid_schema_, rng.NextUint64(),
                  tick * 500 * kMicrosPerMilli +
                      static_cast<TimeMicros>(rng.NextBelow(500'000)));
          e.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(1500))));
          e.SetField(1, Value(rng.NextDouble() * 5));
          events.push_back(std::move(e));
        }
        EventBatch batch;
        batch.query_id = grouped.query_id;
        batch.host = host;
        batch.seq = seq++;
        batch.event_count = events.size();
        batch.payload = EncodeBatch(events);
        batches.push_back(std::move(batch));
      }
      EXPECT_TRUE(central.IngestBatches(batches, now).ok());
      central.OnTick(now);
    }
    central.OnTick(60 * kMicrosPerSecond);
    EXPECT_FALSE(transcript.empty());
    return transcript;
  }
};

TEST_F(SpillShardedTest, ShardSpillIsByteIdenticalAcrossWorkerCounts) {
  const std::vector<std::string> unbounded = RunSharded(0, CentralConfig{});
  CentralConfig config;
  // A deliberately tiny per-shard budget: every shard spills every window.
  config.query_state_budget_bytes = 8 * 1024;
  config.spill_dir = SpillDir("sharded");
  const std::vector<std::string> reference = RunSharded(0, config);
  EXPECT_EQ(reference, unbounded);  // spill stays lossless behind the router
  EXPECT_EQ(RunSharded(2, config), reference);
  EXPECT_EQ(RunSharded(8, config), reference);
}

TEST_F(SpillShardedTest, ShardShedSurfacesFidelityAtTheCoordinator) {
  CentralConfig config;
  config.query_state_budget_bytes = 8 * 1024;  // no spill_dir: shed
  const std::vector<std::string> reference = RunSharded(0, config);
  bool saw_fidelity_marker = false;
  for (const std::string& row : reference) {
    saw_fidelity_marker |= row.find("[fidelity") != std::string::npos;
  }
  EXPECT_TRUE(saw_fidelity_marker);
  // Deterministic degradation: the lossy transcript is still byte-stable.
  EXPECT_EQ(RunSharded(8, config), reference);
}

// ---------------------------------------------------------------------------
// Full ScrubSystem: budgets + spill + agent staging pressure end to end.
// ---------------------------------------------------------------------------

struct SystemOutcome {
  std::vector<std::string> transcript;
  std::string describe;
  std::string explain_analyze;
  CentralQueryStats stats;
  size_t peak = 0;
};

SystemOutcome RunSpillSystem(size_t workers, bool columnar,
                             size_t central_budget, const std::string& spill_dir,
                             size_t staging_budget = 0,
                             SpillFaultSpec spill_faults = {}) {
  SystemConfig config;
  config.seed = 7;
  config.platform.seed = 7;
  config.platform.bidservers_per_dc = 3;
  config.platform.adservers_per_dc = 1;
  config.platform.presentation_per_dc = 1;
  config.platform.num_campaigns = 3;
  config.platform.line_items_per_campaign = 3;
  config.workers = workers;
  config.columnar = columnar;
  config.transport.micros_per_byte = 0;
  config.central.track_state_bytes = true;
  config.central.query_state_budget_bytes = central_budget;
  config.central.spill_dir = spill_dir;
  config.agent.staging_budget_bytes = staging_budget;
  config.faults.spill = spill_faults;
  ScrubSystem system(config);
  PoissonLoadConfig load;
  load.requests_per_second = 200;
  load.duration = 3 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);
  SystemOutcome out;
  auto submitted = system.Submit(
      "SELECT bid.user_id, COUNT(*), SUM(bid.bid_price) FROM bid "
      "GROUP BY bid.user_id WINDOW 1 s DURATION 3 s;",
      [&out](const ResultRow& row) {
        out.transcript.push_back(RenderRow(row));
      });
  EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
  const QueryId id = submitted.ok() ? submitted->id : 0;
  system.RunUntil(2 * kMicrosPerSecond);
  out.explain_analyze = system.ExplainAnalyze(id);  // while still installed
  // Peak must be read while the query is installed: retirement's ReleaseAll
  // drops the accountant entry. Two of the three windows have closed by
  // now, so this is the sustained working set.
  out.peak = system.central().accountant().peak(id);
  system.RunUntil(4 * kMicrosPerSecond);
  system.Drain();
  out.describe = system.DescribeQuery(id);
  const CentralQueryStats* stats = system.central().StatsFor(id);
  EXPECT_NE(stats, nullptr);
  if (stats != nullptr) {
    out.stats = *stats;
  }
  EXPECT_FALSE(out.transcript.empty());
  return out;
}

TEST(SpillSystemTest, BudgetedRunMatchesUnboundedAcrossWorkersAndPipelines) {
  const SystemOutcome unbounded =
      RunSpillSystem(0, /*columnar=*/false, 0, "");
  ASSERT_GT(unbounded.peak, 0u);
  const size_t budget = unbounded.peak / 8;
  const std::string dir = SpillDir("system");
  for (const bool columnar : {false, true}) {
    for (const size_t workers : {size_t{0}, size_t{2}, size_t{8}}) {
      const SystemOutcome budgeted =
          RunSpillSystem(workers, columnar, budget, dir);
      EXPECT_EQ(budgeted.transcript, unbounded.transcript)
          << "workers=" << workers << " columnar=" << columnar;
      EXPECT_EQ(budgeted.stats.events_shed, 0u);
    }
  }
  // The budget was real: the row reference rerun under pressure spilled.
  const SystemOutcome spilled =
      RunSpillSystem(0, /*columnar=*/false, budget, dir);
  EXPECT_GT(spilled.stats.events_spilled, 0u);
}

TEST(SpillSystemTest, InjectedSpillFaultNeverCrashesAndDentsFidelity) {
  const SystemOutcome unbounded =
      RunSpillSystem(0, /*columnar=*/true, 0, "");
  SpillFaultSpec faults;
  faults.write_fail = 0.7;
  const SystemOutcome faulty = RunSpillSystem(
      0, /*columnar=*/true, unbounded.peak / 8, SpillDir("system_fault"),
      /*staging_budget=*/0, faults);
  EXPECT_GT(faulty.stats.spill_write_failures, 0u);
  EXPECT_GT(faulty.stats.events_shed, 0u);
  EXPECT_LT(faulty.stats.fidelity_min, 1.0);
  EXPECT_NE(faulty.describe.find("pressure:"), std::string::npos);
  EXPECT_NE(faulty.describe.find("fidelity:"), std::string::npos);
}

TEST(SpillSystemTest, AgentStagingBudgetShedIsCountedIntoFidelity) {
  const SystemOutcome pressured = RunSpillSystem(
      0, /*columnar=*/true, 0, "", /*staging_budget=*/2 * 1024);
  EXPECT_GT(pressured.stats.agent_events_shed, 0u);
  EXPECT_LT(pressured.stats.fidelity_min, 1.0);
  EXPECT_NE(pressured.describe.find("agent_shed="), std::string::npos);
  bool saw_fidelity_marker = false;
  for (const std::string& row : pressured.transcript) {
    saw_fidelity_marker |= row.find("[fidelity") != std::string::npos;
  }
  EXPECT_TRUE(saw_fidelity_marker);
}

TEST(SpillSystemTest, AgentStagingShedIsDeterministicAcrossWorkers) {
  const SystemOutcome reference = RunSpillSystem(
      0, /*columnar=*/true, 0, "", /*staging_budget=*/2 * 1024);
  for (const size_t workers : {size_t{2}, size_t{8}}) {
    const SystemOutcome other = RunSpillSystem(
        workers, /*columnar=*/true, 0, "", /*staging_budget=*/2 * 1024);
    EXPECT_EQ(other.transcript, reference.transcript)
        << "workers=" << workers;
  }
}

TEST(SpillSystemTest, ExplainAnalyzeReportsBudgetsAndSpill) {
  const SystemOutcome unbounded =
      RunSpillSystem(0, /*columnar=*/true, 0, "");
  const SystemOutcome budgeted = RunSpillSystem(
      0, /*columnar=*/true, unbounded.peak / 8, SpillDir("system_explain"));
  EXPECT_NE(budgeted.explain_analyze.find("state bytes:"), std::string::npos);
  EXPECT_NE(budgeted.explain_analyze.find("budget="), std::string::npos);
  EXPECT_NE(budgeted.explain_analyze.find("spill:"), std::string::npos);
  EXPECT_NE(budgeted.describe.find("join_shed="), std::string::npos);
  // Unbudgeted, tracking-only runs still report usage but no spill section.
  EXPECT_NE(unbounded.explain_analyze.find("state bytes:"), std::string::npos);
}

}  // namespace
}  // namespace scrub
