// Tests for the ScrubQL static query linter: one positive (diagnostic fires
// with the right rule id, severity and span) and one negative (a well-formed
// query stays clean) case per rule, plus the selectivity estimator and the
// diagnostic renderer.

#include <gtest/gtest.h>

#include "src/lint/lint.h"
#include "src/query/analyzer.h"

namespace scrub {
namespace {

class LintTest : public ::testing::Test {
 protected:
  LintTest() {
    EXPECT_TRUE(registry_
                    .Register(*EventSchema::Builder("bid")
                                   .AddField("user_id", FieldType::kLong)
                                   .AddField("price", FieldType::kDouble)
                                   .AddField("country", FieldType::kString)
                                   .AddField("won", FieldType::kBool)
                                   .Build())
                    .ok());
    options_.fleet_hosts = 100;
    options_.events_per_host_per_second = 1000.0;
    options_.field_cardinality = {{"user_id", 1'000'000}, {"country", 8}};
  }

  // Parse + analyze + lint; analysis must succeed.
  std::vector<Diagnostic> Lint(std::string_view text) {
    Result<AnalyzedQuery> analyzed = ParseAndAnalyze(text, registry_);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    if (!analyzed.ok()) {
      return {};
    }
    return LintQuery(*analyzed, options_);
  }

  // All diagnostics carrying `rule`.
  static std::vector<Diagnostic> WithRule(
      const std::vector<Diagnostic>& diags, std::string_view rule) {
    std::vector<Diagnostic> out;
    for (const Diagnostic& d : diags) {
      if (d.rule == rule) {
        out.push_back(d);
      }
    }
    return out;
  }

  static std::string SpanText(std::string_view query, const SourceSpan& span) {
    if (!span.IsValid() || span.end > query.size()) {
      return "";
    }
    return std::string(query.substr(span.begin, span.end - span.begin));
  }

  SchemaRegistry registry_;
  LintOptions options_;
};

// --- (a) scrubql-unbounded-group-by ----------------------------------------

TEST_F(LintTest, UnboundedGroupByFiresOnHighCardinalityKey) {
  const std::string q =
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  const auto hits = WithRule(Lint(q), lint_rules::kUnboundedGroupBy);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kError);
  EXPECT_EQ(SpanText(q, hits[0].span), "bid.user_id");
  EXPECT_NE(hits[0].message.find("TOPK"), std::string::npos);
}

TEST_F(LintTest, UnboundedGroupByFiresOnRequestIdKey) {
  const std::string q =
      "SELECT bid.__request_id, COUNT(*) FROM bid GROUP BY bid.__request_id "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  const auto hits = WithRule(Lint(q), lint_rules::kUnboundedGroupBy);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kError);
  EXPECT_NE(hits[0].message.find("one group per request"), std::string::npos);
}

TEST_F(LintTest, GroupByLowCardinalityKeyIsClean) {
  const std::string q =
      "SELECT bid.country, COUNT(*) FROM bid GROUP BY bid.country "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kUnboundedGroupBy).empty());
}

TEST_F(LintTest, GroupByUnknownCardinalityIsClean) {
  // price has no cardinality profile: the rule never guesses.
  const std::string q =
      "SELECT bid.price, COUNT(*) FROM bid GROUP BY bid.price "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kUnboundedGroupBy).empty());
}

TEST_F(LintTest, TopKSilencesUnboundedGroupBy) {
  const std::string q =
      "SELECT bid.user_id, TOPK(10, bid.user_id) FROM bid "
      "GROUP BY bid.user_id WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kUnboundedGroupBy).empty());
}

// --- (b) scrubql-exact-distinct --------------------------------------------

TEST_F(LintTest, ExactDistinctFiresOnAggregateFreeGroupBy) {
  const std::string q =
      "SELECT bid.country FROM bid GROUP BY bid.country "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  const auto hits = WithRule(Lint(q), lint_rules::kExactDistinct);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kWarning);
  EXPECT_NE(hits[0].message.find("COUNT_DISTINCT"), std::string::npos);
  EXPECT_NE(SpanText(q, hits[0].span).find("GROUP BY"), std::string::npos);
}

TEST_F(LintTest, GroupByWithAggregateIsNotExactDistinct) {
  const std::string q =
      "SELECT bid.country, COUNT(*) FROM bid GROUP BY bid.country "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kExactDistinct).empty());
}

// --- (c) scrubql-sampling-error --------------------------------------------

TEST_F(LintTest, SamplingErrorFiresWhenPredictedErrorIsUseless) {
  // n = 10 hosts, m = 1 event/host/window: Eqs. 1-3 predict ~+/-100%.
  const std::string q =
      "SELECT COUNT(*) FROM bid WHERE bid.price > 100 "
      "WINDOW 1 s DURATION 60 s SAMPLE HOSTS 10% SAMPLE EVENTS 0.1%;";
  const auto hits = WithRule(Lint(q), lint_rules::kSamplingError);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kWarning);
  EXPECT_NE(hits[0].message.find("relative error"), std::string::npos);
  EXPECT_NE(SpanText(q, hits[0].span).find("SAMPLE EVENTS"),
            std::string::npos);
}

TEST_F(LintTest, SamplingErrorWarnsOnSingleSampledHost) {
  const std::string q =
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 60 s SAMPLE HOSTS 1%;";
  const auto hits = WithRule(Lint(q), lint_rules::kSamplingError);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("single host"), std::string::npos);
  EXPECT_NE(SpanText(q, hits[0].span).find("SAMPLE HOSTS"),
            std::string::npos);
}

TEST_F(LintTest, GenerousSamplingIsClean) {
  const std::string q =
      "SELECT COUNT(*) FROM bid WHERE bid.price > 100 "
      "WINDOW 1 s DURATION 60 s SAMPLE HOSTS 10% SAMPLE EVENTS 50%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kSamplingError).empty());
}

TEST_F(LintTest, UnsampledQueryNeverPredictsSamplingError) {
  const std::string q =
      "SELECT COUNT(*) FROM bid @[SERVICE IN BidServers] "
      "WINDOW 1 s DURATION 60 s;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kSamplingError).empty());
}

// --- (d) scrubql-full-fleet ------------------------------------------------

TEST_F(LintTest, FullFleetFiresWithoutTargetOrSampling) {
  const std::string q = "SELECT COUNT(*) FROM bid WINDOW 5 s DURATION 60 s;";
  const auto hits = WithRule(Lint(q), lint_rules::kFullFleet);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kWarning);
  EXPECT_NE(hits[0].message.find("every monitorable host"),
            std::string::npos);
}

TEST_F(LintTest, TargetClauseSilencesFullFleet) {
  const std::string q =
      "SELECT COUNT(*) FROM bid @[SERVICE IN BidServers] "
      "WINDOW 5 s DURATION 60 s;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kFullFleet).empty());
}

TEST_F(LintTest, SamplingSilencesFullFleet) {
  const std::string q =
      "SELECT COUNT(*) FROM bid WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kFullFleet).empty());
}

// --- (e) scrubql-dead-projection -------------------------------------------

TEST_F(LintTest, DeadProjectionFiresOnWhereOnlyField) {
  const std::string q =
      "SELECT COUNT(*) FROM bid WHERE bid.price > 2.0 "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  const auto hits = WithRule(Lint(q), lint_rules::kDeadProjection);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kNote);
  EXPECT_NE(hits[0].message.find("bid.price"), std::string::npos);
  EXPECT_EQ(SpanText(q, hits[0].span), "bid.price");
}

TEST_F(LintTest, CentrallyReadFieldIsNotDeadProjection) {
  const std::string q =
      "SELECT bid.price, COUNT(*) FROM bid WHERE bid.price > 2.0 "
      "GROUP BY bid.price WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kDeadProjection).empty());
}

// --- (f) scrubql-ineffective-filter ----------------------------------------

TEST_F(LintTest, IneffectiveFilterFiresOnSelectivityNearOne) {
  // user_id != 42 keeps ~all of a million-user population.
  const std::string q =
      "SELECT COUNT(*) FROM bid WHERE bid.user_id != 42 "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;";
  const auto hits = WithRule(Lint(q), lint_rules::kIneffectiveFilter);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kWarning);
  EXPECT_NE(hits[0].message.find("full logging"), std::string::npos);
  EXPECT_NE(SpanText(q, hits[0].span).find("WHERE"), std::string::npos);
}

TEST_F(LintTest, SelectiveFilterIsClean) {
  const std::string q =
      "SELECT COUNT(*) FROM bid WHERE bid.country = 'US' "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kIneffectiveFilter).empty());
}

// --- (g) scrubql-window-under-flush ----------------------------------------

TEST_F(LintTest, WindowUnderFlushFires) {
  options_.flush_interval_micros = 500 * kMicrosPerMilli;
  const std::string q =
      "SELECT COUNT(*) FROM bid WINDOW 100 ms DURATION 60 s "
      "SAMPLE EVENTS 10%;";
  const auto hits = WithRule(Lint(q), lint_rules::kWindowUnderFlush);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kWarning);
  EXPECT_NE(hits[0].message.find("flush interval"), std::string::npos);
  EXPECT_NE(SpanText(q, hits[0].span).find("WINDOW"), std::string::npos);
}

TEST_F(LintTest, WindowAtOrAboveFlushIsClean) {
  options_.flush_interval_micros = 500 * kMicrosPerMilli;
  const std::string q =
      "SELECT COUNT(*) FROM bid WINDOW 500 ms DURATION 60 s "
      "SAMPLE EVENTS 10%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kWindowUnderFlush).empty());
}

// --- (h) scrubql-span-budget -----------------------------------------------

TEST_F(LintTest, SpanBudgetFiresPastBudgetFraction) {
  // Default budget: 50% of 24 h.
  const std::string q =
      "SELECT COUNT(*) FROM bid WINDOW 5 s DURATION 13 h SAMPLE EVENTS 10%;";
  const auto hits = WithRule(Lint(q), lint_rules::kSpanBudget);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kWarning);
  EXPECT_NE(SpanText(q, hits[0].span).find("DURATION"), std::string::npos);
}

TEST_F(LintTest, ShortSpanIsClean) {
  const std::string q =
      "SELECT COUNT(*) FROM bid WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kSpanBudget).empty());
}

// --- Clean query / ordering / API ------------------------------------------

// --- (i) scrubql-no-retry-headroom -----------------------------------------

TEST_F(LintTest, RetryHeadroomFiresWhenLatenessTooTight) {
  options_.flush_interval_micros = 500 * kMicrosPerMilli;
  options_.retry_rtt_micros = 700 * kMicrosPerMilli;
  options_.allowed_lateness_micros = 1 * kMicrosPerSecond;
  // Needed headroom = flush 500 ms + retry RTT 700 ms = 1.2 s > 1 s grace:
  // one lost batch at a window's last flush becomes missing data.
  const std::string q =
      "SELECT COUNT(*) FROM bid @[SERVICE IN BidServers] "
      "WINDOW 5 s DURATION 60 s;";
  const auto hits = WithRule(Lint(q), lint_rules::kNoRetryHeadroom);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kWarning);
  EXPECT_NE(hits[0].message.find("retransmit"), std::string::npos);
  EXPECT_NE(SpanText(q, hits[0].span).find("WINDOW"), std::string::npos);
}

TEST_F(LintTest, RetryHeadroomCleanWithAmpleLateness) {
  options_.flush_interval_micros = 500 * kMicrosPerMilli;
  options_.retry_rtt_micros = 700 * kMicrosPerMilli;
  options_.allowed_lateness_micros = 2 * kMicrosPerSecond;
  const std::string q =
      "SELECT COUNT(*) FROM bid @[SERVICE IN BidServers] "
      "WINDOW 5 s DURATION 60 s;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kNoRetryHeadroom).empty());
}

TEST_F(LintTest, RetryHeadroomDisabledWithoutRttEstimate) {
  // retry_rtt_micros == 0 (the default) disables the rule even under an
  // impossibly tight grace: only a deployment that knows its round trip
  // (the ScrubSystem wires it) can judge headroom.
  options_.allowed_lateness_micros = 1 * kMicrosPerMilli;
  const std::string q =
      "SELECT COUNT(*) FROM bid @[SERVICE IN BidServers] "
      "WINDOW 5 s DURATION 60 s;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kNoRetryHeadroom).empty());
}

TEST_F(LintTest, RetryHeadroomAppliesToRawQueriesToo) {
  // Even a raw-mode query gets the analyzer's default window, and late
  // events against a closed window are dropped the same way — the headroom
  // rule judges the lateness budget regardless of aggregation.
  options_.retry_rtt_micros = 10 * kMicrosPerSecond;
  options_.allowed_lateness_micros = 1 * kMicrosPerMilli;
  const std::string q =
      "SELECT bid.user_id FROM bid WHERE bid.price > 100.0 "
      "@[SERVICE IN BidServers] DURATION 60 s;";
  EXPECT_EQ(WithRule(Lint(q), lint_rules::kNoRetryHeadroom).size(), 1u);
}

// --- (j) scrubql-sampling-sharded-estimate ---------------------------------

TEST_F(LintTest, SamplingShardedEstimateNotesGroupedScaledAggregates) {
  const std::string q =
      "SELECT bid.country, COUNT(*) FROM bid GROUP BY bid.country "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;";
  const auto hits = WithRule(Lint(q), lint_rules::kSamplingShardedEstimate);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kNote);
  EXPECT_NE(SpanText(q, hits[0].span).find("SAMPLE EVENTS"),
            std::string::npos);
}

TEST_F(LintTest, SamplingShardedEstimateCoversHostSampledSum) {
  const std::string q =
      "SELECT bid.country, SUM(bid.price) FROM bid GROUP BY bid.country "
      "WINDOW 5 s DURATION 60 s SAMPLE HOSTS 50%;";
  const auto hits = WithRule(Lint(q), lint_rules::kSamplingShardedEstimate);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(SpanText(q, hits[0].span).find("SAMPLE HOSTS"),
            std::string::npos);
}

TEST_F(LintTest, SamplingShardedEstimateQuietWithoutGroupOrSampling) {
  // Ungrouped sampled COUNT gets the single-instance Eq. 2-3 bound already;
  // grouped unsampled needs no estimate; grouped sampled MIN never scales.
  EXPECT_TRUE(WithRule(Lint("SELECT COUNT(*) FROM bid WINDOW 5 s "
                            "DURATION 60 s SAMPLE EVENTS 50%;"),
                       lint_rules::kSamplingShardedEstimate)
                  .empty());
  EXPECT_TRUE(WithRule(Lint("SELECT bid.country, COUNT(*) FROM bid "
                            "GROUP BY bid.country WINDOW 5 s "
                            "DURATION 60 s;"),
                       lint_rules::kSamplingShardedEstimate)
                  .empty());
  EXPECT_TRUE(WithRule(Lint("SELECT bid.country, MIN(bid.price) FROM bid "
                            "GROUP BY bid.country WINDOW 5 s DURATION 60 s "
                            "SAMPLE EVENTS 50%;"),
                       lint_rules::kSamplingShardedEstimate)
                  .empty());
}

TEST_F(LintTest, SamplingShardedEstimateQuietOnUnsampledGroupedQuery) {
  // Grouped, scaling aggregates, but no SAMPLE clause at all: there is no
  // estimate to annotate, sharded central or not.
  const std::string q =
      "SELECT bid.country, SUM(bid.price), COUNT(*) FROM bid "
      "GROUP BY bid.country WINDOW 5 s DURATION 60 s;";
  EXPECT_TRUE(
      WithRule(Lint(q), lint_rules::kSamplingShardedEstimate).empty());
}

// --- (k) scrubql-filter-contradiction --------------------------------------

TEST_F(LintTest, FilterContradictionFiresOnConflictingConjuncts) {
  const std::string q =
      "SELECT COUNT(*) FROM bid "
      "WHERE bid.user_id = 200 AND bid.user_id >= 500 "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;";
  const auto diags = Lint(q);
  const auto hits = WithRule(diags, lint_rules::kFilterContradiction);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kWarning);
  EXPECT_NE(hits[0].message.find("user_id"), std::string::npos);
  // Semantic rules warn; the query is well-formed and admission accepts it.
  EXPECT_FALSE(HasLintErrors(WithRule(diags,
                                      lint_rules::kFilterContradiction)));
}

TEST_F(LintTest, FilterContradictionFiresOnEmptyIntegerBand) {
  // No integer lies strictly between 1 and 2 and user_id is integral.
  const std::string q =
      "SELECT COUNT(*) FROM bid "
      "WHERE bid.user_id > 1 AND bid.user_id < 2 "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;";
  EXPECT_EQ(WithRule(Lint(q), lint_rules::kFilterContradiction).size(), 1u);
}

TEST_F(LintTest, SatisfiableBoundsAreNotAContradiction) {
  const std::string q =
      "SELECT COUNT(*) FROM bid "
      "WHERE bid.user_id >= 200 AND bid.user_id <= 500 "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;";
  const auto diags = Lint(q);
  EXPECT_TRUE(WithRule(diags, lint_rules::kFilterContradiction).empty());
  EXPECT_TRUE(WithRule(diags, lint_rules::kRedundantConjunct).empty());
}

// --- (l) scrubql-redundant-conjunct ----------------------------------------

TEST_F(LintTest, RedundantConjunctFiresOnImpliedBound) {
  const std::string q =
      "SELECT COUNT(*) FROM bid "
      "WHERE bid.price > 10 AND bid.price > 5 "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;";
  const auto hits = WithRule(Lint(q), lint_rules::kRedundantConjunct);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kWarning);
  // The weaker bound is the redundant one.
  EXPECT_EQ(SpanText(q, hits[0].span), "bid.price > 5");
}

TEST_F(LintTest, RedundantConjunctFiresOnEqualityPinnedRange) {
  const std::string q =
      "SELECT COUNT(*) FROM bid "
      "WHERE bid.user_id = 7 AND bid.user_id < 10 "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;";
  const auto hits = WithRule(Lint(q), lint_rules::kRedundantConjunct);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(SpanText(q, hits[0].span), "bid.user_id < 10");
}

TEST_F(LintTest, TighteningBoundsAreNotRedundant) {
  const std::string q =
      "SELECT COUNT(*) FROM bid "
      "WHERE bid.price > 10 AND bid.price < 20 "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kRedundantConjunct).empty());
}

// --- (m) scrubql-division-by-zero ------------------------------------------

TEST_F(LintTest, DivisionByZeroFiresInWhere) {
  const std::string q =
      "SELECT COUNT(*) FROM bid "
      "WHERE bid.price / 0 > 1 "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;";
  const auto hits = WithRule(Lint(q), lint_rules::kDivisionByZero);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kWarning);
  EXPECT_NE(hits[0].message.find("NULL"), std::string::npos);
}

TEST_F(LintTest, DivisionByZeroFiresInSelectList) {
  const std::string q =
      "SELECT SUM(bid.price) / 0 FROM bid "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;";
  EXPECT_EQ(WithRule(Lint(q), lint_rules::kDivisionByZero).size(), 1u);
}

TEST_F(LintTest, NonZeroDivisorIsClean) {
  const std::string q =
      "SELECT SUM(bid.price) / 100 FROM bid "
      "WHERE bid.price / 2 > 1 "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;";
  const auto diags = Lint(q);
  EXPECT_TRUE(WithRule(diags, lint_rules::kDivisionByZero).empty());
  EXPECT_TRUE(WithRule(diags, lint_rules::kNullComparison).empty());
}

// --- (n) scrubql-null-comparison -------------------------------------------

TEST_F(LintTest, NullComparisonFiresOnProvablyNullOperand) {
  // price / 0 is always NULL, and an ordered comparison against NULL is
  // never true — so this also contradicts.
  const std::string q =
      "SELECT COUNT(*) FROM bid "
      "WHERE bid.price / 0 > 1 "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;";
  const auto diags = Lint(q);
  const auto hits = WithRule(diags, lint_rules::kNullComparison);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kWarning);
  EXPECT_EQ(WithRule(diags, lint_rules::kFilterContradiction).size(), 1u);
  // Warnings all the way down: the query still admits.
  EXPECT_FALSE(HasLintErrors(diags));
}

TEST_F(LintTest, OrdinaryComparisonIsNotNullComparison) {
  const std::string q =
      "SELECT COUNT(*) FROM bid WHERE bid.price > 1 "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kNullComparison).empty());
}

// --- (o) scrubql-window-state-budget ----------------------------------------

TEST_F(LintTest, WindowStateBudgetFiresOnGroupedStateOverBudget) {
  // 8 country groups at ~170 logical bytes each cannot fit in 256 bytes.
  options_.query_state_budget_bytes = 256;
  const std::string q =
      "SELECT bid.country, COUNT(*) FROM bid GROUP BY bid.country "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  const auto hits = WithRule(Lint(q), lint_rules::kWindowStateBudget);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kWarning);
  EXPECT_NE(hits[0].message.find("live groups"), std::string::npos);
  EXPECT_NE(hits[0].message.find("spill"), std::string::npos);
  EXPECT_TRUE(hits[0].span.IsValid());
}

TEST_F(LintTest, WindowStateBudgetFiresOnJoinBuffer) {
  EXPECT_TRUE(registry_
                  .Register(*EventSchema::Builder("impression")
                                 .AddField("cost", FieldType::kDouble)
                                 .Build())
                  .ok());
  // 100 hosts x 1000 ev/s x 10 s buffered until window close dwarfs 64 KiB.
  options_.query_state_budget_bytes = 64 * 1024;
  const std::string q =
      "SELECT COUNT(*) FROM bid, impression WINDOW 10 s DURATION 60 s;";
  const auto hits = WithRule(Lint(q), lint_rules::kWindowStateBudget);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, LintSeverity::kWarning);
  EXPECT_NE(hits[0].message.find("buffered join rows"), std::string::npos);
}

TEST_F(LintTest, WindowStateBudgetQuietUnderBudget) {
  options_.query_state_budget_bytes = 1024 * 1024;
  const std::string q =
      "SELECT bid.country, COUNT(*) FROM bid GROUP BY bid.country "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kWindowStateBudget).empty());
}

TEST_F(LintTest, WindowStateBudgetDisabledWithoutBudget) {
  // The default (no budget configured) never predicts pressure.
  const std::string q =
      "SELECT bid.country, COUNT(*) FROM bid GROUP BY bid.country "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kWindowStateBudget).empty());
}

TEST_F(LintTest, TopKBoundSilencesWindowStateBudget) {
  options_.query_state_budget_bytes = 256;
  const std::string q =
      "SELECT bid.country, TOPK(5, bid.country) FROM bid "
      "GROUP BY bid.country WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  EXPECT_TRUE(WithRule(Lint(q), lint_rules::kWindowStateBudget).empty());
}

TEST_F(LintTest, WellFormedQueryIsCompletelyClean) {
  const std::string q =
      "SELECT bid.country, COUNT(*), COUNT_DISTINCT(bid.user_id) FROM bid "
      "WHERE bid.country = 'US' @[SERVICE IN BidServers] "
      "GROUP BY bid.country WINDOW 5 s DURATION 60 s;";
  const auto diags = Lint(q);
  EXPECT_TRUE(diags.empty()) << RenderDiagnostics(diags, q);
}

TEST_F(LintTest, HasLintErrorsDistinguishesSeverity) {
  const std::string errors =
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  EXPECT_TRUE(HasLintErrors(Lint(errors)));
  const std::string warnings =
      "SELECT COUNT(*) FROM bid WINDOW 5 s DURATION 60 s;";
  const auto diags = Lint(warnings);
  EXPECT_FALSE(diags.empty());
  EXPECT_FALSE(HasLintErrors(diags));
}

TEST_F(LintTest, LintQueryTextSurfacesParseFailuresAsStatus) {
  Result<std::vector<Diagnostic>> r =
      LintQueryText("SELECT FROM;", registry_, {}, options_);
  EXPECT_FALSE(r.ok());
}

TEST_F(LintTest, RenderDiagnosticIncludesRuleAndSnippet) {
  const std::string q =
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;";
  const auto hits = WithRule(Lint(q), lint_rules::kUnboundedGroupBy);
  ASSERT_EQ(hits.size(), 1u);
  const std::string rendered = RenderDiagnostic(hits[0], q);
  EXPECT_NE(rendered.find("error[scrubql-unbounded-group-by]"),
            std::string::npos);
  EXPECT_NE(rendered.find("bid.user_id"), std::string::npos);
  EXPECT_NE(rendered.find("--> offset"), std::string::npos);
}

// --- Selectivity estimator ---------------------------------------------------

TEST_F(LintTest, SelectivityOfKnownEquality) {
  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      "SELECT COUNT(*) FROM bid WHERE bid.country = 'US' DURATION 60 s;",
      registry_);
  ASSERT_TRUE(aq.ok());
  EXPECT_NEAR(EstimateSelectivity(*aq->query.where, options_), 1.0 / 8,
              1e-9);
}

TEST_F(LintTest, SelectivityCombinesConjunctionAndNegation) {
  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      "SELECT COUNT(*) FROM bid "
      "WHERE bid.country = 'US' AND NOT bid.price > 10 DURATION 60 s;",
      registry_);
  ASSERT_TRUE(aq.ok());
  // 1/8 * (1 - 1/3)
  EXPECT_NEAR(EstimateSelectivity(*aq->query.where, options_),
              (1.0 / 8) * (2.0 / 3), 1e-9);
}

TEST_F(LintTest, SelectivityOfDisjunctionAndInList) {
  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      "SELECT COUNT(*) FROM bid "
      "WHERE bid.country IN ('US', 'DE') DURATION 60 s;",
      registry_);
  ASSERT_TRUE(aq.ok());
  EXPECT_NEAR(EstimateSelectivity(*aq->query.where, options_), 2.0 / 8,
              1e-9);
}

}  // namespace
}  // namespace scrub
