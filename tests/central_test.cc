// Unit tests for ScrubCentral: windowing, grouping, aggregate finalization,
// the request-id join, late-event handling, and sampling-aware estimates.

#include <map>

#include <gtest/gtest.h>

#include "src/central/central.h"
#include "src/event/wire.h"
#include "src/query/analyzer.h"

namespace scrub {
namespace {

class CentralTest : public ::testing::Test {
 protected:
  CentralTest() {
    bid_schema_ = *EventSchema::Builder("bid")
                       .AddField("user_id", FieldType::kLong)
                       .AddField("price", FieldType::kDouble)
                       .Build();
    imp_schema_ = *EventSchema::Builder("impression")
                       .AddField("line_item_id", FieldType::kLong)
                       .AddField("cost", FieldType::kDouble)
                       .Build();
    EXPECT_TRUE(registry_.Register(bid_schema_).ok());
    EXPECT_TRUE(registry_.Register(imp_schema_).ok());
    central_ = std::make_unique<ScrubCentral>(&registry_);
  }

  CentralPlan PlanFor(std::string_view text, uint64_t hosts_targeted = 1,
                      uint64_t hosts_sampled = 1) {
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    Result<QueryPlan> plan = PlanQuery(*aq, next_id_++, /*submit=*/0);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    CentralPlan central = plan->central;
    central.hosts_targeted = hosts_targeted;
    central.hosts_sampled = hosts_sampled;
    return central;
  }

  // Packs events into a batch from `host` with optional counters.
  EventBatch MakeBatch(QueryId qid, HostId host, std::vector<Event> events,
                       std::vector<WindowCounter> counters = {}) {
    EventBatch batch;
    batch.query_id = qid;
    batch.host = host;
    batch.event_count = events.size();
    batch.payload = EncodeBatch(events);
    batch.counters = std::move(counters);
    return batch;
  }

  Event MakeBid(RequestId rid, TimeMicros ts, int64_t user, double price) {
    Event e(bid_schema_, rid, ts);
    e.SetField(0, Value(user));
    e.SetField(1, Value(price));
    return e;
  }

  Event MakeImpression(RequestId rid, TimeMicros ts, int64_t item,
                       double cost) {
    Event e(imp_schema_, rid, ts);
    e.SetField(0, Value(item));
    e.SetField(1, Value(cost));
    return e;
  }

  SchemaRegistry registry_;
  SchemaPtr bid_schema_;
  SchemaPtr imp_schema_;
  std::unique_ptr<ScrubCentral> central_;
  QueryId next_id_ = 1;
  std::vector<ResultRow> rows_;

  ResultSink Sink() {
    return [this](const ResultRow& row) { rows_.push_back(row); };
  }
};

TEST_F(CentralTest, GroupByCountAcrossWindows) {
  CentralPlan plan = PlanFor(
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "WINDOW 1 s DURATION 10 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  std::vector<Event> events;
  // Window 0: user 1 twice, user 2 once. Window 1: user 1 once.
  events.push_back(MakeBid(1, 100, 1, 1.0));
  events.push_back(MakeBid(2, 200, 1, 1.0));
  events.push_back(MakeBid(3, 300, 2, 1.0));
  events.push_back(MakeBid(4, 1'200'000, 1, 1.0));
  ASSERT_TRUE(central_->IngestBatch(MakeBatch(plan.query_id, 0, events), 0)
                  .ok());
  central_->OnTick(20 * kMicrosPerSecond);

  std::map<std::pair<TimeMicros, int64_t>, int64_t> got;
  for (const ResultRow& row : rows_) {
    got[{row.window_start, row.values[0].AsInt()}] = row.values[1].AsInt();
  }
  EXPECT_EQ(got.size(), 3u);
  EXPECT_EQ((got[{0, 1}]), 2);
  EXPECT_EQ((got[{0, 2}]), 1);
  EXPECT_EQ((got[{1'000'000, 1}]), 1);
}

TEST_F(CentralTest, AllAggregateFunctions) {
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*), SUM(bid.price), AVG(bid.price), MIN(bid.price), "
      "MAX(bid.price), COUNT_DISTINCT(bid.user_id), TOPK(2, bid.user_id) "
      "FROM bid WINDOW 10 s DURATION 10 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  std::vector<Event> events;
  for (int i = 0; i < 10; ++i) {
    // Users 1..5 twice each; prices 1..10.
    events.push_back(MakeBid(static_cast<RequestId>(i), 100 + i,
                             (i % 5) + 1, i + 1.0));
  }
  ASSERT_TRUE(central_->IngestBatch(MakeBatch(plan.query_id, 0, events), 0)
                  .ok());
  central_->OnTick(30 * kMicrosPerSecond);
  ASSERT_EQ(rows_.size(), 1u);
  const ResultRow& row = rows_[0];
  EXPECT_EQ(row.values[0], Value(int64_t{10}));
  EXPECT_EQ(row.values[1], Value(55.0));
  EXPECT_EQ(row.values[2], Value(5.5));
  EXPECT_EQ(row.values[3], Value(1.0));
  EXPECT_EQ(row.values[4], Value(10.0));
  EXPECT_EQ(row.values[5], Value(int64_t{5}));
  ASSERT_TRUE(row.values[6].is_list());
  EXPECT_EQ(row.values[6].AsList().size(), 2u);  // top-2 users
}

TEST_F(CentralTest, EmptyWindowStillEmitsForUngroupedQuery) {
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 3 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  // One event in the middle window only.
  ASSERT_TRUE(central_
                  ->IngestBatch(MakeBatch(plan.query_id, 0,
                                          {MakeBid(1, 1'500'000, 1, 1.0)}),
                                0)
                  .ok());
  central_->OnTick(10 * kMicrosPerSecond);
  // Windows at 0s and 1s got data ingested or created? Only the window the
  // event touched exists plus... ungrouped queries emit for *created*
  // windows; window 1 exists, emits count=1.
  ASSERT_FALSE(rows_.empty());
  bool found = false;
  for (const ResultRow& row : rows_) {
    if (row.window_start == 1'000'000) {
      EXPECT_EQ(row.values[0], Value(int64_t{1}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(CentralTest, RawModeEmitsPerEvent) {
  CentralPlan plan = PlanFor(
      "SELECT bid.user_id, bid.price FROM bid WINDOW 10 s DURATION 10 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  ASSERT_TRUE(central_
                  ->IngestBatch(MakeBatch(plan.query_id, 0,
                                          {MakeBid(1, 100, 4, 2.5),
                                           MakeBid(2, 200, 5, 3.5)}),
                                0)
                  .ok());
  // Raw rows are eager: no tick needed.
  ASSERT_EQ(rows_.size(), 2u);
  EXPECT_EQ(rows_[0].values[0], Value(int64_t{4}));
  EXPECT_EQ(rows_[1].values[1], Value(3.5));
}

TEST_F(CentralTest, JoinMatchesWithinWindowOnly) {
  CentralPlan plan = PlanFor(
      "SELECT impression.line_item_id, COUNT(*) FROM bid, impression "
      "GROUP BY impression.line_item_id WINDOW 1 s DURATION 10 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  std::vector<Event> events;
  // rid 1: bid + impression in same window -> joins.
  events.push_back(MakeBid(1, 100, 1, 1.0));
  events.push_back(MakeImpression(1, 200, 77, 0.001));
  // rid 2: bid in window 0, impression in window 1 -> no join.
  events.push_back(MakeBid(2, 900'000, 1, 1.0));
  events.push_back(MakeImpression(2, 1'100'000, 88, 0.001));
  ASSERT_TRUE(central_->IngestBatch(MakeBatch(plan.query_id, 0, events), 0)
                  .ok());
  central_->OnTick(20 * kMicrosPerSecond);
  ASSERT_EQ(rows_.size(), 1u);
  EXPECT_EQ(rows_[0].values[0], Value(int64_t{77}));
  EXPECT_EQ(rows_[0].values[1], Value(int64_t{1}));
  const CentralQueryStats* stats = central_->StatsFor(plan.query_id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->tuples_joined, 1u);
  EXPECT_GT(stats->join_orphans, 0u);
}

TEST_F(CentralTest, JoinCrossProductForRepeatedRequestIds) {
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid, impression WINDOW 10 s DURATION 10 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  std::vector<Event> events;
  // One bid and three impressions on the same request id: 3 tuples.
  events.push_back(MakeBid(5, 100, 1, 1.0));
  events.push_back(MakeImpression(5, 200, 1, 0.001));
  events.push_back(MakeImpression(5, 300, 2, 0.001));
  events.push_back(MakeImpression(5, 400, 3, 0.001));
  ASSERT_TRUE(central_->IngestBatch(MakeBatch(plan.query_id, 0, events), 0)
                  .ok());
  central_->OnTick(30 * kMicrosPerSecond);
  ASSERT_EQ(rows_.size(), 1u);
  EXPECT_EQ(rows_[0].values[0], Value(int64_t{3}));
}

TEST_F(CentralTest, LateEventsDroppedAndCounted) {
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 10 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  ASSERT_TRUE(central_
                  ->IngestBatch(
                      MakeBatch(plan.query_id, 0, {MakeBid(1, 100, 1, 1.0)}),
                      0)
                  .ok());
  // Close window 0 (end 1s + 2s lateness).
  central_->OnTick(4 * kMicrosPerSecond);
  ASSERT_EQ(rows_.size(), 1u);
  // A straggler for window 0 arrives after the close.
  ASSERT_TRUE(central_
                  ->IngestBatch(
                      MakeBatch(plan.query_id, 0, {MakeBid(2, 500, 1, 1.0)}),
                      0)
                  .ok());
  const CentralQueryStats* stats = central_->StatsFor(plan.query_id);
  EXPECT_EQ(stats->events_late, 1u);
  // No duplicate emission for the closed window.
  central_->OnTick(20 * kMicrosPerSecond);
  for (const ResultRow& row : rows_) {
    if (row.window_start == 0) {
      EXPECT_EQ(row.values[0], Value(int64_t{1}));
    }
  }
}

TEST_F(CentralTest, BatchForUnknownQueryIsIgnored) {
  EventBatch batch = MakeBatch(999, 0, {MakeBid(1, 100, 1, 1.0)});
  EXPECT_TRUE(central_->IngestBatch(batch, 0).ok());
}

TEST_F(CentralTest, DuplicateInstallRejected) {
  CentralPlan plan = PlanFor("SELECT COUNT(*) FROM bid;");
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  EXPECT_EQ(central_->InstallQuery(plan, Sink()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CentralTest, RemoveQueryFlushesOpenWindows) {
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 60 s DURATION 60 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  ASSERT_TRUE(central_
                  ->IngestBatch(
                      MakeBatch(plan.query_id, 0, {MakeBid(1, 100, 1, 1.0)}),
                      0)
                  .ok());
  EXPECT_TRUE(rows_.empty());
  central_->RemoveQuery(plan.query_id);
  ASSERT_EQ(rows_.size(), 1u);
  EXPECT_FALSE(central_->HasQuery(plan.query_id));
  EXPECT_NE(central_->StatsFor(plan.query_id), nullptr);
}

TEST_F(CentralTest, QueryRetiresAfterSpanPlusGrace) {
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 2 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  central_->OnTick(1 * kMicrosPerSecond);
  EXPECT_TRUE(central_->HasQuery(plan.query_id));
  central_->OnTick(10 * kMicrosPerSecond);
  EXPECT_FALSE(central_->HasQuery(plan.query_id));
}

TEST_F(CentralTest, SampledCountScalesByCounters) {
  // One host, event sampling 25%: seen=400, sampled=100, all shipped.
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 10 s DURATION 10 s "
      "SAMPLE EVENTS 25%;",
      /*hosts_targeted=*/1, /*hosts_sampled=*/1);
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  std::vector<Event> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back(MakeBid(static_cast<RequestId>(i), 100 + i, 1, 1.0));
  }
  std::vector<WindowCounter> counters = {{0, 400, 100}};
  ASSERT_TRUE(central_
                  ->IngestBatch(
                      MakeBatch(plan.query_id, 0, events, counters), 0)
                  .ok());
  central_->OnTick(30 * kMicrosPerSecond);
  ASSERT_EQ(rows_.size(), 1u);
  ASSERT_TRUE(rows_[0].values[0].is_double());
  // (M/m) * m readings of 1 = M = 400.
  EXPECT_NEAR(rows_[0].values[0].AsDoubleExact(), 400.0, 1e-6);
}

TEST_F(CentralTest, HostSamplingExtrapolatesAcrossFleet) {
  // 10 hosts targeted, 2 sampled; each sampled host reports 50 events.
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 10 s DURATION 10 s "
      "SAMPLE HOSTS 20%;",
      /*hosts_targeted=*/10, /*hosts_sampled=*/2);
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  for (HostId host = 0; host < 2; ++host) {
    std::vector<Event> events;
    for (int i = 0; i < 50; ++i) {
      events.push_back(
          MakeBid(static_cast<RequestId>(host * 1000 + i), 100 + i, 1, 1.0));
    }
    std::vector<WindowCounter> counters = {{0, 50, 50}};
    ASSERT_TRUE(central_
                    ->IngestBatch(
                        MakeBatch(plan.query_id, host, events, counters), 0)
                    .ok());
  }
  central_->OnTick(30 * kMicrosPerSecond);
  ASSERT_EQ(rows_.size(), 1u);
  // (N/n) * sum M_i = (10/2) * 100 = 500.
  EXPECT_NEAR(rows_[0].values[0].AsDoubleExact(), 500.0, 1e-6);
}

TEST_F(CentralTest, GroupedScaledCountsUseRatioEstimator) {
  CentralPlan plan = PlanFor(
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "WINDOW 10 s DURATION 10 s SAMPLE EVENTS 50%;",
      /*hosts_targeted=*/1, /*hosts_sampled=*/1);
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  std::vector<Event> events;
  for (int i = 0; i < 20; ++i) {
    events.push_back(MakeBid(static_cast<RequestId>(i), 100 + i, 1, 1.0));
  }
  // Agent saw 40, sampled 20 (rate 0.5 exactly).
  std::vector<WindowCounter> counters = {{0, 40, 20}};
  ASSERT_TRUE(central_
                  ->IngestBatch(
                      MakeBatch(plan.query_id, 0, events, counters), 0)
                  .ok());
  central_->OnTick(30 * kMicrosPerSecond);
  ASSERT_EQ(rows_.size(), 1u);
  // 20 observed * (40/20) = 40.
  EXPECT_NEAR(rows_[0].values[1].AsDoubleExact(), 40.0, 1e-6);
}

// --- Sequenced-batch dedup and completeness ---------------------------------

TEST_F(CentralTest, SequencedDuplicateBatchesFoldOnlyOnce) {
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 60 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  EventBatch batch = MakeBatch(plan.query_id, 0, {MakeBid(1, 100, 1, 1.0)},
                               {{0, 1, 1}});
  batch.seq = 1;
  // A retransmit that raced its ack: same batch arrives twice. Events AND
  // counters must fold exactly once.
  ASSERT_TRUE(central_->IngestBatch(batch, 0).ok());
  ASSERT_TRUE(central_->IngestBatch(batch, 0).ok());
  central_->OnTick(10 * kMicrosPerSecond);
  ASSERT_EQ(rows_.size(), 1u);
  EXPECT_EQ(rows_[0].values[0].AsInt(), 1);
  const CentralQueryStats* stats = central_->StatsFor(plan.query_id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->batches, 2u);
  EXPECT_EQ(stats->batches_duplicate, 1u);
  EXPECT_EQ(stats->events_ingested, 1u);
}

TEST_F(CentralTest, OutOfOrderSequencesAreNotDuplicates) {
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 60 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  EventBatch second = MakeBatch(plan.query_id, 0, {MakeBid(2, 200, 1, 1.0)});
  second.seq = 2;
  EventBatch first = MakeBatch(plan.query_id, 0, {MakeBid(1, 100, 1, 1.0)});
  first.seq = 1;
  // Reordered network: seq 2 overtakes seq 1. Both are fresh data.
  ASSERT_TRUE(central_->IngestBatch(second, 0).ok());
  ASSERT_TRUE(central_->IngestBatch(first, 0).ok());
  central_->OnTick(10 * kMicrosPerSecond);
  ASSERT_EQ(rows_.size(), 1u);
  EXPECT_EQ(rows_[0].values[0].AsInt(), 2);
  EXPECT_EQ(central_->StatsFor(plan.query_id)->batches_duplicate, 0u);
}

TEST_F(CentralTest, EpochsSeparateAgentIncarnations) {
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 60 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  EventBatch before = MakeBatch(plan.query_id, 0, {MakeBid(1, 100, 1, 1.0)});
  before.seq = 1;
  before.epoch = 0;
  // The host restarted: the fresh agent starts its stream at seq 1 again,
  // but under a bumped epoch, so it is not mistaken for a duplicate.
  EventBatch after = MakeBatch(plan.query_id, 0, {MakeBid(2, 200, 1, 1.0)});
  after.seq = 1;
  after.epoch = 1;
  ASSERT_TRUE(central_->IngestBatch(before, 0).ok());
  ASSERT_TRUE(central_->IngestBatch(after, 0).ok());
  central_->OnTick(10 * kMicrosPerSecond);
  ASSERT_EQ(rows_.size(), 1u);
  EXPECT_EQ(rows_[0].values[0].AsInt(), 2);
  EXPECT_EQ(central_->StatsFor(plan.query_id)->batches_duplicate, 0u);
}

TEST_F(CentralTest, CompletenessReflectsHostsHeardFrom) {
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 60 s;",
      /*hosts_targeted=*/4, /*hosts_sampled=*/4);
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  // Only 2 of the 4 expected hosts reach central before the window closes.
  for (HostId host : {HostId{0}, HostId{1}}) {
    ASSERT_TRUE(central_
                    ->IngestBatch(MakeBatch(plan.query_id, host,
                                            {MakeBid(host + 1, 100, 1, 1.0)},
                                            {{0, 1, 1}}),
                                  0)
                    .ok());
  }
  central_->OnTick(10 * kMicrosPerSecond);
  ASSERT_EQ(rows_.size(), 1u);
  EXPECT_DOUBLE_EQ(rows_[0].completeness, 0.5);
  EXPECT_NE(rows_[0].ToString().find("[completeness 0.50]"),
            std::string::npos);
  const CentralQueryStats* stats = central_->StatsFor(plan.query_id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->windows_incomplete, 1u);
  EXPECT_DOUBLE_EQ(stats->completeness_min, 0.5);
}

TEST_F(CentralTest, FullAttendanceRowsStayCleanlyRendered) {
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 60 s;",
      /*hosts_targeted=*/2, /*hosts_sampled=*/2);
  ASSERT_TRUE(central_->InstallQuery(plan, Sink()).ok());
  for (HostId host : {HostId{0}, HostId{1}}) {
    // A heartbeat counter is enough to count as heard-from.
    ASSERT_TRUE(central_
                    ->IngestBatch(MakeBatch(plan.query_id, host,
                                            host == 0
                                                ? std::vector<Event>{MakeBid(
                                                      1, 100, 1, 1.0)}
                                                : std::vector<Event>{},
                                            {{0, 0, 0}}),
                                  0)
                    .ok());
  }
  central_->OnTick(10 * kMicrosPerSecond);
  ASSERT_EQ(rows_.size(), 1u);
  EXPECT_DOUBLE_EQ(rows_[0].completeness, 1.0);
  // Complete windows render exactly as before completeness existed.
  EXPECT_EQ(rows_[0].ToString().find("completeness"), std::string::npos);
  const CentralQueryStats* stats = central_->StatsFor(plan.query_id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->windows_incomplete, 0u);
}

}  // namespace
}  // namespace scrub
