// Tests for nested-object field access in queries (paper Section 3.1:
// events may carry nested, XML-ish objects). References like bid.device.os
// descend into object fields; nested values are dynamically typed.

#include <map>

#include <gtest/gtest.h>

#include "src/plan/expr_eval.h"
#include "src/plan/plan.h"
#include "src/query/analyzer.h"
#include "src/scrub/scrub_system.h"

namespace scrub {
namespace {

class NestedObjectTest : public ::testing::Test {
 protected:
  NestedObjectTest() {
    schema_ = *EventSchema::Builder("bid")
                   .AddField("user_id", FieldType::kLong)
                   .AddField("device", FieldType::kObject)
                   .Build();
    EXPECT_TRUE(registry_.Register(schema_).ok());
  }

  Event MakeBid(RequestId rid, int64_t user, const char* os, int64_t gen) {
    Event e(schema_, rid, 100);
    e.SetField(0, Value(user));
    NestedObject hw;
    hw.fields.emplace_back("generation", Value(gen));
    NestedObject device;
    device.fields.emplace_back("os", Value(os));
    device.fields.emplace_back("hw", Value(std::move(hw)));
    e.SetField(1, Value(std::move(device)));
    return e;
  }

  CompiledExpr CompileWhere(std::string_view text) {
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    Result<CompiledExpr> compiled =
        CompileExpr(*aq->query.where, aq->query.sources, aq->schemas);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    return std::move(compiled).value();
  }

  SchemaRegistry registry_;
  SchemaPtr schema_;
};

TEST_F(NestedObjectTest, QualifiedPathResolves) {
  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      "SELECT COUNT(*) FROM bid WHERE bid.device.os = 'ios';", registry_);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
}

TEST_F(NestedObjectTest, UnqualifiedPathResolves) {
  // "device.os": 'device' is not an event type, so the analyzer treats it
  // as a field with a nested path.
  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      "SELECT COUNT(*) FROM bid WHERE device.os = 'ios';", registry_);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  EXPECT_EQ(aq->query.where->children[0]->field, "device");
  EXPECT_EQ(aq->query.where->children[0]->path,
            std::vector<std::string>{"os"});
}

TEST_F(NestedObjectTest, PathIntoNonObjectRejected) {
  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      "SELECT COUNT(*) FROM bid WHERE bid.user_id.bits = 1;", registry_);
  ASSERT_FALSE(aq.ok());
  EXPECT_NE(aq.status().message().find("nested object"), std::string::npos);
}

TEST_F(NestedObjectTest, PredicateOnNestedString) {
  const CompiledExpr pred =
      CompileWhere("SELECT COUNT(*) FROM bid WHERE bid.device.os = 'ios';");
  EXPECT_TRUE(EvalPredicateSingle(pred, MakeBid(1, 1, "ios", 3)));
  EXPECT_FALSE(EvalPredicateSingle(pred, MakeBid(2, 2, "android", 3)));
}

TEST_F(NestedObjectTest, DeepPathAndArithmetic) {
  const CompiledExpr pred = CompileWhere(
      "SELECT COUNT(*) FROM bid WHERE bid.device.hw.generation + 1 > 3;");
  EXPECT_TRUE(EvalPredicateSingle(pred, MakeBid(1, 1, "ios", 3)));
  EXPECT_FALSE(EvalPredicateSingle(pred, MakeBid(2, 1, "ios", 1)));
}

TEST_F(NestedObjectTest, MissingPathYieldsNull) {
  const CompiledExpr pred = CompileWhere(
      "SELECT COUNT(*) FROM bid WHERE bid.device.carrier = 'tmo';");
  // Field exists but has no 'carrier' member: null never matches equality.
  EXPECT_FALSE(EvalPredicateSingle(pred, MakeBid(1, 1, "ios", 3)));
  // Unset object field entirely.
  Event bare(schema_, 9, 100);
  EXPECT_FALSE(EvalPredicateSingle(pred, bare));
}

TEST_F(NestedObjectTest, GroupByNestedPath) {
  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      "SELECT bid.device.os, COUNT(*) FROM bid GROUP BY bid.device.os;",
      registry_);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  Result<QueryPlan> plan = PlanQuery(*aq, 1, 0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->central.outputs.size(), 2u);
  EXPECT_EQ(plan->central.outputs[0].expr.kind, OutputKind::kGroupKey);
}

TEST_F(NestedObjectTest, EndToEndGroupByDeviceOs) {
  SystemConfig config;
  config.seed = 71;
  config.platform.seed = 71;
  config.platform.datacenters = 1;
  config.platform.bidservers_per_dc = 2;
  config.platform.adservers_per_dc = 1;
  ScrubSystem system(config);
  PoissonLoadConfig load;
  load.requests_per_second = 400;
  load.duration = 5 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);

  std::map<std::string, uint64_t> by_os;
  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT bid.device.os, COUNT(*) FROM bid GROUP BY bid.device.os "
      "WINDOW 5 s DURATION 5 s;",
      [&by_os](const ResultRow& row) {
        by_os[row.values[0].AsString()] +=
            static_cast<uint64_t>(row.values[1].AsInt());
      });
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  system.RunUntil(6 * kMicrosPerSecond);
  system.Drain();

  // The platform assigns one of four OSes by user id; all four appear.
  EXPECT_EQ(by_os.size(), 4u);
  uint64_t total = 0;
  for (const auto& [os, n] : by_os) {
    EXPECT_GT(n, 0u) << os;
    total += n;
  }
  EXPECT_GT(total, 500u);
}

}  // namespace
}  // namespace scrub
