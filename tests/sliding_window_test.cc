// Tests for the sliding-window extension (paper Section 3.2: "Currently,
// only tumbling windows are supported, but Scrub can easily be extended to
// allow sliding windows").

#include <map>

#include <gtest/gtest.h>

#include "src/central/central.h"
#include "src/event/wire.h"
#include "src/query/analyzer.h"
#include "src/query/parser.h"
#include "src/scrub/scrub_system.h"

namespace scrub {
namespace {

TEST(SlidingWindowParseTest, WindowSlideClause) {
  Result<Query> q = ParseQuery(
      "SELECT COUNT(*) FROM bid WINDOW 10 s SLIDE 2 s DURATION 60 s;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->window_micros, 10 * kMicrosPerSecond);
  EXPECT_EQ(q->slide_micros, 2 * kMicrosPerSecond);
  // Round-trips.
  Result<Query> again = ParseQuery(q->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->slide_micros, q->slide_micros);
}

TEST(SlidingWindowParseTest, AnalyzerValidatesSlide) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry
                  .Register(*EventSchema::Builder("bid")
                                 .AddField("user_id", FieldType::kLong)
                                 .Build())
                  .ok());
  // Slide > window.
  EXPECT_FALSE(ParseAndAnalyze(
                   "SELECT COUNT(*) FROM bid WINDOW 2 s SLIDE 5 s "
                   "DURATION 60 s;",
                   registry)
                   .ok());
  // Window not a multiple of slide.
  EXPECT_FALSE(ParseAndAnalyze(
                   "SELECT COUNT(*) FROM bid WINDOW 10 s SLIDE 3 s "
                   "DURATION 60 s;",
                   registry)
                   .ok());
  // Tumbling default: slide filled in.
  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      "SELECT COUNT(*) FROM bid WINDOW 10 s DURATION 60 s;", registry);
  ASSERT_TRUE(aq.ok());
  EXPECT_EQ(aq->query.slide_micros, aq->query.window_micros);
}

class SlidingCentralTest : public ::testing::Test {
 protected:
  SlidingCentralTest() {
    schema_ = *EventSchema::Builder("bid")
                   .AddField("user_id", FieldType::kLong)
                   .Build();
    EXPECT_TRUE(registry_.Register(schema_).ok());
    central_ = std::make_unique<ScrubCentral>(&registry_);
  }

  CentralPlan PlanFor(std::string_view text) {
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    Result<QueryPlan> plan = PlanQuery(*aq, 1, 0);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    CentralPlan central = plan->central;
    central.hosts_targeted = 1;
    central.hosts_sampled = 1;
    return central;
  }

  void Ingest(QueryId qid, std::vector<Event> events) {
    EventBatch batch;
    batch.query_id = qid;
    batch.host = 0;
    batch.event_count = events.size();
    batch.payload = EncodeBatch(events);
    ASSERT_TRUE(central_->IngestBatch(batch, 0).ok());
  }

  Event MakeBid(RequestId rid, TimeMicros ts) {
    Event e(schema_, rid, ts);
    e.SetField(0, Value(int64_t{1}));
    return e;
  }

  SchemaRegistry registry_;
  SchemaPtr schema_;
  std::unique_ptr<ScrubCentral> central_;
  std::vector<ResultRow> rows_;
};

TEST_F(SlidingCentralTest, EventCountedInEveryCoveringWindow) {
  // Window 4 s, slide 1 s: an event at t=5.5 s belongs to windows starting
  // at 2, 3, 4, 5 s.
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 4 s SLIDE 1 s DURATION 20 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, [this](const ResultRow& row) {
    rows_.push_back(row);
  }).ok());
  Ingest(plan.query_id, {MakeBid(1, 5'500'000)});
  central_->OnTick(60 * kMicrosPerSecond);

  std::map<TimeMicros, int64_t> counts;
  for (const ResultRow& row : rows_) {
    if (row.values[0].AsInt() > 0) {
      counts[row.window_start] = row.values[0].AsInt();
    }
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const TimeMicros start :
       {2'000'000, 3'000'000, 4'000'000, 5'000'000}) {
    EXPECT_EQ(counts[start], 1) << "window " << start;
  }
}

TEST_F(SlidingCentralTest, EarlyEventsOnlyInValidWindows) {
  // An event at t=0.5 s with window 4 s / slide 1 s: only the window at 0
  // exists (windows cannot start before the query).
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 4 s SLIDE 1 s DURATION 20 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, [this](const ResultRow& row) {
    rows_.push_back(row);
  }).ok());
  Ingest(plan.query_id, {MakeBid(1, 500'000)});
  central_->OnTick(60 * kMicrosPerSecond);
  int windows_with_event = 0;
  for (const ResultRow& row : rows_) {
    if (row.values[0].AsInt() > 0) {
      ++windows_with_event;
      EXPECT_EQ(row.window_start, 0);
    }
  }
  EXPECT_EQ(windows_with_event, 1);
}

TEST_F(SlidingCentralTest, SlidingAverageSmoothsAcrossWindows) {
  // Events at 1s..6s, one per second, value user_id=1. COUNT over 3s/1s
  // sliding windows forms the classic ramp-plateau-ramp shape.
  CentralPlan plan = PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 3 s SLIDE 1 s DURATION 20 s;");
  ASSERT_TRUE(central_->InstallQuery(plan, [this](const ResultRow& row) {
    rows_.push_back(row);
  }).ok());
  std::vector<Event> events;
  for (int s = 1; s <= 6; ++s) {
    events.push_back(MakeBid(static_cast<RequestId>(s),
                             s * kMicrosPerSecond + 1000));
  }
  Ingest(plan.query_id, std::move(events));
  central_->OnTick(60 * kMicrosPerSecond);
  std::map<TimeMicros, int64_t> counts;
  for (const ResultRow& row : rows_) {
    counts[row.window_start / kMicrosPerSecond] = row.values[0].AsInt();
  }
  // Window [4,7) holds events at 4,5,6 -> 3; window [6,9) holds only 6 -> 1.
  EXPECT_EQ(counts[4], 3);
  EXPECT_EQ(counts[5], 2);
  EXPECT_EQ(counts[6], 1);
}

TEST(SlidingIntegrationTest, EndToEndSlidingCount) {
  SystemConfig config;
  config.seed = 61;
  config.platform.seed = 61;
  config.platform.datacenters = 1;
  config.platform.bidservers_per_dc = 2;
  config.platform.adservers_per_dc = 1;
  ScrubSystem system(config);
  PoissonLoadConfig load;
  load.requests_per_second = 300;
  load.duration = 10 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);

  std::map<TimeMicros, double> series;
  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT COUNT(*) FROM bid WINDOW 4 s SLIDE 2 s DURATION 10 s;",
      [&series](const ResultRow& row) {
        series[row.window_start] = static_cast<double>(row.values[0].AsInt());
      });
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  system.RunUntil(11 * kMicrosPerSecond);
  system.Drain();

  // Windows at 0,2,4,6,8 s (those starting within the span).
  ASSERT_GE(series.size(), 4u);
  // Steady traffic: interior 4-second windows hold roughly twice the events
  // of a 2-second slide; ratio between adjacent interior windows is ~1.
  const double w2 = series[2 * kMicrosPerSecond];
  const double w4 = series[4 * kMicrosPerSecond];
  EXPECT_GT(w2, 0);
  EXPECT_GT(w4, 0);
  EXPECT_NEAR(w2 / w4, 1.0, 0.35);
}

}  // namespace
}  // namespace scrub
