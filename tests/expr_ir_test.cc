// Expression-IR unit tests: the structural verifier's rejection contract,
// install-time constant folding, abstract-interpreter classification and
// notes, conjunct-set contradiction/redundancy detection, disassembly, and
// the columnar batch kernel agreeing with row evaluation.

#include "src/plan/expr_ir.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/event/column_batch.h"
#include "src/event/event.h"
#include "src/event/schema.h"
#include "src/plan/expr_analysis.h"

namespace scrub {
namespace {

CompiledExpr Lit(Value v) {
  CompiledExpr e;
  e.kind = CompiledKind::kLiteral;
  e.literal = std::move(v);
  return e;
}

CompiledExpr FieldRef(int index) {
  CompiledExpr e;
  e.kind = CompiledKind::kField;
  e.source = 0;
  e.field_index = index;
  return e;
}

CompiledExpr Bin(BinaryOp op, CompiledExpr lhs, CompiledExpr rhs) {
  CompiledExpr e;
  e.kind = CompiledKind::kBinary;
  e.binary_op = op;
  e.children.push_back(std::move(lhs));
  e.children.push_back(std::move(rhs));
  e.node_count = 1 + e.children[0].node_count + e.children[1].node_count;
  return e;
}

CompiledExpr Un(UnaryOp op, CompiledExpr operand) {
  CompiledExpr e;
  e.kind = CompiledKind::kUnary;
  e.unary_op = op;
  e.children.push_back(std::move(operand));
  e.node_count = 1 + e.children[0].node_count;
  return e;
}

class ExprIrTest : public ::testing::Test {
 protected:
  ExprIrTest() {
    schema_ = *EventSchema::Builder("bid")
                   .AddField("won", FieldType::kBool)
                   .AddField("user_id", FieldType::kLong)
                   .AddField("price", FieldType::kDouble)
                   .AddField("country", FieldType::kString)
                   .Build();
    schemas_ = {schema_};
  }

  Event MakeBid(uint64_t rid, int64_t user, double price,
                const std::string& country) const {
    Event e(schema_, rid, static_cast<TimeMicros>(1000 + rid));
    e.SetField(0, Value(rid % 2 == 0));
    e.SetField(1, Value(user));
    e.SetField(2, Value(price));
    e.SetField(3, Value(country));
    return e;
  }

  SchemaPtr schema_;
  std::vector<SchemaPtr> schemas_;
};

// ---------------------------------------------------------------------------
// Verifier.

TEST_F(ExprIrTest, VerifierAcceptsLoweredPrograms) {
  const CompiledExpr expr = Bin(
      BinaryOp::kAnd,
      Bin(BinaryOp::kGt, FieldRef(2), Lit(Value(2.5))),
      Bin(BinaryOp::kOr, Bin(BinaryOp::kEq, FieldRef(3), Lit(Value("US"))),
          Un(UnaryOp::kNot, FieldRef(0))));
  const ExprProgram p = LowerExpr(expr, schemas_, /*fold=*/false);
  EXPECT_TRUE(VerifyProgram(p).ok()) << VerifyProgram(p).ToString();
}

TEST_F(ExprIrTest, VerifierRejectsMalformedPrograms) {
  // An empty program has no result register to read.
  EXPECT_FALSE(VerifyProgram(ExprProgram{}).ok());

  // A minimal valid base: r0 <- const 2.5; r1 <- const 2.5; r2 <- r0 > r1.
  ExprProgram base;
  base.consts = {Value(2.5)};
  base.insts.push_back({IrOp::kConst, kMaskDouble, 0, 0, 0, 0});
  base.insts.push_back({IrOp::kConst, kMaskDouble, 1, 0, 0, 0});
  base.insts.push_back({IrOp::kGt, kMaskBool, 2, 0, 1, -1});
  base.num_regs = 3;
  base.result = 2;
  ASSERT_TRUE(VerifyProgram(base).ok()) << VerifyProgram(base).ToString();

  {  // Operand register read before any definition.
    ExprProgram p = base;
    p.insts[2].a = 5;
    p.num_regs = 6;
    EXPECT_FALSE(VerifyProgram(p).ok());
  }
  {  // Destination register out of range.
    ExprProgram p = base;
    p.insts[2].dst = 9;
    EXPECT_FALSE(VerifyProgram(p).ok());
  }
  {  // Result register never defined.
    ExprProgram p = base;
    p.num_regs = 4;
    p.result = 3;
    EXPECT_FALSE(VerifyProgram(p).ok());
  }
  {  // Constant-pool index out of range.
    ExprProgram p = base;
    p.insts[0].imm = 7;
    EXPECT_FALSE(VerifyProgram(p).ok());
  }
  {  // Type tag contradicts the pooled constant's class.
    ExprProgram p = base;
    p.insts[0].types = kMaskString;
    EXPECT_FALSE(VerifyProgram(p).ok());
  }
  {  // Comparisons must be tagged exactly bool.
    ExprProgram p = base;
    p.insts[2].types = kMaskDouble;
    EXPECT_FALSE(VerifyProgram(p).ok());
  }
  {  // Jumps are forward-only; a self/backward target must be rejected.
    ExprProgram p = base;
    p.insts.push_back({IrOp::kJumpIfFalse, 0, 0, 2, 0, 1});
    EXPECT_FALSE(VerifyProgram(p).ok());
  }
  {  // Jump target past the end of the program (insts.size() is the legal
     // maximum: "fall off the end").
    ExprProgram p = base;
    p.insts.push_back({IrOp::kJumpIfFalse, 0, 0, 2, 0, 9});
    EXPECT_FALSE(VerifyProgram(p).ok());
  }
  {  // Field load against a source the program does not declare.
    ExprProgram p = base;
    p.insts[1] = {IrOp::kLoadField, kMaskAny, 1, 3, 0, -1};
    p.source_count = 1;
    EXPECT_FALSE(VerifyProgram(p).ok());
  }
}

// ---------------------------------------------------------------------------
// Folding.

TEST_F(ExprIrTest, ConstantSubtreesFoldAtLowering) {
  const CompiledExpr expr =
      Bin(BinaryOp::kAdd, Lit(Value(int64_t{1})),
          Bin(BinaryOp::kMul, Lit(Value(int64_t{2})), Lit(Value(int64_t{3}))));
  const ExprProgram p = LowerExpr(expr, schemas_);
  ASSERT_EQ(p.insts.size(), 1u);
  EXPECT_EQ(p.insts[0].op, IrOp::kConst);
  const Event e = MakeBid(1, 10, 3.0, "US");
  EXPECT_EQ(EvalProgramSingle(p, e), Value(int64_t{7}));
}

TEST_F(ExprIrTest, FoldProgramCollapsesDecidableResult) {
  const CompiledExpr expr =
      Bin(BinaryOp::kAdd, Lit(Value(int64_t{1})),
          Bin(BinaryOp::kMul, Lit(Value(int64_t{2})), Lit(Value(int64_t{3}))));
  ExprProgram p = LowerExpr(expr, schemas_, /*fold=*/false);
  ASSERT_GT(p.insts.size(), 1u);
  const ProgramAnalysis analysis = AnalyzeProgram(p);
  ASSERT_TRUE(analysis.result.constant.has_value());
  EXPECT_EQ(*analysis.result.constant, Value(int64_t{7}));
  EXPECT_TRUE(FoldProgram(&p, analysis));
  ASSERT_EQ(p.insts.size(), 1u);
  EXPECT_TRUE(VerifyProgram(p).ok());
  const Event e = MakeBid(1, 10, 3.0, "US");
  EXPECT_EQ(EvalProgramSingle(p, e), Value(int64_t{7}));
}

TEST_F(ExprIrTest, ShortCircuitConstantsDecideConjunctions) {
  // `price > 1 AND false` is false no matter what price holds.
  const ExprProgram and_false = LowerExpr(
      Bin(BinaryOp::kAnd, Bin(BinaryOp::kGt, FieldRef(2), Lit(Value(1.0))),
          Lit(Value(false))),
      schemas_);
  ASSERT_EQ(and_false.insts.size(), 1u);
  EXPECT_EQ(and_false.consts[and_false.insts[0].imm], Value(false));

  const ExprProgram or_true = LowerExpr(
      Bin(BinaryOp::kOr, Bin(BinaryOp::kGt, FieldRef(2), Lit(Value(1.0))),
          Lit(Value(true))),
      schemas_);
  ASSERT_EQ(or_true.insts.size(), 1u);
  EXPECT_EQ(or_true.consts[or_true.insts[0].imm], Value(true));

  // A non-deciding constant side reduces to the other operand (coerced).
  const ExprProgram and_true = LowerExpr(
      Bin(BinaryOp::kAnd, Lit(Value(true)),
          Bin(BinaryOp::kGt, FieldRef(2), Lit(Value(1.0)))),
      schemas_);
  for (const IrInst& inst : and_true.insts) {
    EXPECT_NE(inst.op, IrOp::kJumpIfFalse);
    EXPECT_NE(inst.op, IrOp::kJumpIfTrue);
  }
}

// ---------------------------------------------------------------------------
// Abstract interpretation.

TEST_F(ExprIrTest, AnalysisClassifiesTautologyAndNullCompare) {
  const ExprProgram taut = LowerExpr(
      Bin(BinaryOp::kLt, Lit(Value(int64_t{1})), Lit(Value(int64_t{2}))),
      schemas_, /*fold=*/false);
  EXPECT_EQ(AnalyzeProgram(taut).predicate, PredicateClass::kAlwaysTrue);

  // Ordered comparison against an always-null operand is never true.
  const ExprProgram null_cmp = LowerExpr(
      Bin(BinaryOp::kLt, Lit(Value::Null()), FieldRef(2)), schemas_,
      /*fold=*/false);
  const ProgramAnalysis analysis = AnalyzeProgram(null_cmp);
  EXPECT_EQ(analysis.predicate, PredicateClass::kAlwaysFalse);
  ASSERT_EQ(analysis.notes.size(), 1u);
  EXPECT_EQ(analysis.notes[0].kind, AnalysisNoteKind::kNullOrderedCompare);
}

TEST_F(ExprIrTest, AnalysisFlagsProvableDivisionByZero) {
  const ExprProgram p = LowerExpr(
      Bin(BinaryOp::kDiv, FieldRef(2), Lit(Value(int64_t{0}))), schemas_,
      /*fold=*/false);
  const ProgramAnalysis analysis = AnalyzeProgram(p);
  EXPECT_EQ(analysis.result.types, kMaskNull);
  ASSERT_EQ(analysis.notes.size(), 1u);
  EXPECT_EQ(analysis.notes[0].kind, AnalysisNoteKind::kDivisionByZero);
}

TEST_F(ExprIrTest, TypeDisjointEqualityFolds) {
  // A string field can never equal an integer literal (numeric classes
  // merge, but string vs numeric is disjoint) — though null intrudes, Eq
  // with one null operand is false, so the fold holds.
  const ExprProgram p = LowerExpr(
      Bin(BinaryOp::kEq, FieldRef(3), Lit(Value(int64_t{7}))), schemas_,
      /*fold=*/false);
  EXPECT_EQ(AnalyzeProgram(p).predicate, PredicateClass::kAlwaysFalse);
}

// ---------------------------------------------------------------------------
// Conjunct-set analysis.

TEST_F(ExprIrTest, ConjunctSetDetectsEqualityContradiction) {
  // user_id == 200 AND user_id >= 500.
  const ExprProgram a = LowerExpr(
      Bin(BinaryOp::kEq, FieldRef(1), Lit(Value(int64_t{200}))), schemas_);
  const ExprProgram b = LowerExpr(
      Bin(BinaryOp::kGe, FieldRef(1), Lit(Value(int64_t{500}))), schemas_);
  const ConjunctSetResult r = AnalyzeConjunctSet({&a, &b});
  EXPECT_TRUE(r.contradiction);
  EXPECT_EQ(r.contradiction_source, 0);
  EXPECT_EQ(r.contradiction_field, 1);
}

TEST_F(ExprIrTest, ConjunctSetDetectsEmptyIntegerRange) {
  // user_id > 1 AND user_id < 2: no integer strictly between, and the field
  // is integer-typed, so the band is empty.
  const ExprProgram a = LowerExpr(
      Bin(BinaryOp::kGt, FieldRef(1), Lit(Value(int64_t{1}))), schemas_);
  const ExprProgram b = LowerExpr(
      Bin(BinaryOp::kLt, FieldRef(1), Lit(Value(int64_t{2}))), schemas_);
  EXPECT_TRUE(AnalyzeConjunctSet({&a, &b}).contradiction);

  // The same band on a double field is satisfiable (e.g. 1.5).
  const ExprProgram c = LowerExpr(
      Bin(BinaryOp::kGt, FieldRef(2), Lit(Value(int64_t{1}))), schemas_);
  const ExprProgram d = LowerExpr(
      Bin(BinaryOp::kLt, FieldRef(2), Lit(Value(int64_t{2}))), schemas_);
  EXPECT_FALSE(AnalyzeConjunctSet({&c, &d}).contradiction);
}

TEST_F(ExprIrTest, ConjunctSetMarksImpliedBoundsRedundant) {
  // price > 10 implies price > 5: the weaker bound is redundant.
  const ExprProgram strong =
      LowerExpr(Bin(BinaryOp::kGt, FieldRef(2), Lit(Value(10.0))), schemas_);
  const ExprProgram weak =
      LowerExpr(Bin(BinaryOp::kGt, FieldRef(2), Lit(Value(5.0))), schemas_);
  const ConjunctSetResult r = AnalyzeConjunctSet({&strong, &weak});
  EXPECT_FALSE(r.contradiction);
  EXPECT_EQ(r.redundant, std::vector<int>{1});
}

TEST_F(ExprIrTest, ConjunctSetEqualityPinsSubsumeConsistentBounds) {
  // user_id == 7 AND user_id < 10: the pin decides the range check.
  const ExprProgram pin = LowerExpr(
      Bin(BinaryOp::kEq, FieldRef(1), Lit(Value(int64_t{7}))), schemas_);
  const ExprProgram range = LowerExpr(
      Bin(BinaryOp::kLt, FieldRef(1), Lit(Value(int64_t{10}))), schemas_);
  const ConjunctSetResult r = AnalyzeConjunctSet({&pin, &range});
  EXPECT_FALSE(r.contradiction);
  EXPECT_EQ(r.redundant, std::vector<int>{1});
}

TEST_F(ExprIrTest, ConjunctSetLeavesDisjointFieldsAlone) {
  const ExprProgram a =
      LowerExpr(Bin(BinaryOp::kGt, FieldRef(2), Lit(Value(10.0))), schemas_);
  const ExprProgram b = LowerExpr(
      Bin(BinaryOp::kEq, FieldRef(3), Lit(Value("US"))), schemas_);
  const ConjunctSetResult r = AnalyzeConjunctSet({&a, &b});
  EXPECT_FALSE(r.contradiction);
  EXPECT_TRUE(r.redundant.empty());
}

// ---------------------------------------------------------------------------
// Disassembly.

TEST_F(ExprIrTest, ProgramToStringRendersTypedFieldLoads) {
  const ExprProgram p = LowerExpr(
      Bin(BinaryOp::kGt, FieldRef(2), Lit(Value(2.5))), schemas_,
      /*fold=*/false);
  const std::string text = ProgramToString(p, {"bid"}, schemas_);
  EXPECT_NE(text.find("bid.price"), std::string::npos) << text;
  EXPECT_NE(text.find("null|double"), std::string::npos) << text;
  EXPECT_NE(text.find("bool"), std::string::npos) << text;
  EXPECT_NE(text.find("result:"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Columnar batch kernel.

TEST_F(ExprIrTest, PredicateBatchMatchesRowEvaluation) {
  ColumnBatch batch(schema_);
  std::vector<Event> events;
  for (uint64_t i = 0; i < 32; ++i) {
    Event e = MakeBid(i, static_cast<int64_t>(i % 7), 0.5 * i, "US");
    if (i % 5 == 0) {
      e.SetField(2, Value::Null());  // price null: comparison must be false
    }
    batch.AppendEvent(e);
    events.push_back(std::move(e));
  }
  const CompiledExpr expr =
      Bin(BinaryOp::kGt, FieldRef(2), Lit(Value(4.0)));
  const ExprProgram p = LowerExpr(expr, schemas_);

  std::vector<uint32_t> selection(batch.rows());
  for (uint32_t i = 0; i < batch.rows(); ++i) {
    selection[i] = i;
  }
  EvalProgramPredicateBatch(p, batch, &selection);

  std::vector<uint32_t> expected;
  for (uint32_t i = 0; i < batch.rows(); ++i) {
    if (EvalPredicateSingle(expr, events[i])) {
      expected.push_back(i);
    }
    EXPECT_EQ(EvalProgramPredicateColumns(p, batch, i),
              EvalPredicateSingle(expr, events[i]))
        << "row " << i;
  }
  EXPECT_EQ(selection, expected);
}

}  // namespace
}  // namespace scrub
