// Differential testing: the full Scrub pipeline (host instrumentation →
// agent selection/projection/batching → transport → central join/group/
// aggregate/window) against the naive single-threaded oracle in
// reference_executor.h, over randomized bidding workloads.
//
// Each combo runs a real ScrubSystem with an event tap recording the ground
// truth exactly as hosts log it, then replays that stream through the
// oracle and compares row sets:
//
//  * exact columns (group keys, COUNT, MIN/MAX) must match byte-for-byte;
//  * SUM/AVG must match to float tolerance (accumulation order differs);
//  * COUNT_DISTINCT must land within the HLL error envelope
//    (precision 14: sigma = 1.04/sqrt(2^14) ~ 0.8% relative; we allow 5
//    sigma, floored at +/-2 for tiny cardinalities where the sketch is in
//    its exact linear-counting regime);
//  * TOPK entries must carry exact counts (SpaceSaving is exact while
//    capacity >= distinct keys, which these workloads guarantee) and form
//    a valid top-k of the true ranking, tolerating tie reordering.
//
// The load starts 300 ms into the simulation so query dissemination is
// complete before the first ground-truth event is logged: the tap and the
// agents then observe exactly the same stream.

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/central/sharded_central.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/event/wire.h"
#include "src/scrub/scrub_system.h"
#include "tests/reference_executor.h"

namespace scrub {
namespace {

struct Combo {
  const char* query;
  uint64_t seed;
  double rps = 250.0;
  TimeMicros horizon = 4 * kMicrosPerSecond;
};

std::vector<std::pair<std::string, double>> ParseTopK(const Value& v) {
  std::vector<std::pair<std::string, double>> out;
  EXPECT_TRUE(v.is_list()) << v.ToString();
  if (!v.is_list()) {
    return out;
  }
  for (const Value& entry : v.AsList()) {
    const std::string s = entry.AsString();
    const size_t colon = s.rfind(':');
    EXPECT_NE(colon, std::string::npos) << s;
    out.emplace_back(s.substr(0, colon), std::stod(s.substr(colon + 1)));
  }
  return out;
}

// Scrub's TOPK list vs the oracle's full exact ranking.
void CheckTopK(const Value& scrub_v, const Value& oracle_v, int64_t k,
               const std::string& where) {
  const auto got = ParseTopK(scrub_v);
  const auto truth = ParseTopK(oracle_v);
  const size_t expect_size =
      std::min(static_cast<size_t>(k), truth.size());
  ASSERT_EQ(got.size(), expect_size) << where;
  std::map<std::string, double> truth_counts;
  for (const auto& [key, count] : truth) {
    truth_counts[key] = count;
  }
  double min_returned = 0.0;
  std::map<std::string, bool> returned;
  for (const auto& [key, count] : got) {
    ASSERT_TRUE(truth_counts.count(key) > 0) << where << " key " << key;
    // Counts are exact: capacity >= distinct keys in these workloads.
    EXPECT_DOUBLE_EQ(count, truth_counts[key]) << where << " key " << key;
    returned[key] = true;
    min_returned = returned.size() == 1 ? count
                                        : std::min(min_returned, count);
  }
  // Valid top-k under ties: nothing excluded may outrank anything returned.
  for (const auto& [key, count] : truth) {
    if (returned.count(key) == 0) {
      EXPECT_LE(count, min_returned) << where << " excluded key " << key;
    }
  }
}

// One full ScrubSystem run through the requested pipeline.
struct PipelineRun {
  std::vector<Event> tapped;      // ground truth at the log() call
  std::vector<ResultRow> rows;    // emission order
  std::vector<std::string> transcript;  // full-precision rendering of rows
  QueryId query_id = 0;
  SchemaRegistry* schemas = nullptr;
};

// Full-precision rendering: any cross-pipeline divergence (a float summed in
// a different order, a reordered emission) must fail loudly.
std::string RenderRow(const ResultRow& row) {
  return StrFormat("w%lld %s c=%.17g",
                   static_cast<long long>(row.window_start),
                   row.ToString().c_str(), row.completeness);
}

// Builds and drives one system; returned so the caller can keep its schema
// registry alive for the oracle replay. `regions` > 0 inserts the regional
// combiner tier between the agents and central.
std::unique_ptr<ScrubSystem> RunPipeline(const Combo& combo, bool columnar,
                                         PipelineRun* out,
                                         size_t regions = 0,
                                         size_t workers = 0) {
  SystemConfig config;
  config.seed = combo.seed;
  config.platform.seed = combo.seed;
  config.platform.bidservers_per_dc = 3;
  config.platform.adservers_per_dc = 2;
  config.platform.presentation_per_dc = 1;
  config.platform.num_campaigns = 3;
  config.platform.line_items_per_campaign = 3;
  config.columnar = columnar;
  config.combiner_regions = regions;
  config.workers = workers;
  // Row and columnar payloads have different sizes; zero out the per-byte
  // transport latency so delivery timing — and therefore the transcripts —
  // can be compared byte-for-byte across pipelines.
  config.transport.micros_per_byte = 0;
  auto system = std::make_unique<ScrubSystem>(config);

  // Ground truth: every event every live host logs, before any Scrub-side
  // selection, projection or batching.
  system->SetEventTap([out](HostId, const Event& event) {
    out->tapped.push_back(event);
  });

  auto submitted = system->Submit(combo.query, [out](const ResultRow& row) {
    out->rows.push_back(row);
    out->transcript.push_back(RenderRow(row));
  });
  EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
  if (!submitted.ok()) {
    return system;
  }
  out->query_id = submitted->id;

  // Load begins only after the install (submitted at t=0) has reached every
  // agent, so tap and agents see the identical stream.
  PoissonLoadConfig load;
  load.requests_per_second = combo.rps;
  load.start = 300 * kMicrosPerMilli;
  load.duration = combo.horizon - kMicrosPerSecond - load.start;
  system->workload().SchedulePoissonLoad(load);

  system->RunUntil(combo.horizon);
  system->Drain();

  // The oracle comparison below assumes nothing was dropped for lateness.
  // Combiner-handled queries keep their stats at the partial coordinator.
  const CentralQueryStats* stats = system->central().StatsFor(submitted->id);
  if (stats == nullptr && system->hierarchical()) {
    stats = system->coordinator()->StatsFor(submitted->id);
  }
  EXPECT_NE(stats, nullptr);
  if (stats != nullptr) {
    EXPECT_EQ(stats->events_late, 0u);
  }
  return system;
}

// Replays `run`'s tapped ground truth through the naive oracle and checks
// the pipeline's rows column-by-column under the per-kind checks.
void CompareToOracle(const Combo& combo, const PipelineRun& run,
                     const SchemaRegistry& schemas) {
  const std::vector<ResultRow>& scrub_rows = run.rows;

  // Oracle: re-derive the plan the server built (submit time was 0) and
  // replay the tap through the naive executor.
  AnalyzerOptions options;
  Result<AnalyzedQuery> analyzed =
      ParseAndAnalyze(combo.query, schemas, options);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  Result<QueryPlan> plan = PlanQuery(*analyzed, run.query_id, 0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ReferenceExecutor oracle(*analyzed, plan->central);
  for (const Event& event : run.tapped) {
    oracle.Observe(event);
  }
  const std::vector<ResultRow> oracle_rows = oracle.Execute();
  ASSERT_FALSE(scrub_rows.empty());

  // Raw mode: row multisets must match exactly.
  if (!plan->central.aggregate_mode) {
    auto rendered = [](const std::vector<ResultRow>& rows) {
      std::vector<std::string> out;
      out.reserve(rows.size());
      for (const ResultRow& r : rows) {
        out.push_back(r.ToString());
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(rendered(scrub_rows), rendered(oracle_rows));
    return;
  }

  // Aggregate mode: match rows by (window, group-key columns), then compare
  // column by column under the oracle's per-column check.
  const std::vector<ColumnCheck> checks = oracle.ColumnChecks();
  const std::vector<OutputColumn>& outputs = plan->central.outputs;
  auto row_key = [&](const ResultRow& row) {
    std::string key = std::to_string(row.window_start);
    for (size_t i = 0; i < outputs.size(); ++i) {
      if (outputs[i].expr.kind == OutputKind::kGroupKey) {
        key += "\x1f" + row.values[i].ToString();
      }
    }
    return key;
  };
  std::map<std::string, const ResultRow*> oracle_by_key;
  for (const ResultRow& row : oracle_rows) {
    oracle_by_key[row_key(row)] = &row;
  }
  ASSERT_EQ(scrub_rows.size(), oracle_rows.size());
  for (const ResultRow& row : scrub_rows) {
    const std::string key = row_key(row);
    ASSERT_TRUE(oracle_by_key.count(key) > 0) << "unexpected row " << key;
    const ResultRow& truth = *oracle_by_key[key];
    EXPECT_DOUBLE_EQ(row.completeness, 1.0) << key;
    ASSERT_EQ(row.values.size(), truth.values.size());
    for (size_t i = 0; i < row.values.size(); ++i) {
      const std::string where =
          key + " column " + std::to_string(i) + " (" + outputs[i].name + ")";
      switch (checks[i]) {
        case ColumnCheck::kExact:
          EXPECT_EQ(row.values[i].ToString(), truth.values[i].ToString())
              << where;
          break;
        case ColumnCheck::kApproxDouble: {
          if (truth.values[i].is_null()) {
            EXPECT_TRUE(row.values[i].is_null()) << where;
            break;
          }
          const double got = row.values[i].AsNumber();
          const double want = truth.values[i].AsNumber();
          EXPECT_NEAR(got, want, 1e-6 * (1.0 + std::fabs(want))) << where;
          break;
        }
        case ColumnCheck::kDistinctEstimate: {
          const double exact =
              static_cast<double>(truth.values[i].AsInt());
          const double est = static_cast<double>(row.values[i].AsInt());
          // 5 sigma of the precision-14 HLL, floored for tiny sets.
          const double tol =
              std::max(2.0, 5.0 * 1.04 / std::sqrt(16384.0) * exact);
          EXPECT_NEAR(est, exact, tol) << where;
          break;
        }
        case ColumnCheck::kTopK: {
          int64_t k = 0;
          for (const AggregateSpec& spec : plan->central.aggregates) {
            if (spec.func == AggregateFunc::kTopK) {
              k = spec.topk_k;
            }
          }
          CheckTopK(row.values[i], truth.values[i], k, where);
          break;
        }
      }
    }
  }
}

void RunCombo(const Combo& combo) {
  SCOPED_TRACE(combo.query);

  // Run the identical workload through both data planes. The columnar
  // pipeline is not "close to" the row pipeline — it must emit the very
  // same bytes in the very same order.
  PipelineRun row_run;
  PipelineRun col_run;
  std::unique_ptr<ScrubSystem> row_system;
  {
    SCOPED_TRACE("row pipeline");
    row_system = RunPipeline(combo, /*columnar=*/false, &row_run);
  }
  {
    SCOPED_TRACE("columnar pipeline");
    RunPipeline(combo, /*columnar=*/true, &col_run);
  }
  ASSERT_EQ(row_run.tapped.size(), col_run.tapped.size());
  EXPECT_EQ(col_run.transcript, row_run.transcript);
  CompareToOracle(combo, row_run, row_system->schemas());

  // Whether flat-vs-hierarchical transcripts can be byte-compared: COUNT /
  // MIN / MAX finals are order-independent bit-for-bit, while SUM / AVG
  // accumulate floats in a different order across the tier and sketches are
  // envelope-checked — those still go through the oracle below.
  AnalyzerOptions options;
  Result<AnalyzedQuery> analyzed =
      ParseAndAnalyze(combo.query, row_system->schemas(), options);
  ASSERT_TRUE(analyzed.ok());
  Result<QueryPlan> plan = PlanQuery(*analyzed, row_run.query_id, 0);
  ASSERT_TRUE(plan.ok());
  bool exact_transcript = true;
  for (const AggregateSpec& spec : plan->central.aggregates) {
    if (spec.func != AggregateFunc::kCount &&
        spec.func != AggregateFunc::kMin &&
        spec.func != AggregateFunc::kMax) {
      exact_transcript = false;
    }
  }

  // The same combo through the regional combiner tier, at several region
  // counts (4 regions over 2 DCs exercises multiple combiners per DC).
  // Every topology must satisfy the oracle; exact-aggregate topologies must
  // reproduce the flat transcript byte-for-byte.
  for (const size_t regions : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE(StrFormat("hierarchical, %zu regions", regions));
    PipelineRun hier_run;
    std::unique_ptr<ScrubSystem> hier_system =
        RunPipeline(combo, /*columnar=*/false, &hier_run, regions);
    ASSERT_EQ(hier_run.tapped.size(), row_run.tapped.size());
    CompareToOracle(combo, hier_run, hier_system->schemas());
    if (exact_transcript) {
      EXPECT_EQ(hier_run.transcript, row_run.transcript);
    }
  }
}

// ~10 query x workload x seed combos across the feature surface.

TEST(DifferentialTest, UngroupedCount) {
  RunCombo({"SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 3 s;", 101});
}

TEST(DifferentialTest, GroupedMultiAggregate) {
  RunCombo(
      {"SELECT bid.campaign_id, COUNT(*), SUM(bid.bid_price), "
       "AVG(bid.bid_price), MIN(bid.bid_price), MAX(bid.bid_price) "
       "FROM bid GROUP BY bid.campaign_id WINDOW 1 s DURATION 3 s;",
       202});
}

TEST(DifferentialTest, WhereFilterOnDouble) {
  RunCombo(
      {"SELECT COUNT(*), SUM(bid.bid_price) FROM bid "
       "WHERE bid.bid_price > 1.0 WINDOW 1 s DURATION 3 s;",
       303});
}

TEST(DifferentialTest, RawProjection) {
  RunCombo(
      {"SELECT bid.campaign_id, bid.bid_price FROM bid "
       "WHERE bid.bid_price > 2.0 WINDOW 1 s DURATION 3 s;",
       404, /*rps=*/120.0});
}

TEST(DifferentialTest, JoinGroupedCount) {
  RunCombo(
      {"SELECT impression.line_item_id, COUNT(*) FROM bid, impression "
       "GROUP BY impression.line_item_id WINDOW 1 s DURATION 3 s;",
       505});
}

TEST(DifferentialTest, JoinWithCrossSourceAggregate) {
  RunCombo(
      {"SELECT impression.campaign_id, SUM(bid.bid_price), "
       "AVG(impression.cost) FROM bid, impression "
       "GROUP BY impression.campaign_id WINDOW 1 s DURATION 3 s;",
       606});
}

TEST(DifferentialTest, JoinColumnarStagingAcrossWorkerCounts) {
  // The columnar-staged join (per-source kColumnarJoin sections + staging
  // interleave) against the row-staged reference at every worker count:
  // workers > 0 re-buckets the join slice per request id across shards, and
  // each transcript must still match the row pipeline byte for byte.
  const Combo combo = {
      "SELECT impression.line_item_id, COUNT(*), SUM(bid.bid_price) "
      "FROM bid, impression GROUP BY impression.line_item_id "
      "WINDOW 1 s DURATION 3 s;",
      707};
  PipelineRun row_run;
  std::unique_ptr<ScrubSystem> row_system;
  {
    SCOPED_TRACE("row pipeline");
    row_system = RunPipeline(combo, /*columnar=*/false, &row_run);
  }
  CompareToOracle(combo, row_run, row_system->schemas());
  for (const size_t workers : {size_t{0}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE(StrFormat("columnar pipeline, %zu workers", workers));
    PipelineRun col_run;
    RunPipeline(combo, /*columnar=*/true, &col_run, /*regions=*/0, workers);
    ASSERT_EQ(col_run.tapped.size(), row_run.tapped.size());
    EXPECT_EQ(col_run.transcript, row_run.transcript);
  }
}

TEST(DifferentialTest, CountDistinctUsers) {
  RunCombo(
      {"SELECT COUNT_DISTINCT(bid.user_id) FROM bid "
       "WINDOW 1 s DURATION 3 s;",
       707, /*rps=*/400.0});
}

TEST(DifferentialTest, TopKLineItems) {
  RunCombo(
      {"SELECT TOPK(3, bid.line_item_id) FROM bid WINDOW 1 s DURATION 3 s;",
       808});
}

TEST(DifferentialTest, SlidingWindowCount) {
  RunCombo({"SELECT COUNT(*) FROM bid WINDOW 2 s SLIDE 1 s DURATION 4 s;",
            909, /*rps=*/250.0, /*horizon=*/5 * kMicrosPerSecond});
}

TEST(DifferentialTest, OutputExpressionOverAggregates) {
  RunCombo(
      {"SELECT 1000 * AVG(bid.bid_price) + COUNT(*) FROM bid "
       "WINDOW 1 s DURATION 3 s;",
       1010});
}

TEST(DifferentialTest, GroupedSeedVariant) {
  RunCombo(
      {"SELECT bid.campaign_id, COUNT(*), SUM(bid.bid_price), "
       "AVG(bid.bid_price), MIN(bid.bid_price), MAX(bid.bid_price) "
       "FROM bid GROUP BY bid.campaign_id WINDOW 1 s DURATION 3 s;",
       1111, /*rps=*/500.0});
}

// ---------------------------------------------------------------------------
// Sampled queries on shards: ShardedCentral's coordinator-level Eq. 1-3
// estimates against the unsampled oracle over the full pre-sampling stream.
//
// The fleet here is simulated directly (no ScrubSystem): H hosts each log a
// full event stream; a per-host coin decides which events ship, and each
// batch carries the per-window {seen, sampled} counters an agent would
// attach. The oracle replays the COMPLETE stream through the unsampled twin
// of the query, so the comparison is estimate-vs-ground-truth, not
// estimate-vs-itself. COUNT/SUM must land inside their reported 95%
// envelope (a small miss quota covers the 5% the interval concedes by
// construction); AVG ships unscaled and must sit near the true mean.
// ---------------------------------------------------------------------------

class ShardedSampledDifferentialTest : public ::testing::Test {
 protected:
  ShardedSampledDifferentialTest() {
    bid_schema_ = *EventSchema::Builder("bid")
                       .AddField("user_id", FieldType::kLong)
                       .AddField("price", FieldType::kDouble)
                       .Build();
    EXPECT_TRUE(registry_.Register(bid_schema_).ok());
  }

  CentralPlan PlanFor(std::string_view text, QueryId id, uint64_t targeted,
                      uint64_t sampled) {
    AnalyzerOptions options;
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_, options);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    Result<QueryPlan> plan = PlanQuery(*aq, id, 0);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    CentralPlan central = plan->central;
    central.hosts_targeted = targeted;
    central.hosts_sampled = sampled;
    return central;
  }

  // One full-stream per host: `per_host` bids spread over [100, 8 s).
  std::vector<std::vector<Event>> FleetStreams(size_t hosts, int per_host,
                                               uint64_t seed, int64_t users) {
    std::vector<std::vector<Event>> streams(hosts);
    for (size_t h = 0; h < hosts; ++h) {
      Rng rng(seed + h * 1001);
      for (int i = 0; i < per_host; ++i) {
        Event e(bid_schema_, rng.NextUint64(),
                100 + static_cast<TimeMicros>(rng.NextBelow(8'000'000)));
        e.SetField(0, Value(static_cast<int64_t>(
                          rng.NextBelow(static_cast<uint64_t>(users)))));
        e.SetField(1, Value(rng.NextDouble() * 5));
        streams[h].push_back(std::move(e));
      }
    }
    return streams;
  }

  // Ships the per-host sampled slice (shipped[h] selects events) plus the
  // agent-style per-window counters, then closes every window.
  std::vector<ResultRow> RunSampledSharded(
      const CentralPlan& plan, const std::vector<std::vector<Event>>& streams,
      const std::vector<std::vector<bool>>& shipped, size_t shards,
      size_t workers, std::vector<std::string>* transcript = nullptr) {
    ShardedCentral central(&registry_, shards, CentralConfig{}, workers);
    std::vector<ResultRow> rows;
    EXPECT_TRUE(central
                    .InstallQuery(plan,
                                  [&](const ResultRow& row) {
                                    rows.push_back(row);
                                    if (transcript != nullptr) {
                                      transcript->push_back(RenderRow(row));
                                    }
                                  })
                    .ok());
    std::vector<EventBatch> batches;
    for (size_t h = 0; h < streams.size(); ++h) {
      if (shipped[h].empty()) {
        continue;  // host not selected by the host-sampling stage
      }
      std::vector<Event> kept;
      std::map<TimeMicros, WindowCounter> counters;
      for (size_t i = 0; i < streams[h].size(); ++i) {
        const Event& e = streams[h][i];
        const TimeMicros w =
            plan.start_time +
            ((e.timestamp() - plan.start_time) / plan.window_micros) *
                plan.window_micros;
        WindowCounter& c = counters[w];
        c.window_start = w;
        ++c.seen;
        if (shipped[h][i]) {
          ++c.sampled;
          kept.push_back(e);
        }
      }
      EventBatch batch;
      batch.query_id = plan.query_id;
      batch.host = static_cast<HostId>(h);
      batch.event_count = kept.size();
      batch.payload = EncodeBatch(kept);
      for (const auto& [w, c] : counters) {
        batch.counters.push_back(c);
      }
      batches.push_back(std::move(batch));
    }
    EXPECT_TRUE(central.IngestBatches(batches, 0).ok());
    central.OnTick(60 * kMicrosPerSecond);
    return rows;
  }

  // Oracle truth rows for the UNSAMPLED twin of the query over every event
  // every host logged, keyed like RunCombo: window |group-key columns.
  std::map<std::string, ResultRow> OracleRows(
      std::string_view unsampled_text,
      const std::vector<std::vector<Event>>& streams) {
    AnalyzerOptions options;
    Result<AnalyzedQuery> aq =
        ParseAndAnalyze(unsampled_text, registry_, options);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    Result<QueryPlan> plan = PlanQuery(*aq, /*query_id=*/999, 0);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    oracle_outputs_ = plan->central.outputs;
    ReferenceExecutor oracle(*aq, plan->central);
    for (const std::vector<Event>& stream : streams) {
      for (const Event& e : stream) {
        oracle.Observe(e);
      }
    }
    std::map<std::string, ResultRow> by_key;
    for (const ResultRow& row : oracle.Execute()) {
      by_key[RowKey(row)] = row;
    }
    return by_key;
  }

  std::string RowKey(const ResultRow& row) const {
    std::string key = std::to_string(row.window_start);
    for (size_t i = 0; i < oracle_outputs_.size(); ++i) {
      if (oracle_outputs_[i].expr.kind == OutputKind::kGroupKey) {
        key += "\x1f" + row.values[i].ToString();
      }
    }
    return key;
  }

  SchemaRegistry registry_;
  SchemaPtr bid_schema_;
  std::vector<OutputColumn> oracle_outputs_;
};

TEST_F(ShardedSampledDifferentialTest, EventSampledGroupedCountSumAvg) {
  const char* sampled_text =
      "SELECT bid.user_id, COUNT(*), SUM(bid.price), AVG(bid.price) "
      "FROM bid GROUP BY bid.user_id WINDOW 2 s DURATION 10 s "
      "SAMPLE EVENTS 50%;";
  const char* unsampled_text =
      "SELECT bid.user_id, COUNT(*), SUM(bid.price), AVG(bid.price) "
      "FROM bid GROUP BY bid.user_id WINDOW 2 s DURATION 10 s;";
  const size_t kHosts = 8;
  const auto streams = FleetStreams(kHosts, 400, 424242, 5);

  // The event-sampling coin, flipped per event exactly like an agent would.
  std::vector<std::vector<bool>> shipped(kHosts);
  for (size_t h = 0; h < kHosts; ++h) {
    Rng coin(7000 + h);
    shipped[h].resize(streams[h].size());
    for (size_t i = 0; i < streams[h].size(); ++i) {
      shipped[h][i] = coin.NextDouble() < 0.5;
    }
  }

  const CentralPlan plan =
      PlanFor(sampled_text, 42, /*targeted=*/kHosts, /*sampled=*/kHosts);
  std::vector<std::string> transcript0;
  const std::vector<ResultRow> rows =
      RunSampledSharded(plan, streams, shipped, /*shards=*/3,
                        /*workers=*/0, &transcript0);
  const std::map<std::string, ResultRow> truth =
      OracleRows(unsampled_text, streams);
  ASSERT_FALSE(rows.empty());

  // Worker count must stay a pure performance knob for sampled plans too.
  std::vector<std::string> transcript2;
  RunSampledSharded(plan, streams, shipped, /*shards=*/3, /*workers=*/2,
                    &transcript2);
  EXPECT_EQ(transcript2, transcript0);

  // Columns: 0 = user_id, 1 = COUNT (bounded), 2 = SUM (bounded),
  // 3 = AVG (unscaled, no bound).
  size_t bounded_checks = 0;
  size_t bounded_hits = 0;
  double est_total_count = 0.0;
  double true_total_count = 0.0;
  for (const ResultRow& row : rows) {
    const std::string key = RowKey(row);
    ASSERT_TRUE(truth.count(key) > 0) << "group not in oracle: " << key;
    const ResultRow& t = truth.at(key);
    for (const size_t col : {size_t{1}, size_t{2}}) {
      const double got = row.values[col].AsNumber();
      const double want = t.values[col].AsNumber();
      EXPECT_GT(row.error_bounds[col], 0.0) << key;
      EXPECT_TRUE(std::isfinite(row.error_bounds[col])) << key;
      ++bounded_checks;
      if (std::fabs(got - want) <= row.error_bounds[col]) {
        ++bounded_hits;
      }
    }
    est_total_count += row.values[1].AsNumber();
    true_total_count += t.values[1].AsNumber();
    // AVG: unscaled sample mean of the shipped events — near the true mean,
    // no error bound.
    EXPECT_DOUBLE_EQ(row.error_bounds[3], 0.0) << key;
    if (!t.values[3].is_null() && !row.values[3].is_null()) {
      const double want_avg = t.values[3].AsNumber();
      EXPECT_NEAR(row.values[3].AsNumber(), want_avg,
                  0.30 * (1.0 + std::fabs(want_avg)))
          << key;
    }
  }
  // 95% intervals concede ~5% misses; demand at least 85% coverage.
  EXPECT_GE(bounded_hits, (bounded_checks * 85) / 100)
      << bounded_hits << "/" << bounded_checks << " inside the bound";
  // The fleet-wide COUNT estimate must sit close to the truth.
  EXPECT_NEAR(est_total_count, true_total_count, 0.10 * true_total_count);
}

TEST_F(ShardedSampledDifferentialTest, HostSampledUngroupedCountSum) {
  const char* sampled_text =
      "SELECT COUNT(*), SUM(bid.price) FROM bid "
      "WINDOW 2 s DURATION 10 s SAMPLE HOSTS 50%;";
  const char* unsampled_text =
      "SELECT COUNT(*), SUM(bid.price) FROM bid "
      "WINDOW 2 s DURATION 10 s;";
  const size_t kHosts = 8;
  const auto streams = FleetStreams(kHosts, 300, 99, 4);

  // Host sampling: the even hosts ship EVERY event; the odd hosts ship
  // nothing at all (not even counters) — the coordinator must scale by
  // hosts_targeted / hosts_sampled and bound from host-stage variance.
  std::vector<std::vector<bool>> shipped(kHosts);
  for (size_t h = 0; h < kHosts; h += 2) {
    shipped[h].assign(streams[h].size(), true);
  }

  const CentralPlan plan =
      PlanFor(sampled_text, 43, /*targeted=*/kHosts, /*sampled=*/kHosts / 2);
  const std::vector<ResultRow> rows = RunSampledSharded(
      plan, streams, shipped, /*shards=*/2, /*workers=*/0);
  const std::map<std::string, ResultRow> truth =
      OracleRows(unsampled_text, streams);
  ASSERT_FALSE(rows.empty());

  size_t misses = 0;
  for (const ResultRow& row : rows) {
    const std::string key = RowKey(row);
    ASSERT_TRUE(truth.count(key) > 0) << key;
    const ResultRow& t = truth.at(key);
    for (const size_t col : {size_t{0}, size_t{1}}) {
      EXPECT_GT(row.error_bounds[col], 0.0) << key;
      if (std::fabs(row.values[col].AsNumber() - t.values[col].AsNumber()) >
          row.error_bounds[col]) {
        ++misses;
      }
    }
  }
  // 5 windows x 2 bounded columns at 95% confidence: allow one miss.
  EXPECT_LE(misses, 1u);
}

}  // namespace
}  // namespace scrub
