// Differential testing: the full Scrub pipeline (host instrumentation →
// agent selection/projection/batching → transport → central join/group/
// aggregate/window) against the naive single-threaded oracle in
// reference_executor.h, over randomized bidding workloads.
//
// Each combo runs a real ScrubSystem with an event tap recording the ground
// truth exactly as hosts log it, then replays that stream through the
// oracle and compares row sets:
//
//  * exact columns (group keys, COUNT, MIN/MAX) must match byte-for-byte;
//  * SUM/AVG must match to float tolerance (accumulation order differs);
//  * COUNT_DISTINCT must land within the HLL error envelope
//    (precision 14: sigma = 1.04/sqrt(2^14) ~ 0.8% relative; we allow 5
//    sigma, floored at +/-2 for tiny cardinalities where the sketch is in
//    its exact linear-counting regime);
//  * TOPK entries must carry exact counts (SpaceSaving is exact while
//    capacity >= distinct keys, which these workloads guarantee) and form
//    a valid top-k of the true ranking, tolerating tie reordering.
//
// The load starts 300 ms into the simulation so query dissemination is
// complete before the first ground-truth event is logged: the tap and the
// agents then observe exactly the same stream.

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/strings.h"
#include "src/scrub/scrub_system.h"
#include "tests/reference_executor.h"

namespace scrub {
namespace {

struct Combo {
  const char* query;
  uint64_t seed;
  double rps = 250.0;
  TimeMicros horizon = 4 * kMicrosPerSecond;
};

std::vector<std::pair<std::string, double>> ParseTopK(const Value& v) {
  std::vector<std::pair<std::string, double>> out;
  EXPECT_TRUE(v.is_list()) << v.ToString();
  if (!v.is_list()) {
    return out;
  }
  for (const Value& entry : v.AsList()) {
    const std::string s = entry.AsString();
    const size_t colon = s.rfind(':');
    EXPECT_NE(colon, std::string::npos) << s;
    out.emplace_back(s.substr(0, colon), std::stod(s.substr(colon + 1)));
  }
  return out;
}

// Scrub's TOPK list vs the oracle's full exact ranking.
void CheckTopK(const Value& scrub_v, const Value& oracle_v, int64_t k,
               const std::string& where) {
  const auto got = ParseTopK(scrub_v);
  const auto truth = ParseTopK(oracle_v);
  const size_t expect_size =
      std::min(static_cast<size_t>(k), truth.size());
  ASSERT_EQ(got.size(), expect_size) << where;
  std::map<std::string, double> truth_counts;
  for (const auto& [key, count] : truth) {
    truth_counts[key] = count;
  }
  double min_returned = 0.0;
  std::map<std::string, bool> returned;
  for (const auto& [key, count] : got) {
    ASSERT_TRUE(truth_counts.count(key) > 0) << where << " key " << key;
    // Counts are exact: capacity >= distinct keys in these workloads.
    EXPECT_DOUBLE_EQ(count, truth_counts[key]) << where << " key " << key;
    returned[key] = true;
    min_returned = returned.size() == 1 ? count
                                        : std::min(min_returned, count);
  }
  // Valid top-k under ties: nothing excluded may outrank anything returned.
  for (const auto& [key, count] : truth) {
    if (returned.count(key) == 0) {
      EXPECT_LE(count, min_returned) << where << " excluded key " << key;
    }
  }
}

// One full ScrubSystem run through the requested pipeline.
struct PipelineRun {
  std::vector<Event> tapped;      // ground truth at the log() call
  std::vector<ResultRow> rows;    // emission order
  std::vector<std::string> transcript;  // full-precision rendering of rows
  QueryId query_id = 0;
  SchemaRegistry* schemas = nullptr;
};

// Full-precision rendering: any cross-pipeline divergence (a float summed in
// a different order, a reordered emission) must fail loudly.
std::string RenderRow(const ResultRow& row) {
  return StrFormat("w%lld %s c=%.17g",
                   static_cast<long long>(row.window_start),
                   row.ToString().c_str(), row.completeness);
}

// Builds and drives one system; returned so the caller can keep its schema
// registry alive for the oracle replay.
std::unique_ptr<ScrubSystem> RunPipeline(const Combo& combo, bool columnar,
                                         PipelineRun* out) {
  SystemConfig config;
  config.seed = combo.seed;
  config.platform.seed = combo.seed;
  config.platform.bidservers_per_dc = 3;
  config.platform.adservers_per_dc = 2;
  config.platform.presentation_per_dc = 1;
  config.platform.num_campaigns = 3;
  config.platform.line_items_per_campaign = 3;
  config.columnar = columnar;
  // Row and columnar payloads have different sizes; zero out the per-byte
  // transport latency so delivery timing — and therefore the transcripts —
  // can be compared byte-for-byte across pipelines.
  config.transport.micros_per_byte = 0;
  auto system = std::make_unique<ScrubSystem>(config);

  // Ground truth: every event every live host logs, before any Scrub-side
  // selection, projection or batching.
  system->SetEventTap([out](HostId, const Event& event) {
    out->tapped.push_back(event);
  });

  auto submitted = system->Submit(combo.query, [out](const ResultRow& row) {
    out->rows.push_back(row);
    out->transcript.push_back(RenderRow(row));
  });
  EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
  if (!submitted.ok()) {
    return system;
  }
  out->query_id = submitted->id;

  // Load begins only after the install (submitted at t=0) has reached every
  // agent, so tap and agents see the identical stream.
  PoissonLoadConfig load;
  load.requests_per_second = combo.rps;
  load.start = 300 * kMicrosPerMilli;
  load.duration = combo.horizon - kMicrosPerSecond - load.start;
  system->workload().SchedulePoissonLoad(load);

  system->RunUntil(combo.horizon);
  system->Drain();

  // The oracle comparison below assumes nothing was dropped for lateness.
  const CentralQueryStats* stats = system->central().StatsFor(submitted->id);
  EXPECT_NE(stats, nullptr);
  if (stats != nullptr) {
    EXPECT_EQ(stats->events_late, 0u);
  }
  return system;
}

void RunCombo(const Combo& combo) {
  SCOPED_TRACE(combo.query);

  // Run the identical workload through both data planes. The columnar
  // pipeline is not "close to" the row pipeline — it must emit the very
  // same bytes in the very same order.
  PipelineRun row_run;
  PipelineRun col_run;
  std::unique_ptr<ScrubSystem> row_system;
  {
    SCOPED_TRACE("row pipeline");
    row_system = RunPipeline(combo, /*columnar=*/false, &row_run);
  }
  {
    SCOPED_TRACE("columnar pipeline");
    RunPipeline(combo, /*columnar=*/true, &col_run);
  }
  ASSERT_EQ(row_run.tapped.size(), col_run.tapped.size());
  EXPECT_EQ(col_run.transcript, row_run.transcript);

  const std::vector<ResultRow>& scrub_rows = row_run.rows;

  // Oracle: re-derive the plan the server built (submit time was 0) and
  // replay the tap through the naive executor.
  AnalyzerOptions options;
  Result<AnalyzedQuery> analyzed =
      ParseAndAnalyze(combo.query, row_system->schemas(), options);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  Result<QueryPlan> plan = PlanQuery(*analyzed, row_run.query_id, 0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ReferenceExecutor oracle(*analyzed, plan->central);
  for (const Event& event : row_run.tapped) {
    oracle.Observe(event);
  }
  const std::vector<ResultRow> oracle_rows = oracle.Execute();
  ASSERT_FALSE(scrub_rows.empty());

  // Raw mode: row multisets must match exactly.
  if (!plan->central.aggregate_mode) {
    auto rendered = [](const std::vector<ResultRow>& rows) {
      std::vector<std::string> out;
      out.reserve(rows.size());
      for (const ResultRow& r : rows) {
        out.push_back(r.ToString());
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(rendered(scrub_rows), rendered(oracle_rows));
    return;
  }

  // Aggregate mode: match rows by (window, group-key columns), then compare
  // column by column under the oracle's per-column check.
  const std::vector<ColumnCheck> checks = oracle.ColumnChecks();
  const std::vector<OutputColumn>& outputs = plan->central.outputs;
  auto row_key = [&](const ResultRow& row) {
    std::string key = std::to_string(row.window_start);
    for (size_t i = 0; i < outputs.size(); ++i) {
      if (outputs[i].expr.kind == OutputKind::kGroupKey) {
        key += "\x1f" + row.values[i].ToString();
      }
    }
    return key;
  };
  std::map<std::string, const ResultRow*> oracle_by_key;
  for (const ResultRow& row : oracle_rows) {
    oracle_by_key[row_key(row)] = &row;
  }
  ASSERT_EQ(scrub_rows.size(), oracle_rows.size());
  for (const ResultRow& row : scrub_rows) {
    const std::string key = row_key(row);
    ASSERT_TRUE(oracle_by_key.count(key) > 0) << "unexpected row " << key;
    const ResultRow& truth = *oracle_by_key[key];
    EXPECT_DOUBLE_EQ(row.completeness, 1.0) << key;
    ASSERT_EQ(row.values.size(), truth.values.size());
    for (size_t i = 0; i < row.values.size(); ++i) {
      const std::string where =
          key + " column " + std::to_string(i) + " (" + outputs[i].name + ")";
      switch (checks[i]) {
        case ColumnCheck::kExact:
          EXPECT_EQ(row.values[i].ToString(), truth.values[i].ToString())
              << where;
          break;
        case ColumnCheck::kApproxDouble: {
          if (truth.values[i].is_null()) {
            EXPECT_TRUE(row.values[i].is_null()) << where;
            break;
          }
          const double got = row.values[i].AsNumber();
          const double want = truth.values[i].AsNumber();
          EXPECT_NEAR(got, want, 1e-6 * (1.0 + std::fabs(want))) << where;
          break;
        }
        case ColumnCheck::kDistinctEstimate: {
          const double exact =
              static_cast<double>(truth.values[i].AsInt());
          const double est = static_cast<double>(row.values[i].AsInt());
          // 5 sigma of the precision-14 HLL, floored for tiny sets.
          const double tol =
              std::max(2.0, 5.0 * 1.04 / std::sqrt(16384.0) * exact);
          EXPECT_NEAR(est, exact, tol) << where;
          break;
        }
        case ColumnCheck::kTopK: {
          int64_t k = 0;
          for (const AggregateSpec& spec : plan->central.aggregates) {
            if (spec.func == AggregateFunc::kTopK) {
              k = spec.topk_k;
            }
          }
          CheckTopK(row.values[i], truth.values[i], k, where);
          break;
        }
      }
    }
  }
}

// ~10 query x workload x seed combos across the feature surface.

TEST(DifferentialTest, UngroupedCount) {
  RunCombo({"SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 3 s;", 101});
}

TEST(DifferentialTest, GroupedMultiAggregate) {
  RunCombo(
      {"SELECT bid.campaign_id, COUNT(*), SUM(bid.bid_price), "
       "AVG(bid.bid_price), MIN(bid.bid_price), MAX(bid.bid_price) "
       "FROM bid GROUP BY bid.campaign_id WINDOW 1 s DURATION 3 s;",
       202});
}

TEST(DifferentialTest, WhereFilterOnDouble) {
  RunCombo(
      {"SELECT COUNT(*), SUM(bid.bid_price) FROM bid "
       "WHERE bid.bid_price > 1.0 WINDOW 1 s DURATION 3 s;",
       303});
}

TEST(DifferentialTest, RawProjection) {
  RunCombo(
      {"SELECT bid.campaign_id, bid.bid_price FROM bid "
       "WHERE bid.bid_price > 2.0 WINDOW 1 s DURATION 3 s;",
       404, /*rps=*/120.0});
}

TEST(DifferentialTest, JoinGroupedCount) {
  RunCombo(
      {"SELECT impression.line_item_id, COUNT(*) FROM bid, impression "
       "GROUP BY impression.line_item_id WINDOW 1 s DURATION 3 s;",
       505});
}

TEST(DifferentialTest, JoinWithCrossSourceAggregate) {
  RunCombo(
      {"SELECT impression.campaign_id, SUM(bid.bid_price), "
       "AVG(impression.cost) FROM bid, impression "
       "GROUP BY impression.campaign_id WINDOW 1 s DURATION 3 s;",
       606});
}

TEST(DifferentialTest, CountDistinctUsers) {
  RunCombo(
      {"SELECT COUNT_DISTINCT(bid.user_id) FROM bid "
       "WINDOW 1 s DURATION 3 s;",
       707, /*rps=*/400.0});
}

TEST(DifferentialTest, TopKLineItems) {
  RunCombo(
      {"SELECT TOPK(3, bid.line_item_id) FROM bid WINDOW 1 s DURATION 3 s;",
       808});
}

TEST(DifferentialTest, SlidingWindowCount) {
  RunCombo({"SELECT COUNT(*) FROM bid WINDOW 2 s SLIDE 1 s DURATION 4 s;",
            909, /*rps=*/250.0, /*horizon=*/5 * kMicrosPerSecond});
}

TEST(DifferentialTest, OutputExpressionOverAggregates) {
  RunCombo(
      {"SELECT 1000 * AVG(bid.bid_price) + COUNT(*) FROM bid "
       "WINDOW 1 s DURATION 3 s;",
       1010});
}

TEST(DifferentialTest, GroupedSeedVariant) {
  RunCombo(
      {"SELECT bid.campaign_id, COUNT(*), SUM(bid.bid_price), "
       "AVG(bid.bid_price), MIN(bid.bid_price), MAX(bid.bid_price) "
       "FROM bid GROUP BY bid.campaign_id WINDOW 1 s DURATION 3 s;",
       1111, /*rps=*/500.0});
}

}  // namespace
}  // namespace scrub
