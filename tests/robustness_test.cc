// Robustness / failure-injection tests: hostile inputs must produce errors,
// never crashes or hangs. The wire decoder faces bytes from the network;
// the parser faces arbitrary user text; the agent faces overload.

#include <gtest/gtest.h>

#include "src/agent/agent.h"
#include "src/common/rng.h"
#include "src/event/wire.h"
#include "src/query/analyzer.h"
#include "src/query/parser.h"

namespace scrub {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest() {
    schema_ = *EventSchema::Builder("bid")
                   .AddField("user_id", FieldType::kLong)
                   .AddField("price", FieldType::kDouble)
                   .AddField("tag", FieldType::kString)
                   .AddField("items", FieldType::kLongList)
                   .Build();
    EXPECT_TRUE(registry_.Register(schema_).ok());
  }

  std::string ValidBatch() {
    std::vector<Event> events;
    for (int i = 0; i < 8; ++i) {
      Event e(schema_, static_cast<RequestId>(i), 100 + i);
      e.SetField(0, Value(int64_t{i}));
      e.SetField(1, Value(1.5 * i));
      e.SetField(2, Value("payload"));
      e.SetField(3, Value(std::vector<Value>{Value(int64_t{1})}));
      events.push_back(std::move(e));
    }
    return EncodeBatch(events);
  }

  SchemaRegistry registry_;
  SchemaPtr schema_;
};

TEST_F(RobustnessTest, SingleByteCorruptionNeverCrashesDecoder) {
  const std::string valid = ValidBatch();
  Rng rng(99);
  int decode_failures = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string corrupted = valid;
    const size_t pos = rng.NextBelow(corrupted.size());
    corrupted[pos] = static_cast<char>(rng.NextBelow(256));
    Result<std::vector<Event>> decoded = DecodeBatch(registry_, corrupted);
    if (!decoded.ok()) {
      ++decode_failures;
      continue;
    }
    // A flip that survived decoding must still produce well-formed events
    // (or have hit a value byte, which is fine).
    for (const Event& e : *decoded) {
      (void)e.ToString();
    }
  }
  // Most corruptions land in payload bytes and decode "successfully" with
  // altered values; structural corruptions must fail cleanly. Either way:
  // no crash, which is the property under test.
  EXPECT_GT(decode_failures, 0);
}

TEST_F(RobustnessTest, TruncationAtEveryLengthFailsCleanly) {
  const std::string valid = ValidBatch();
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    const std::string truncated = valid.substr(0, cut);
    Result<std::vector<Event>> decoded = DecodeBatch(registry_, truncated);
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST_F(RobustnessTest, HugeLengthPrefixesRejected) {
  // A batch claiming 2^31 events with no payload must not allocate wildly.
  std::string hostile;
  const uint32_t count = 0x7FFFFFFF;
  hostile.append(reinterpret_cast<const char*>(&count), 4);
  EXPECT_FALSE(DecodeBatch(registry_, hostile).ok());
}

TEST_F(RobustnessTest, RandomGarbageQueriesNeverCrashParser) {
  Rng rng(7);
  const char alphabet[] =
      "SELECTFROMWHEREGROUPBY()*,.;@[]<>=!%'\" 0123456789abcdef_";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string text;
    const size_t len = rng.NextBelow(120);
    for (size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng.NextBelow(sizeof(alphabet) - 1)]);
    }
    const Result<Query> q = ParseQuery(text);
    if (q.ok()) {
      (void)q->ToString();  // whatever parsed must render
    }
  }
}

TEST_F(RobustnessTest, MutatedValidQueriesFailWithMessagesNotCrashes) {
  const std::string base =
      "SELECT bid.user_id, COUNT(*) FROM bid WHERE bid.price > 1.0 "
      "GROUP BY bid.user_id WINDOW 10 s DURATION 60 s;";
  Rng rng(13);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = base;
    const int op = static_cast<int>(rng.NextBelow(3));
    const size_t pos = rng.NextBelow(mutated.size());
    if (op == 0) {
      mutated.erase(pos, 1);
    } else if (op == 1) {
      mutated.insert(pos, 1, static_cast<char>(rng.NextBelow(96) + 32));
    } else {
      mutated[pos] = static_cast<char>(rng.NextBelow(96) + 32);
    }
    Result<AnalyzedQuery> aq = ParseAndAnalyze(mutated, registry_);
    if (!aq.ok()) {
      EXPECT_FALSE(aq.status().message().empty());
    }
  }
}

TEST_F(RobustnessTest, AgentSurvivesSustainedOverload) {
  CostMeter meter;
  AgentConfig config;
  config.staging_capacity = 64;  // tiny: everything above this sheds
  ScrubAgent agent(0, &meter, config, 1);
  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      "SELECT COUNT(*) FROM bid WINDOW 1 h DURATION 2 h;", registry_,
      [] {
        AnalyzerOptions o;
        o.max_duration_micros = 10 * kMicrosPerHour;
        return o;
      }());
  ASSERT_TRUE(aq.ok());
  Result<QueryPlan> plan = PlanQuery(*aq, 1, 0);
  ASSERT_TRUE(plan.ok());
  agent.InstallQuery(plan->host);
  for (int i = 0; i < 100000; ++i) {
    Event e(schema_, static_cast<RequestId>(i), 100);
    e.SetField(0, Value(int64_t{i}));
    agent.LogEvent(e);
  }
  const AgentQueryStats* stats = agent.StatsFor(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->events_staged, 64u);
  EXPECT_EQ(stats->events_dropped, 100000u - 64u);
  // One flush drains exactly the staged 64; the agent remains healthy.
  std::vector<EventBatch> batches = agent.Flush(200);
  size_t shipped = 0;
  for (const EventBatch& b : batches) {
    shipped += b.event_count;
  }
  EXPECT_EQ(shipped, 64u);
}

TEST_F(RobustnessTest, EmptyAndWhitespaceQueries) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("   \n\t  ").ok());
  EXPECT_FALSE(ParseQuery(";").ok());
  EXPECT_FALSE(ParseQuery("-- just a comment").ok());
}

TEST_F(RobustnessTest, DeeplyNestedExpressionParses) {
  // 200 nested parens: recursion depth must be tolerable.
  std::string text = "SELECT COUNT(*) FROM bid WHERE ";
  for (int i = 0; i < 200; ++i) {
    text += "(";
  }
  text += "bid.price > 1.0";
  for (int i = 0; i < 200; ++i) {
    text += ")";
  }
  text += ";";
  Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_);
  EXPECT_TRUE(aq.ok()) << aq.status().ToString();
}

}  // namespace
}  // namespace scrub
