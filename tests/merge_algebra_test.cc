// Merge-algebra property tests: the hierarchical topology is correct only
// because WindowPartial merging (AbsorbPartial, AggAccumulator::Merge) is
// associative and commutative. These tests generate random event streams,
// split them into random partials (each folded by a real shard-role
// ScrubCentral), then merge the partials in shuffled flat orders and in
// random binary tree shapes — flat absorb == what ShardedCentral does,
// trees == what the regional combiner tier composes — and require the
// finalized rows to match a single-instance oracle:
//
//   COUNT / SUM / AVG / MIN / MAX   bit-identical finals in every order.
//   (Sums are exercised on dyadic-rational inputs, so double addition is
//   exact and association genuinely cannot change the bits.)
//   COUNT_DISTINCT                  identical across merge orders (HLL
//                                   register-max is truly associative) and
//                                   within the sketch envelope of truth.
//   TOPK                            tie-tolerant: the dominant key wins in
//                                   every order, reported count within the
//                                   summary's over-count slack.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/central/central.h"
#include "src/central/coordinator.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/event/wire.h"
#include "src/query/analyzer.h"

namespace scrub {
namespace {

class MergeAlgebraTest : public ::testing::Test {
 protected:
  MergeAlgebraTest() {
    schema_ = *EventSchema::Builder("bid")
                   .AddField("user_id", FieldType::kLong)
                   .AddField("price", FieldType::kDouble)
                   .Build();
    EXPECT_TRUE(registry_.Register(schema_).ok());
  }

  CentralPlan PlanFor(std::string_view text, QueryId id) {
    AnalyzerOptions options;
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_, options);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    Result<QueryPlan> plan = PlanQuery(*aq, id, 0);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    CentralPlan central = plan->central;
    central.hosts_targeted = 1;
    central.hosts_sampled = 1;
    return central;
  }

  // Random events with dyadic-rational prices (k/4, k < 1024): every price
  // and every partial sum is exactly representable, so SUM/AVG must come
  // back bit-identical no matter how the additions associate.
  std::vector<Event> RandomEvents(int n, uint64_t seed, int64_t users) {
    Rng rng(seed);
    std::vector<Event> events;
    events.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event e(schema_, rng.NextUint64(),
              100 + static_cast<TimeMicros>(rng.NextBelow(8'000'000)));
      e.SetField(0, Value(static_cast<int64_t>(
                        rng.NextBelow(static_cast<uint64_t>(users)))));
      e.SetField(1,
                 Value(static_cast<double>(rng.NextBelow(1024)) * 0.25));
      events.push_back(std::move(e));
    }
    return events;
  }

  static EventBatch Pack(QueryId qid, const std::vector<Event>& events) {
    EventBatch batch;
    batch.query_id = qid;
    batch.host = 0;
    batch.event_count = events.size();
    batch.payload = EncodeBatch(events);
    return batch;
  }

  // Single-instance oracle over the full stream.
  std::vector<ResultRow> Oracle(const CentralPlan& plan,
                                const std::vector<Event>& events) {
    ScrubCentral single(&registry_);
    std::vector<ResultRow> rows;
    EXPECT_TRUE(single
                    .InstallQuery(plan,
                                  [&](const ResultRow& row) {
                                    rows.push_back(row);
                                  })
                    .ok());
    EXPECT_TRUE(single.IngestBatch(Pack(plan.query_id, events), 0).ok());
    single.OnTick(60 * kMicrosPerSecond);
    return rows;
  }

  // Splits the stream into `parts` random slices, folds each through its
  // own shard-role central, and returns every emitted WindowPartial.
  std::vector<WindowPartial> SplitPartials(const CentralPlan& plan,
                                           const std::vector<Event>& events,
                                           size_t parts, uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<Event>> slices(parts);
    for (const Event& e : events) {
      slices[rng.NextBelow(parts)].push_back(e);
    }
    std::vector<WindowPartial> partials;
    for (std::vector<Event>& slice : slices) {
      ScrubCentral shard(&registry_);
      CentralPlan shard_plan = plan;
      shard_plan.hosts_sampled = 0;  // expected-set is a coordinator concern
      EXPECT_TRUE(shard
                      .InstallQueryPartial(shard_plan,
                                           [&](WindowPartial&& p) {
                                             partials.push_back(std::move(p));
                                           })
                      .ok());
      EXPECT_TRUE(
          shard.IngestBatch(Pack(plan.query_id, slice), 0).ok());
      shard.OnTick(60 * kMicrosPerSecond);
    }
    return partials;
  }

  // Finalizes `partials` through a PartialCoordinator, absorbing in the
  // given order. Clones, so a partial list can be replayed many times.
  std::vector<ResultRow> Finalize(const CentralPlan& plan,
                                  const std::vector<WindowPartial>& partials,
                                  const std::vector<size_t>& order) {
    PartialCoordinator coordinator;
    std::vector<ResultRow> rows;
    EXPECT_TRUE(coordinator
                    .InstallQuery(plan,
                                  [&](const ResultRow& row) {
                                    rows.push_back(row);
                                  })
                    .ok());
    for (const size_t i : order) {
      coordinator.AbsorbPartial(partials[i].Clone());
    }
    coordinator.OnTick(60 * kMicrosPerSecond);
    return rows;
  }

  // The combiner-tier merge step, reimplemented at the algebra level: two
  // same-window partials fuse into one via AggAccumulator::Merge. Only for
  // unsampled plans (no per-host readings to reconcile).
  static WindowPartial MergeTwo(WindowPartial a, WindowPartial b) {
    EXPECT_EQ(a.window_start, b.window_start);
    EXPECT_TRUE(a.group_readings.empty());
    EXPECT_TRUE(b.group_readings.empty());
    std::map<std::string, size_t> index;
    for (size_t i = 0; i < a.keys.size(); ++i) {
      index.emplace(RenderKey(a.keys[i]), i);
    }
    for (size_t i = 0; i < b.keys.size(); ++i) {
      const auto it = index.find(RenderKey(b.keys[i]));
      if (it == index.end()) {
        a.keys.push_back(std::move(b.keys[i]));
        a.key_hashes.push_back(b.key_hashes[i]);
        a.accumulators.push_back(std::move(b.accumulators[i]));
        continue;
      }
      std::vector<AggAccumulator>& into = a.accumulators[it->second];
      std::vector<AggAccumulator>& from = b.accumulators[i];
      if (into.size() != from.size()) {
        ADD_FAILURE() << "aggregate slot arity mismatch";
        return a;
      }
      for (size_t s = 0; s < into.size(); ++s) {
        into[s].Merge(std::move(from[s]));
      }
    }
    a.completeness = std::min(a.completeness, b.completeness);
    a.input_events += b.input_events;
    a.shed_events += b.shed_events;
    return a;
  }

  // Reduces each window's partials through a random binary merge tree.
  static std::vector<WindowPartial> TreeReduce(
      std::vector<WindowPartial> partials, Rng& rng) {
    std::map<TimeMicros, std::vector<WindowPartial>> by_window;
    for (WindowPartial& p : partials) {
      by_window[p.window_start].push_back(std::move(p));
    }
    std::vector<WindowPartial> roots;
    for (auto& [start, group] : by_window) {
      while (group.size() > 1) {
        // Pick two random nodes; their merge rejoins the worklist, so the
        // reduction walks a uniformly random unordered binary tree.
        const size_t i = rng.NextBelow(group.size());
        WindowPartial x = std::move(group[i]);
        group.erase(group.begin() + static_cast<long>(i));
        const size_t j = rng.NextBelow(group.size());
        WindowPartial y = std::move(group[j]);
        group.erase(group.begin() + static_cast<long>(j));
        group.push_back(MergeTwo(std::move(x), std::move(y)));
      }
      if (!group.empty()) {
        roots.push_back(std::move(group.front()));
      }
    }
    return roots;
  }

  static std::string RenderKey(const GroupKey& key) {
    std::string out;
    for (const Value& v : key) {
      out += v.ToString() + "|";
    }
    return out;
  }

  // Canonical row map keyed by (window, group key); values stay Values so
  // numeric comparisons can be bit-exact.
  static std::map<std::string, std::vector<Value>> Index(
      const std::vector<ResultRow>& rows, size_t key_columns) {
    std::map<std::string, std::vector<Value>> out;
    for (const ResultRow& row : rows) {
      std::string key =
          StrFormat("%lld|", static_cast<long long>(row.window_start));
      for (size_t i = 0; i < key_columns; ++i) {
        key += row.values[i].ToString() + "|";
      }
      out[key] = std::vector<Value>(row.values.begin() + key_columns,
                                    row.values.end());
    }
    return out;
  }

  // Bit-exact comparison: doubles compare by representation, not by
  // epsilon — the property under test is that merge order cannot perturb
  // even the last ulp for the exact aggregate kinds.
  static void ExpectBitIdentical(
      const std::map<std::string, std::vector<Value>>& got,
      const std::map<std::string, std::vector<Value>>& want,
      const char* label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    for (const auto& [key, want_values] : want) {
      const auto it = got.find(key);
      ASSERT_NE(it, got.end()) << label << ": missing row " << key;
      ASSERT_EQ(it->second.size(), want_values.size()) << label;
      for (size_t i = 0; i < want_values.size(); ++i) {
        const Value& g = it->second[i];
        const Value& w = want_values[i];
        if (g.is_numeric() && w.is_numeric()) {
          const double gd = g.AsNumber();
          const double wd = w.AsNumber();
          EXPECT_EQ(std::memcmp(&gd, &wd, sizeof(double)), 0)
              << label << ": row " << key << " column " << i << ": got "
              << gd << " want " << wd;
        } else {
          EXPECT_EQ(g.ToString(), w.ToString())
              << label << ": row " << key << " column " << i;
        }
      }
    }
  }

  SchemaRegistry registry_;
  SchemaPtr schema_;
};

TEST_F(MergeAlgebraTest, ExactAggregatesBitIdenticalAcrossShuffledOrders) {
  const char* query =
      "SELECT bid.user_id, COUNT(*), SUM(bid.price), AVG(bid.price), "
      "MIN(bid.price), MAX(bid.price) FROM bid GROUP BY bid.user_id "
      "WINDOW 2 s DURATION 10 s;";
  for (const uint64_t seed : {11u, 29u, 47u}) {
    const std::vector<Event> events =
        RandomEvents(4000, seed, /*users=*/25);
    const CentralPlan plan = PlanFor(query, 100 + seed);
    const auto oracle = Index(Oracle(plan, events), 1);
    ASSERT_FALSE(oracle.empty());
    for (const size_t parts : {2u, 5u, 8u}) {
      const std::vector<WindowPartial> partials =
          SplitPartials(plan, events, parts, seed * 31 + parts);
      std::vector<size_t> order(partials.size());
      for (size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
      }
      Rng shuffle_rng(seed * 101 + parts);
      for (int round = 0; round < 4; ++round) {
        for (size_t i = order.size(); i > 1; --i) {
          std::swap(order[i - 1], order[shuffle_rng.NextBelow(i)]);
        }
        const auto got = Index(Finalize(plan, partials, order), 1);
        ExpectBitIdentical(got, oracle, "shuffled flat merge");
      }
    }
  }
}

TEST_F(MergeAlgebraTest, ExactAggregatesBitIdenticalAcrossTreeShapes) {
  const char* query =
      "SELECT bid.user_id, COUNT(*), SUM(bid.price), AVG(bid.price), "
      "MIN(bid.price), MAX(bid.price) FROM bid GROUP BY bid.user_id "
      "WINDOW 2 s DURATION 10 s;";
  const std::vector<Event> events = RandomEvents(3000, 7, /*users=*/20);
  const CentralPlan plan = PlanFor(query, 7);
  const auto oracle = Index(Oracle(plan, events), 1);
  ASSERT_FALSE(oracle.empty());
  const std::vector<WindowPartial> partials =
      SplitPartials(plan, events, 8, 131);
  Rng tree_rng(977);
  for (int shape = 0; shape < 6; ++shape) {
    std::vector<WindowPartial> clones;
    clones.reserve(partials.size());
    for (const WindowPartial& p : partials) {
      clones.push_back(p.Clone());
    }
    const std::vector<WindowPartial> roots =
        TreeReduce(std::move(clones), tree_rng);
    std::vector<size_t> order(roots.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    const auto got = Index(Finalize(plan, roots, order), 1);
    ExpectBitIdentical(got, oracle, "tree-shaped merge");
  }
}

TEST_F(MergeAlgebraTest, CountDistinctOrderInvariantAndWithinEnvelope) {
  // HLL merge is register-wise max: truly associative and commutative, so
  // different orders must agree EXACTLY with each other, and the shared
  // estimate must sit within the sketch envelope of the truth.
  const char* query =
      "SELECT COUNT_DISTINCT(bid.user_id) FROM bid "
      "WINDOW 10 s DURATION 10 s;";
  const int kUsers = 3000;
  std::vector<Event> events;
  Rng rng(13);
  for (int64_t u = 0; u < kUsers; ++u) {
    for (int dup = 0; dup < 2; ++dup) {
      Event e(schema_, rng.NextUint64(),
              100 + static_cast<TimeMicros>(rng.NextBelow(8'000'000)));
      e.SetField(0, Value(u));
      e.SetField(1, Value(1.0));
      events.push_back(std::move(e));
    }
  }
  const CentralPlan plan = PlanFor(query, 44);
  const std::vector<WindowPartial> partials =
      SplitPartials(plan, events, 6, 997);
  std::vector<size_t> order(partials.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::vector<double> estimates;
  Rng shuffle_rng(5);
  for (int round = 0; round < 5; ++round) {
    const std::vector<ResultRow> rows = Finalize(plan, partials, order);
    ASSERT_EQ(rows.size(), 1u);
    estimates.push_back(rows[0].values[0].AsNumber());
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[shuffle_rng.NextBelow(i)]);
    }
  }
  for (const double e : estimates) {
    EXPECT_DOUBLE_EQ(e, estimates[0]);          // order cannot matter
    EXPECT_NEAR(e, static_cast<double>(kUsers),  // sketch envelope (~4%)
                0.04 * kUsers);
  }
}

TEST_F(MergeAlgebraTest, TopKDominantKeySurvivesEveryMergeOrder) {
  // SpaceSaving merge is tie-sensitive in the tail, never in a dominant
  // head: a key with more hits than the summary's total over-count slack
  // must surface first in every merge order, with its reported count in
  // [true, true + slack].
  const char* query =
      "SELECT TOPK(3, bid.user_id) FROM bid WINDOW 10 s DURATION 10 s;";
  std::vector<Event> events;
  Rng rng(89);
  const int kHeavyHits = 2500;
  for (int i = 0; i < kHeavyHits; ++i) {
    Event e(schema_, rng.NextUint64(),
            100 + static_cast<TimeMicros>(rng.NextBelow(8'000'000)));
    e.SetField(0, Value(int64_t{777777}));
    e.SetField(1, Value(1.0));
    events.push_back(std::move(e));
  }
  for (int i = 0; i < 2000; ++i) {  // long random tail
    Event e(schema_, rng.NextUint64(),
            100 + static_cast<TimeMicros>(rng.NextBelow(8'000'000)));
    e.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(500))));
    e.SetField(1, Value(1.0));
    events.push_back(std::move(e));
  }
  const CentralPlan plan = PlanFor(query, 55);
  const std::vector<WindowPartial> partials =
      SplitPartials(plan, events, 5, 271);
  std::vector<size_t> order(partials.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  Rng shuffle_rng(17);
  for (int round = 0; round < 5; ++round) {
    const std::vector<ResultRow> rows = Finalize(plan, partials, order);
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_TRUE(rows[0].values[0].is_list());
    const std::vector<Value>& top = rows[0].values[0].AsList();
    ASSERT_FALSE(top.empty());
    const std::string head = top[0].AsString();
    EXPECT_EQ(head.find("777777:"), 0u) << "round " << round << ": " << head;
    // "key:count" — count must bracket the truth from above only.
    const long long reported = std::stoll(head.substr(head.find(':') + 1));
    EXPECT_GE(reported, kHeavyHits);
    EXPECT_LE(reported, kHeavyHits + 2000);
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[shuffle_rng.NextBelow(i)]);
    }
  }
}

TEST_F(MergeAlgebraTest, MergeIsIdempotentUnderDedupButNotWithout) {
  // Guardrail for the at-least-once hop: absorbing the SAME partial twice
  // must double the counts (AbsorbPartial is a pure merge — dedup is the
  // envelope layer's job, and this is why it must exist).
  const char* query =
      "SELECT COUNT(*) FROM bid WINDOW 10 s DURATION 10 s;";
  const std::vector<Event> events = RandomEvents(500, 3, 10);
  const CentralPlan plan = PlanFor(query, 66);
  const std::vector<WindowPartial> partials =
      SplitPartials(plan, events, 1, 5);
  ASSERT_EQ(partials.size(), 1u);
  const std::vector<ResultRow> once = Finalize(plan, partials, {0});
  const std::vector<ResultRow> twice = Finalize(plan, partials, {0, 0});
  ASSERT_EQ(once.size(), 1u);
  ASSERT_EQ(twice.size(), 1u);
  EXPECT_DOUBLE_EQ(once[0].values[0].AsNumber(), 500.0);
  EXPECT_DOUBLE_EQ(twice[0].values[0].AsNumber(), 1000.0);
}

}  // namespace
}  // namespace scrub
