// Unit tests for the per-host ScrubAgent: selection, projection, sampling,
// shedding, window counters, flush batching, and self-expiry.

#include <gtest/gtest.h>

#include "src/agent/agent.h"
#include "src/event/wire.h"
#include "src/plan/plan.h"
#include "src/query/analyzer.h"

namespace scrub {
namespace {

class AgentTest : public ::testing::Test {
 protected:
  AgentTest() : meter_(), agent_(MakeAgent()) {
    schema_ = *EventSchema::Builder("bid")
                   .AddField("user_id", FieldType::kLong)
                   .AddField("price", FieldType::kDouble)
                   .AddField("country", FieldType::kString)
                   .Build();
    EXPECT_TRUE(registry_.Register(schema_).ok());
  }

  ScrubAgent MakeAgent(size_t staging = 64) {
    AgentConfig config;
    config.staging_capacity = staging;
    return ScrubAgent(/*host=*/3, &meter_, config, /*sampling_seed=*/99);
  }

  HostPlan PlanFor(std::string_view text, TimeMicros submit = 0) {
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    Result<QueryPlan> plan = PlanQuery(*aq, next_id_++, submit);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan->host;
  }

  Event MakeBid(RequestId rid, TimeMicros ts, int64_t user, double price) {
    Event e(schema_, rid, ts);
    e.SetField(0, Value(user));
    e.SetField(1, Value(price));
    e.SetField(2, Value("US"));
    return e;
  }

  SchemaRegistry registry_;
  SchemaPtr schema_;
  CostMeter meter_;
  ScrubAgent agent_;
  QueryId next_id_ = 1;
};

TEST_F(AgentTest, NoQueriesStillChargesLogFloor) {
  const int64_t ns = agent_.LogEvent(MakeBid(1, 10, 5, 1.0));
  EXPECT_GT(ns, 0);
  EXPECT_EQ(meter_.scrub_ns(), ns);
  EXPECT_EQ(agent_.total_events_logged(), 1u);
  // Nothing staged.
  EXPECT_TRUE(agent_.Flush(100).empty());
}

TEST_F(AgentTest, SelectionFiltersAndProjectionNulls) {
  agent_.InstallQuery(PlanFor(
      "SELECT bid.user_id, COUNT(*) FROM bid WHERE bid.price > 2.0 "
      "GROUP BY bid.user_id WINDOW 1 s DURATION 60 s;"));
  agent_.LogEvent(MakeBid(1, 10, 7, 3.0));   // passes
  agent_.LogEvent(MakeBid(2, 11, 8, 1.0));   // filtered
  std::vector<EventBatch> batches = agent_.Flush(20);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].event_count, 1u);
  Result<std::vector<Event>> events =
      DecodeBatch(registry_, batches[0].payload);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 1u);
  const Event& shipped = (*events)[0];
  EXPECT_EQ(shipped.GetField("user_id"), Value(int64_t{7}));
  EXPECT_EQ(shipped.GetField("price"), Value(3.0));  // read by WHERE
  EXPECT_TRUE(shipped.GetField("country").is_null());  // projected away

  const AgentQueryStats* stats = agent_.StatsFor(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->events_considered, 2u);
  EXPECT_EQ(stats->events_filtered, 1u);
  EXPECT_EQ(stats->events_staged, 1u);
  EXPECT_EQ(stats->events_shipped, 1u);
}

TEST_F(AgentTest, WindowCountersTrackSeenAndSampled) {
  agent_.InstallQuery(PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 10 s;"));
  // 3 events in window [0,1s), 2 in [1s,2s).
  agent_.LogEvent(MakeBid(1, 100, 1, 1.0));
  agent_.LogEvent(MakeBid(2, 200, 1, 1.0));
  agent_.LogEvent(MakeBid(3, 900'000, 1, 1.0));
  agent_.LogEvent(MakeBid(4, 1'100'000, 1, 1.0));
  agent_.LogEvent(MakeBid(5, 1'900'000, 1, 1.0));
  std::vector<EventBatch> batches = agent_.Flush(2'000'000);
  ASSERT_EQ(batches.size(), 1u);
  ASSERT_EQ(batches[0].counters.size(), 2u);
  EXPECT_EQ(batches[0].counters[0].window_start, 0);
  EXPECT_EQ(batches[0].counters[0].seen, 3u);
  EXPECT_EQ(batches[0].counters[0].sampled, 3u);  // no sampling -> all
  EXPECT_EQ(batches[0].counters[1].window_start, 1'000'000);
  EXPECT_EQ(batches[0].counters[1].seen, 2u);
}

TEST_F(AgentTest, EventSamplingReducesShippedShare) {
  agent_.InstallQuery(PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 60 s DURATION 60 s "
      "SAMPLE EVENTS 10%;"));
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    agent_.LogEvent(MakeBid(static_cast<RequestId>(i), 100 + i, 1, 1.0));
  }
  const AgentQueryStats* stats = agent_.StatsFor(1);
  ASSERT_NE(stats, nullptr);
  const double rate =
      static_cast<double>(stats->events_staged + stats->events_dropped) / n;
  EXPECT_NEAR(rate, 0.10, 0.02);
  EXPECT_EQ(stats->events_sampled_out + stats->events_staged +
                stats->events_dropped,
            static_cast<uint64_t>(n));
}

TEST_F(AgentTest, ShedsInsteadOfBlockingWhenStagingFull) {
  ScrubAgent small = MakeAgent(/*staging=*/8);
  small.InstallQuery(PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 60 s DURATION 60 s;"));
  for (int i = 0; i < 20; ++i) {
    small.LogEvent(MakeBid(static_cast<RequestId>(i), 100, 1, 1.0));
  }
  const AgentQueryStats* stats = small.StatsFor(next_id_ - 1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->events_staged, 8u);
  EXPECT_EQ(stats->events_dropped, 12u);
}

TEST_F(AgentTest, FlushSplitsLargeBatches) {
  AgentConfig config;
  config.staging_capacity = 4096;
  config.max_batch_events = 100;
  ScrubAgent agent(1, &meter_, config, 1);
  agent.InstallQuery(PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 60 s DURATION 60 s;"));
  for (int i = 0; i < 250; ++i) {
    agent.LogEvent(MakeBid(static_cast<RequestId>(i), 100, 1, 1.0));
  }
  std::vector<EventBatch> batches = agent.Flush(200);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].event_count, 100u);
  EXPECT_EQ(batches[1].event_count, 100u);
  EXPECT_EQ(batches[2].event_count, 50u);
}

TEST_F(AgentTest, EventsOutsideSpanIgnored) {
  agent_.InstallQuery(PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 1 s START 10 s DURATION 5 s;"));
  agent_.LogEvent(MakeBid(1, 5 * kMicrosPerSecond, 1, 1.0));    // too early
  agent_.LogEvent(MakeBid(2, 12 * kMicrosPerSecond, 1, 1.0));   // in span
  agent_.LogEvent(MakeBid(3, 16 * kMicrosPerSecond, 1, 1.0));   // too late
  const AgentQueryStats* stats = agent_.StatsFor(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->events_considered, 1u);
}

TEST_F(AgentTest, ExpiredQueriesRetireOnFlush) {
  agent_.InstallQuery(PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 2 s;"));
  agent_.LogEvent(MakeBid(1, 100, 1, 1.0));
  std::vector<QueryId> expired;
  std::vector<EventBatch> batches =
      agent_.Flush(3 * kMicrosPerSecond, &expired);
  EXPECT_EQ(batches.size(), 1u);  // final drain still ships
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 1u);
  EXPECT_EQ(agent_.active_queries(), 0u);
  // Stats survive retirement.
  EXPECT_NE(agent_.StatsFor(1), nullptr);
}

TEST_F(AgentTest, RemoveQueryStopsCollection) {
  agent_.InstallQuery(PlanFor(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 60 s;"));
  agent_.RemoveQuery(1);
  agent_.LogEvent(MakeBid(1, 100, 1, 1.0));
  EXPECT_TRUE(agent_.Flush(200).empty());
}

TEST_F(AgentTest, MultipleQueriesProcessIndependently) {
  agent_.InstallQuery(PlanFor(
      "SELECT COUNT(*) FROM bid WHERE bid.price > 5.0 "
      "WINDOW 1 s DURATION 60 s;"));
  agent_.InstallQuery(PlanFor(
      "SELECT COUNT(*) FROM bid WHERE bid.user_id = 1 "
      "WINDOW 1 s DURATION 60 s;"));
  agent_.LogEvent(MakeBid(1, 100, 1, 1.0));   // matches only query 2
  agent_.LogEvent(MakeBid(2, 100, 2, 9.0));   // matches only query 1
  std::vector<EventBatch> batches = agent_.Flush(200);
  ASSERT_EQ(batches.size(), 2u);
  for (const EventBatch& b : batches) {
    EXPECT_EQ(b.event_count, 1u);
  }
  EXPECT_NE(batches[0].query_id, batches[1].query_id);
}

// --- Reliable delivery ------------------------------------------------------

TEST_F(AgentTest, SequenceNumbersAreMonotonePerQuery) {
  const HostPlan p1 = PlanFor("SELECT COUNT(*) FROM bid WINDOW 1 s "
                              "DURATION 60 s;");
  const HostPlan p2 = PlanFor("SELECT COUNT(*) FROM bid WINDOW 1 s "
                              "DURATION 60 s;");
  agent_.InstallQuery(p1);
  agent_.InstallQuery(p2);
  agent_.LogEvent(MakeBid(1, 10, 5, 1.0));
  std::vector<EventBatch> first = agent_.Flush(1000);
  agent_.LogEvent(MakeBid(2, 2000, 5, 1.0));
  std::vector<EventBatch> second = agent_.Flush(3000);
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(second.size(), 2u);
  for (const EventBatch& b : first) {
    EXPECT_EQ(b.seq, 1u);  // each query numbers its own stream
    EXPECT_EQ(b.epoch, 0u);
  }
  for (const EventBatch& b : second) {
    EXPECT_EQ(b.seq, 2u);
  }
}

TEST_F(AgentTest, WireSizeCountsHeaderAndCounters) {
  agent_.InstallQuery(PlanFor("SELECT COUNT(*) FROM bid WINDOW 1 s "
                              "DURATION 60 s;"));
  agent_.LogEvent(MakeBid(1, 10, 5, 1.0));
  std::vector<EventBatch> batches = agent_.Flush(1000);
  ASSERT_EQ(batches.size(), 1u);
  const EventBatch& b = batches[0];
  EXPECT_FALSE(b.payload.empty());
  EXPECT_FALSE(b.counters.empty());
  EXPECT_EQ(b.WireSize(), b.payload.size() + 32 * b.counters.size() + 36);
}

TEST_F(AgentTest, RetransmitsUntilAcked) {
  AgentConfig config;
  config.retransmit_budget = 60 * kMicrosPerSecond;
  config.retransmit_backoff = 100 * kMicrosPerMilli;
  ScrubAgent agent(/*host=*/3, &meter_, config, /*sampling_seed=*/99);
  const HostPlan plan = PlanFor("SELECT COUNT(*) FROM bid WINDOW 1 s "
                                "DURATION 60 s;");
  agent.InstallQuery(plan);
  agent.LogEvent(MakeBid(1, 10, 5, 1.0));
  std::vector<EventBatch> batches = agent.Flush(1000);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(agent.pending_retransmits(), 1u);

  // Jitter keeps the first retry within +/-25% of the backoff: nothing is
  // due at half the backoff, everything is due at 130%.
  EXPECT_TRUE(agent.Retransmits(1000 + 50 * kMicrosPerMilli).empty());
  std::vector<EventBatch> retries =
      agent.Retransmits(1000 + 130 * kMicrosPerMilli);
  ASSERT_EQ(retries.size(), 1u);
  EXPECT_EQ(retries[0].seq, batches[0].seq);  // identical batch, same seq
  EXPECT_EQ(retries[0].payload, batches[0].payload);
  EXPECT_EQ(agent.StatsFor(plan.query_id)->batches_retransmitted, 1u);
  EXPECT_EQ(agent.pending_retransmits(), 1u);  // still buffered until acked

  agent.OnAck(plan.query_id, batches[0].seq);
  EXPECT_EQ(agent.pending_retransmits(), 0u);
  EXPECT_EQ(agent.StatsFor(plan.query_id)->batches_acked, 1u);
  EXPECT_TRUE(agent.Retransmits(1000 + kMicrosPerSecond).empty());
}

TEST_F(AgentTest, RetransmitBudgetSpentShedsAndCounts) {
  AgentConfig config;
  config.retransmit_budget = 200 * kMicrosPerMilli;
  ScrubAgent agent(/*host=*/3, &meter_, config, /*sampling_seed=*/99);
  const HostPlan plan = PlanFor("SELECT COUNT(*) FROM bid WINDOW 1 s "
                                "DURATION 60 s;");
  agent.InstallQuery(plan);
  agent.LogEvent(MakeBid(1, 10, 5, 1.0));
  ASSERT_EQ(agent.Flush(1000).size(), 1u);
  EXPECT_EQ(agent.pending_retransmits(), 1u);
  // Never acked; once the budget elapses the copy is shed, not re-sent.
  EXPECT_TRUE(agent.Retransmits(1000 + 300 * kMicrosPerMilli).empty());
  EXPECT_EQ(agent.pending_retransmits(), 0u);
  const AgentQueryStats* stats = agent.StatsFor(plan.query_id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->batches_expired, 1u);
  EXPECT_EQ(stats->events_abandoned, 1u);
}

TEST_F(AgentTest, RetransmitBufferEvictsOldestAtCapacity) {
  AgentConfig config;
  config.retransmit_budget = 60 * kMicrosPerSecond;
  config.retransmit_capacity = 2;
  ScrubAgent agent(/*host=*/3, &meter_, config, /*sampling_seed=*/99);
  const HostPlan plan = PlanFor("SELECT COUNT(*) FROM bid WINDOW 1 s "
                                "DURATION 60 s;");
  agent.InstallQuery(plan);
  for (int i = 0; i < 3; ++i) {
    agent.LogEvent(MakeBid(i + 1, 10 + i, 5, 1.0));
    ASSERT_EQ(agent.Flush(1000 * (i + 1)).size(), 1u);
  }
  EXPECT_EQ(agent.pending_retransmits(), 2u);  // oldest copy gave way
  const AgentQueryStats* stats = agent.StatsFor(plan.query_id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->batches_evicted, 1u);
  EXPECT_EQ(stats->events_abandoned, 1u);
}

TEST_F(AgentTest, HeartbeatsOnlyWhenOptedIn) {
  // Default config: a flush with nothing staged ships nothing.
  agent_.InstallQuery(PlanFor("SELECT COUNT(*) FROM bid WINDOW 1 s "
                              "DURATION 60 s;"));
  EXPECT_TRUE(agent_.Flush(5000).empty());

  // With heartbeats on, the same silent flush ships a zeroed counter for
  // the current window — "reachable, nothing to report".
  AgentConfig config;
  config.flush_heartbeats = true;
  ScrubAgent beating(/*host=*/3, &meter_, config, /*sampling_seed=*/99);
  beating.InstallQuery(PlanFor("SELECT COUNT(*) FROM bid WINDOW 1 s "
                               "DURATION 60 s;"));
  std::vector<EventBatch> batches = beating.Flush(5000);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].event_count, 0u);
  ASSERT_EQ(batches[0].counters.size(), 1u);
  EXPECT_EQ(batches[0].counters[0].window_start, 0);
  EXPECT_EQ(batches[0].counters[0].seen, 0u);
  EXPECT_EQ(batches[0].counters[0].sampled, 0u);
}

TEST_F(AgentTest, PerQueryCostScalesWithActiveQueries) {
  // The marginal cost of logging grows with matching queries — the E7
  // relationship. Verify monotonicity at the agent level.
  const int64_t baseline = agent_.LogEvent(MakeBid(1, 100, 1, 1.0));
  agent_.InstallQuery(PlanFor(
      "SELECT COUNT(*) FROM bid WHERE bid.price > 0.5 "
      "WINDOW 1 s DURATION 60 s;"));
  const int64_t one_query = agent_.LogEvent(MakeBid(2, 101, 1, 1.0));
  for (int i = 0; i < 4; ++i) {
    agent_.InstallQuery(PlanFor(
        "SELECT COUNT(*) FROM bid WHERE bid.price > 0.5 "
        "WINDOW 1 s DURATION 60 s;"));
  }
  const int64_t five_queries = agent_.LogEvent(MakeBid(3, 102, 1, 1.0));
  EXPECT_GT(one_query, baseline);
  EXPECT_GT(five_queries, one_query);
}

}  // namespace
}  // namespace scrub
