// Golden lint corpus: a fixed set of queries with the exact diagnostics the
// linter must emit, as "rule[severity]@begin-end" summaries. The point is
// drift detection: any change to rule logic, ordering, severities or span
// attribution shows up as a corpus diff that has to be reviewed here, next
// to the query that produced it. When an intentional change lands, rerun and
// paste the printed actual summaries.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/lint/lint.h"
#include "src/query/analyzer.h"

namespace scrub {
namespace {

struct CorpusCase {
  const char* query;
  const char* expected;  // "clean" or space-joined diagnostic summaries
};

std::string Summarize(const std::vector<Diagnostic>& diags) {
  if (diags.empty()) {
    return "clean";
  }
  std::vector<std::string> parts;
  for (const Diagnostic& d : diags) {
    std::string where = "query";
    if (d.span.IsValid()) {
      where = StrFormat("%zu-%zu", d.span.begin, d.span.end);
    }
    parts.push_back(StrFormat("%s[%s]@%s", d.rule.c_str(),
                              LintSeverityName(d.severity), where.c_str()));
  }
  return StrJoin(parts, " ");
}

TEST(LintCorpusTest, GoldenDiagnostics) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry
                  .Register(*EventSchema::Builder("bid")
                                 .AddField("user_id", FieldType::kLong)
                                 .AddField("price", FieldType::kDouble)
                                 .AddField("country", FieldType::kString)
                                 .AddField("won", FieldType::kBool)
                                 .Build())
                  .ok());
  LintOptions options;
  options.fleet_hosts = 100;
  options.events_per_host_per_second = 1000.0;
  options.field_cardinality = {{"user_id", 1'000'000}, {"country", 8}};

  const std::vector<CorpusCase> corpus = {
      // 1. Well-formed grouped aggregation: nothing to say.
      {"SELECT bid.country, COUNT(*) FROM bid WHERE bid.country = 'US' "
       "@[SERVICE IN BidServers] GROUP BY bid.country WINDOW 5 s "
       "DURATION 60 s;",
       "clean"},
      // 2. High-cardinality GROUP BY without TOPK.
      {"SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
       "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;",
       "scrubql-unbounded-group-by[error]@47-58 scrubql-sampling-sharded-estimate[note]@84-101"},
      // 3. GROUP BY the join key: one group per request.
      {"SELECT bid.__request_id, COUNT(*) FROM bid GROUP BY "
       "bid.__request_id WINDOW 5 s DURATION 60 s SAMPLE EVENTS 10%;",
       "scrubql-unbounded-group-by[error]@52-68 scrubql-sampling-sharded-estimate[note]@94-111"},
      // 4. Aggregate-free GROUP BY = exact distinct enumeration.
      {"SELECT bid.country FROM bid GROUP BY bid.country WINDOW 5 s "
       "DURATION 60 s SAMPLE EVENTS 10%;",
       "scrubql-exact-distinct[warning]@28-48"},
      // 5. Sampling so aggressive the Eq. 1-3 error bound is useless.
      {"SELECT COUNT(*) FROM bid WHERE bid.user_id = 7 WINDOW 5 s "
       "DURATION 60 s SAMPLE HOSTS 2% SAMPLE EVENTS 1%;",
       "scrubql-sampling-error[warning]@88-104 scrubql-dead-projection[note]@31-42"},
      // 6. Whole fleet, no target, no sampling.
      {"SELECT COUNT(*) FROM bid WINDOW 5 s DURATION 60 s;", "scrubql-full-fleet[warning]@16-24"},
      // 7. Field ships with every event but central never reads it.
      {"SELECT bid.country, COUNT(*), MIN(bid.price) FROM bid "
       "WHERE bid.won = true GROUP BY bid.country WINDOW 5 s "
       "DURATION 60 s SAMPLE EVENTS 50%;",
       "scrubql-sampling-sharded-estimate[note]@121-138 scrubql-dead-projection[note]@60-67"},
      // 8. Predicate with selectivity ~ 1 ships everything anyway.
      {"SELECT COUNT(*) FROM bid WHERE bid.user_id != 7 WINDOW 5 s "
       "DURATION 60 s SAMPLE EVENTS 50%;",
       "scrubql-dead-projection[note]@31-42 scrubql-ineffective-filter[warning]@25-47"},
      // 9. Window shorter than the agent flush interval.
      {"SELECT COUNT(*) FROM bid WINDOW 100 ms DURATION 60 s "
       "SAMPLE EVENTS 50%;",
       "scrubql-window-under-flush[warning]@25-38"},
      // 10. Span eats most of the admission duration budget.
      {"SELECT COUNT(*) FROM bid WINDOW 1 m DURATION 20 h "
       "SAMPLE EVENTS 50%;",
       "scrubql-span-budget[warning]@36-49"},
      // 11. Grouped + sampled COUNT: sharded central adds per-group bounds.
      {"SELECT bid.country, COUNT(*) FROM bid GROUP BY bid.country "
       "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;",
       "scrubql-sampling-sharded-estimate[note]@84-101"},
      // 12. Equality pin vs excluded range: unsatisfiable conjunct set.
      {"SELECT COUNT(*) FROM bid WHERE bid.user_id = 200 AND "
       "bid.user_id >= 500 WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;",
       "scrubql-dead-projection[note]@31-42 scrubql-filter-contradiction[warning]@25-71"},
      // 13. Empty integral band: no integer strictly between 1 and 2.
      {"SELECT COUNT(*) FROM bid WHERE bid.user_id > 1 AND bid.user_id < 2 "
       "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;",
       "scrubql-dead-projection[note]@31-42 scrubql-filter-contradiction[warning]@25-66"},
      // 14. Weaker bound implied by the stronger one.
      {"SELECT COUNT(*) FROM bid WHERE bid.price > 10 AND bid.price > 5 "
       "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;",
       "scrubql-dead-projection[note]@31-40 scrubql-redundant-conjunct[warning]@50-63"},
      // 15. Equality pin subsumes a consistent range check.
      {"SELECT COUNT(*) FROM bid WHERE bid.user_id = 7 AND "
       "bid.user_id < 10 WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;",
       "scrubql-dead-projection[note]@31-42 scrubql-redundant-conjunct[warning]@51-67"},
      // 16. Duplicate conjunct.
      {"SELECT COUNT(*) FROM bid WHERE bid.price > 10 AND bid.price > 10 "
       "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;",
       "scrubql-dead-projection[note]@31-40 scrubql-redundant-conjunct[warning]@50-64"},
      // 17. Division by a constant zero in WHERE: always NULL, ordered
      // compare against it never true, so the filter also contradicts.
      {"SELECT COUNT(*) FROM bid WHERE bid.price / 0 > 1 WINDOW 5 s "
       "DURATION 60 s SAMPLE EVENTS 50%;",
       "scrubql-dead-projection[note]@31-40 scrubql-filter-contradiction[warning]@31-48 scrubql-division-by-zero[warning]@31-48 scrubql-null-comparison[warning]@31-48"},
      // 18. Division by a constant zero in the SELECT list.
      {"SELECT SUM(bid.price) / 0 FROM bid WINDOW 5 s DURATION 60 s "
       "SAMPLE EVENTS 50%;",
       "scrubql-division-by-zero[warning]@7-25"},
      // 19. Satisfiable band: tightening bounds are not redundant (the
      // filter-only field still notes as a dead projection).
      {"SELECT COUNT(*) FROM bid WHERE bid.price > 10 AND bid.price < 20 "
       "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;",
       "scrubql-dead-projection[note]@31-40"},
      // 20. Raw projection of a selective slice: clean.
      {"SELECT bid.price, bid.country FROM bid WHERE bid.country = 'US' "
       "WINDOW 5 s DURATION 60 s SAMPLE EVENTS 50%;",
       "clean"},
  };

  for (size_t i = 0; i < corpus.size(); ++i) {
    const CorpusCase& c = corpus[i];
    Result<AnalyzedQuery> analyzed = ParseAndAnalyze(c.query, registry);
    ASSERT_TRUE(analyzed.ok())
        << "corpus " << i + 1 << ": " << analyzed.status().ToString();
    const std::string actual = Summarize(LintQuery(*analyzed, options));
    EXPECT_EQ(actual, c.expected)
        << "corpus " << i + 1 << "\n  query:  " << c.query
        << "\n  actual: {\"" << actual << "\"}";
  }
}

}  // namespace
}  // namespace scrub
