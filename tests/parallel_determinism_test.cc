// Determinism under parallelism: the defining contract of the worker-pool
// integration is that thread count is a pure performance knob. For the same
// seed and inputs, ShardedCentral and the full ScrubSystem must produce
// byte-identical result transcripts (row content AND emission order) for any
// worker count — including under fault injection, where retransmission and
// dedup paths are exercised.
//
// Transcripts render every field of every row at full precision, so any
// divergence (a reordered merge, a float summed in a different order, a
// dropped row) fails loudly.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/central/sharded_central.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/event/wire.h"
#include "src/query/analyzer.h"
#include "src/scrub/scrub_system.h"

namespace scrub {
namespace {

// Full-precision rendering: ResultRow::ToString() plus the completeness at
// 17 significant digits (ToString truncates it to two decimals).
std::string RenderRow(const ResultRow& row) {
  return StrFormat("q%llu %s c=%.17g",
                   static_cast<unsigned long long>(row.query_id),
                   row.ToString().c_str(), row.completeness);
}

// ---------------------------------------------------------------------------
// ShardedCentral: per-shard fold + coordinator merge on a WorkerPool.
// ---------------------------------------------------------------------------

class ShardedDeterminismTest : public ::testing::Test {
 protected:
  ShardedDeterminismTest() {
    bid_schema_ = *EventSchema::Builder("bid")
                       .AddField("user_id", FieldType::kLong)
                       .AddField("price", FieldType::kDouble)
                       .Build();
    EXPECT_TRUE(registry_.Register(bid_schema_).ok());
  }

  CentralPlan PlanFor(std::string_view text, QueryId id) {
    AnalyzerOptions options;
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry_, options);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    Result<QueryPlan> plan = PlanQuery(*aq, id, 0);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    CentralPlan central = plan->central;
    central.hosts_targeted = 1;
    central.hosts_sampled = 1;
    return central;
  }

  // A multi-host, multi-tick ingest: 8 simulated hosts each ship a batch per
  // tick (distinct seqs so dedup admits them), interleaved with OnTick calls
  // so window closes race with ingestion the way they do in production.
  std::vector<std::string> RunSharded(size_t shards, size_t workers) {
    ShardedCentral central(&registry_, shards, CentralConfig{}, workers);
    const CentralPlan agg = PlanFor(
        "SELECT bid.user_id, COUNT(*), SUM(bid.price), AVG(bid.price) "
        "FROM bid GROUP BY bid.user_id WINDOW 1 s DURATION 10 s;",
        1);
    const CentralPlan raw = PlanFor(
        "SELECT bid.user_id, bid.price FROM bid WHERE bid.price > 4.5 "
        "WINDOW 1 s DURATION 10 s;",
        2);
    std::vector<std::string> transcript;
    auto sink = [&transcript](const ResultRow& row) {
      transcript.push_back(RenderRow(row));
    };
    EXPECT_TRUE(central.InstallQuery(agg, sink).ok());
    EXPECT_TRUE(central.InstallQuery(raw, sink).ok());

    Rng rng(99);
    uint64_t seq = 1;
    for (int tick = 0; tick < 8; ++tick) {
      const TimeMicros now = (tick + 1) * 500 * kMicrosPerMilli;
      std::vector<EventBatch> batches;
      for (HostId host = 0; host < 8; ++host) {
        for (const QueryId qid : {agg.query_id, raw.query_id}) {
          std::vector<Event> events;
          for (int i = 0; i < 40; ++i) {
            Event e(bid_schema_, rng.NextUint64(),
                    tick * 500 * kMicrosPerMilli +
                        static_cast<TimeMicros>(rng.NextBelow(500'000)));
            e.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(16))));
            e.SetField(1, Value(rng.NextDouble() * 5));
            events.push_back(std::move(e));
          }
          EventBatch batch;
          batch.query_id = qid;
          batch.host = host;
          batch.seq = seq++;
          batch.event_count = events.size();
          batch.payload = EncodeBatch(events);
          batches.push_back(std::move(batch));
        }
      }
      EXPECT_TRUE(central.IngestBatches(batches, now).ok());
      central.OnTick(now);
    }
    central.OnTick(60 * kMicrosPerSecond);
    EXPECT_FALSE(transcript.empty());
    return transcript;
  }

  SchemaRegistry registry_;
  SchemaPtr bid_schema_;
};

TEST_F(ShardedDeterminismTest, TranscriptByteIdenticalAcrossWorkerCounts) {
  // workers == 0 is the inline sequential reference path.
  const std::vector<std::string> reference = RunSharded(4, 0);
  EXPECT_EQ(RunSharded(4, 1), reference);
  EXPECT_EQ(RunSharded(4, 2), reference);
  EXPECT_EQ(RunSharded(4, 8), reference);
}

TEST_F(ShardedDeterminismTest, MoreWorkersThanShardsIsStillDeterministic) {
  const std::vector<std::string> reference = RunSharded(2, 0);
  EXPECT_EQ(RunSharded(2, 8), reference);
}

// ---------------------------------------------------------------------------
// Full ScrubSystem: agent flush fan-out across simulated hosts.
// ---------------------------------------------------------------------------

constexpr const char* kAggQuery =
    "SELECT bid.user_id, COUNT(*), SUM(bid.bid_price) FROM bid "
    "GROUP BY bid.user_id WINDOW 1 s DURATION 3 s;";

std::vector<std::string> RunSystem(size_t workers, double drop_rate,
                                   bool columnar = true, size_t regions = 0,
                                   const char* query = kAggQuery,
                                   bool metrics = true,
                                   bool adaptive = false) {
  SystemConfig config;
  config.seed = 7;
  config.platform.seed = 7;
  config.platform.bidservers_per_dc = 3;
  config.platform.adservers_per_dc = 1;
  config.platform.presentation_per_dc = 1;
  config.platform.num_campaigns = 3;
  config.platform.line_items_per_campaign = 3;
  config.workers = workers;
  config.columnar = columnar;
  config.combiner_regions = regions;
  // Row and columnar payloads differ in size; a zero per-byte transport
  // latency keeps delivery timing — and the transcript — comparable across
  // the two pipelines, not just across worker counts.
  config.transport.micros_per_byte = 0;
  config.central.collect_op_metrics = metrics;
  if (adaptive) {
    // Short phases so the full decision sequence — forced-row calibration,
    // forced-columnar calibration, pipeline lock, batch retune — lands
    // inside the 3 s trace.
    config.adaptive.enabled = true;
    config.adaptive.calibration_pumps = 2;
    config.adaptive.tune_interval_pumps = 2;
    config.adaptive.min_batch_events = 16;
  }
  if (drop_rate > 0) {
    config.faults.Category(TrafficCategory::kScrubEvents).drop = drop_rate;
    config.central.allowed_lateness = 5 * kMicrosPerSecond;
    config.agent.retransmit_backoff = 125 * kMicrosPerMilli;
  }
  ScrubSystem system(config);
  PoissonLoadConfig load;
  load.requests_per_second = 200;
  load.duration = 3 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);
  std::vector<std::string> transcript;
  auto submitted =
      system.Submit(query, [&transcript](const ResultRow& row) {
        transcript.push_back(RenderRow(row));
      });
  EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
  system.RunUntil(4 * kMicrosPerSecond);
  system.Drain();
  EXPECT_FALSE(transcript.empty());
  return transcript;
}

TEST(SystemDeterminismTest, FaultFreeTranscriptIdenticalAcrossWorkers) {
  const std::vector<std::string> reference = RunSystem(0, 0.0);
  EXPECT_EQ(RunSystem(1, 0.0), reference);
  EXPECT_EQ(RunSystem(2, 0.0), reference);
  EXPECT_EQ(RunSystem(8, 0.0), reference);
}

TEST(SystemDeterminismTest, TwentyPercentDropTranscriptIdenticalAcrossWorkers) {
  // Drops trigger per-host retransmission (its own RNG stream for backoff
  // jitter) and seq/epoch dedup at central: the paths most at risk from a
  // nondeterministic flush order.
  const std::vector<std::string> reference = RunSystem(0, 0.2);
  EXPECT_EQ(RunSystem(1, 0.2), reference);
  EXPECT_EQ(RunSystem(2, 0.2), reference);
  EXPECT_EQ(RunSystem(8, 0.2), reference);
}

TEST(SystemDeterminismTest, RowPipelineTranscriptIdenticalAcrossWorkers) {
  const std::vector<std::string> reference =
      RunSystem(0, 0.0, /*columnar=*/false);
  EXPECT_EQ(RunSystem(2, 0.0, /*columnar=*/false), reference);
  EXPECT_EQ(RunSystem(8, 0.0, /*columnar=*/false), reference);
}

TEST(SystemDeterminismTest, PipelinesAgreeByteForByteAcrossWorkers) {
  // The data-plane switch is a pure representation change: for every worker
  // count the columnar transcript must equal the row transcript, byte for
  // byte, clean...
  const std::vector<std::string> reference =
      RunSystem(0, 0.0, /*columnar=*/false);
  for (const size_t workers : {size_t{0}, size_t{1}, size_t{2}, size_t{8}}) {
    EXPECT_EQ(RunSystem(workers, 0.0, /*columnar=*/true), reference)
        << "workers=" << workers;
  }
}

TEST(SystemDeterminismTest, PipelinesAgreeByteForByteUnderDrops) {
  // ...and under a 20% drop plan, where retransmission holds encoded
  // payloads (columnar bytes on the columnar path) and central dedup sees
  // the same seq/epoch stream either way.
  const std::vector<std::string> reference =
      RunSystem(0, 0.2, /*columnar=*/false);
  for (const size_t workers : {size_t{0}, size_t{1}, size_t{2}, size_t{8}}) {
    EXPECT_EQ(RunSystem(workers, 0.2, /*columnar=*/true), reference)
        << "workers=" << workers;
  }
}

TEST(SystemDeterminismTest, MetricsAndAdaptiveMatrixCollapsesToOneTranscript) {
  // The operator-metrics plane is pure observation and the adaptive
  // controller's overrides land only at empty-staging flush boundaries, so
  // the whole matrix — metrics {off,on} x adaptive {off,on} x workers
  // {0,2,8}, for BOTH static pipelines — must collapse onto the single
  // reference transcript. Adaptive runs include the forced-row ->
  // forced-columnar calibration switch mid-query; metrics-off + adaptive-on
  // starves the controller (no counters), which must also be harmless.
  const std::vector<std::string> reference = RunSystem(0, 0.0);
  for (const bool columnar : {false, true}) {
    for (const size_t workers : {size_t{0}, size_t{2}, size_t{8}}) {
      for (const bool metrics : {false, true}) {
        for (const bool adaptive : {false, true}) {
          EXPECT_EQ(RunSystem(workers, 0.0, columnar, 0, kAggQuery, metrics,
                              adaptive),
                    reference)
              << "columnar=" << columnar << " workers=" << workers
              << " metrics=" << metrics << " adaptive=" << adaptive;
        }
      }
    }
  }
}

TEST(SystemDeterminismTest, AdaptiveJoinTranscriptNeutralAcrossWorkers) {
  // Join plans exercise the other agent staging paths (row arrivals and
  // columnar join sections); the calibration switch must stay invisible
  // there too.
  const std::vector<std::string> reference = RunSystem(
      0, 0.0, /*columnar=*/true, 0,
      "SELECT impression.line_item_id, COUNT(*) FROM bid, impression "
      "GROUP BY impression.line_item_id WINDOW 1 s DURATION 3 s;");
  for (const size_t workers : {size_t{0}, size_t{2}, size_t{8}}) {
    EXPECT_EQ(RunSystem(workers, 0.0, /*columnar=*/true, 0,
                        "SELECT impression.line_item_id, COUNT(*) FROM bid, "
                        "impression GROUP BY impression.line_item_id "
                        "WINDOW 1 s DURATION 3 s;",
                        /*metrics=*/true, /*adaptive=*/true),
              reference)
        << "workers=" << workers;
  }
}

constexpr const char* kJoinQuery =
    "SELECT impression.line_item_id, COUNT(*) FROM bid, impression "
    "GROUP BY impression.line_item_id WINDOW 1 s DURATION 3 s;";

TEST(SystemDeterminismTest, JoinPipelinesAgreeByteForByteAcrossWorkers) {
  // Joins stage columnar too: per-source sections plus the explicit staging
  // interleave ride one kColumnarJoin batch, and central re-folds them in
  // arrival order. The columnar-staged join transcript must equal the
  // row-staged one byte for byte at every worker count (workers > 0 also
  // exercises the sharded per-request re-bucket of join slices).
  const std::vector<std::string> reference =
      RunSystem(0, 0.0, /*columnar=*/false, /*regions=*/0, kJoinQuery);
  for (const size_t workers : {size_t{0}, size_t{2}, size_t{8}}) {
    EXPECT_EQ(RunSystem(workers, 0.0, /*columnar=*/true, 0, kJoinQuery),
              reference)
        << "workers=" << workers;
  }
}

TEST(SystemDeterminismTest, JoinPipelinesAgreeByteForByteUnderDrops) {
  // Under a 20% drop plan the retransmit path holds encoded kColumnarJoin
  // payloads; dedup and replay must keep the join transcript exact.
  const std::vector<std::string> reference =
      RunSystem(0, 0.2, /*columnar=*/false, /*regions=*/0, kJoinQuery);
  for (const size_t workers : {size_t{0}, size_t{2}, size_t{8}}) {
    EXPECT_EQ(RunSystem(workers, 0.2, /*columnar=*/true, 0, kJoinQuery),
              reference)
        << "workers=" << workers;
  }
}

TEST(SystemDeterminismTest, HierarchicalTranscriptIdenticalAcrossWorkers) {
  // The regional combiner tier must keep the worker knob pure: flat and
  // hierarchical are different row pipelines, but WITHIN the hierarchical
  // topology every worker count replays the same transcript byte for byte.
  const std::vector<std::string> reference =
      RunSystem(0, 0.0, /*columnar=*/true, /*regions=*/2);
  EXPECT_EQ(RunSystem(2, 0.0, /*columnar=*/true, /*regions=*/2), reference);
  EXPECT_EQ(RunSystem(8, 0.0, /*columnar=*/true, /*regions=*/2), reference);
}

TEST(SystemDeterminismTest, HierarchicalTranscriptIdenticalUnderDrops) {
  // Drops now hit the agent -> combiner hop; combiner dedup plus envelope
  // sequencing must keep the replay exact for every worker count.
  const std::vector<std::string> reference =
      RunSystem(0, 0.2, /*columnar=*/true, /*regions=*/2);
  EXPECT_EQ(RunSystem(2, 0.2, /*columnar=*/true, /*regions=*/2), reference);
  EXPECT_EQ(RunSystem(8, 0.2, /*columnar=*/true, /*regions=*/2), reference);
}

TEST(SystemDeterminismTest, FlatAndHierarchicalAgreeOnExactAggregates) {
  // COUNT finals are order-independent bit for bit, so the full worker x
  // topology matrix must collapse onto ONE transcript: flat workers {0,2,8}
  // and hierarchical {1,2,4} regions x workers {0,2,8} all byte-identical.
  const char* query =
      "SELECT bid.user_id, COUNT(*) FROM bid "
      "GROUP BY bid.user_id WINDOW 1 s DURATION 3 s;";
  const std::vector<std::string> reference =
      RunSystem(0, 0.0, /*columnar=*/true, /*regions=*/0, query);
  for (const size_t workers : {size_t{0}, size_t{2}, size_t{8}}) {
    EXPECT_EQ(RunSystem(workers, 0.0, true, 0, query), reference)
        << "flat workers=" << workers;
    for (const size_t regions : {size_t{1}, size_t{2}, size_t{4}}) {
      EXPECT_EQ(RunSystem(workers, 0.0, true, regions, query), reference)
          << "regions=" << regions << " workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace scrub
