// Unit tests for the query server: submission validation, dissemination,
// host sampling, teardown and cancellation. Uses a hand-built mini cluster
// (no bidding platform) so behaviour is fully controlled.

#include <gtest/gtest.h>

#include "src/common/strings.h"
#include "src/server/query_server.h"

namespace scrub {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  ServerTest()
      : transport_(&scheduler_, &registry_) {
    schema_ = *EventSchema::Builder("bid")
                   .AddField("user_id", FieldType::kLong)
                   .AddField("price", FieldType::kDouble)
                   .Build();
    EXPECT_TRUE(schemas_.Register(schema_).ok());

    for (int i = 0; i < 10; ++i) {
      const HostId h = registry_.AddHost(
          StrFormat("bid-%02d", i), "BidServers", i < 5 ? "DC1" : "DC2");
      agents_.emplace(h, std::make_unique<ScrubAgent>(
                             h, &registry_.meter(h), AgentConfig{},
                             static_cast<uint64_t>(h)));
      app_hosts_.push_back(h);
    }
    central_host_ = registry_.AddHost("central", "ScrubCentral", "DC1",
                                      /*monitorable=*/false);
    server_host_ = registry_.AddHost("server", "ScrubServer", "DC1",
                                     /*monitorable=*/false);
    central_ = std::make_unique<ScrubCentral>(&schemas_);
    server_ = std::make_unique<QueryServer>(
        &scheduler_, &transport_, &registry_, &schemas_, central_.get(),
        server_host_, central_host_,
        [this](HostId h) {
          const auto it = agents_.find(h);
          return it == agents_.end() ? nullptr : it->second.get();
        });
  }

  size_t AgentsWithQuery(QueryId id) {
    size_t n = 0;
    for (const auto& [h, agent] : agents_) {
      if (agent->HasQuery(id)) {
        ++n;
      }
    }
    return n;
  }

  Scheduler scheduler_;
  HostRegistry registry_;
  Transport transport_;
  SchemaRegistry schemas_;
  SchemaPtr schema_;
  std::unordered_map<HostId, std::unique_ptr<ScrubAgent>> agents_;
  std::vector<HostId> app_hosts_;
  HostId central_host_ = kInvalidHost;
  HostId server_host_ = kInvalidHost;
  std::unique_ptr<ScrubCentral> central_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(ServerTest, DisseminatesToAllTargetedHosts) {
  Result<SubmittedQuery> s = server_->Submit(
      "SELECT COUNT(*) FROM bid DURATION 60 s;", [](const ResultRow&) {});
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->hosts_targeted, 10u);
  EXPECT_EQ(s->hosts_installed, 10u);
  // Query objects are in flight, not yet installed.
  EXPECT_EQ(AgentsWithQuery(s->id), 0u);
  scheduler_.RunUntil(kMicrosPerSecond);
  EXPECT_EQ(AgentsWithQuery(s->id), 10u);
  EXPECT_TRUE(central_->HasQuery(s->id));
  EXPECT_GT(transport_.bytes_sent(TrafficCategory::kScrubControl), 0u);
}

TEST_F(ServerTest, DatacenterTargeting) {
  Result<SubmittedQuery> s = server_->Submit(
      "SELECT COUNT(*) FROM bid @[DATACENTER = DC2] DURATION 60 s;",
      [](const ResultRow&) {});
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->hosts_targeted, 5u);
}

TEST_F(ServerTest, HostSamplingPicksSubset) {
  Result<SubmittedQuery> s = server_->Submit(
      "SELECT COUNT(*) FROM bid DURATION 60 s SAMPLE HOSTS 30%;",
      [](const ResultRow&) {});
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->hosts_targeted, 10u);
  EXPECT_EQ(s->hosts_installed, 3u);
  scheduler_.RunUntil(kMicrosPerSecond);
  EXPECT_EQ(AgentsWithQuery(s->id), 3u);
}

TEST_F(ServerTest, HostSamplingNeverPicksZeroHosts) {
  Result<SubmittedQuery> s = server_->Submit(
      "SELECT COUNT(*) FROM bid DURATION 60 s SAMPLE HOSTS 1%;",
      [](const ResultRow&) {});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->hosts_installed, 1u);
}

TEST_F(ServerTest, BadQueriesRejectedUpFront) {
  EXPECT_FALSE(server_->Submit("SELECT", [](const ResultRow&) {}).ok());
  EXPECT_FALSE(
      server_->Submit("SELECT COUNT(*) FROM ghost;", [](const ResultRow&) {})
          .ok());
  EXPECT_FALSE(server_
                   ->Submit("SELECT COUNT(*) FROM bid @[SERVICE IN Ghosts];",
                            [](const ResultRow&) {})
                   .ok());
  EXPECT_EQ(server_->active_queries(), 0u);
}

TEST_F(ServerTest, TeardownAtSpanExpiry) {
  Result<SubmittedQuery> s = server_->Submit(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 2 s;",
      [](const ResultRow&) {});
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  scheduler_.RunUntil(kMicrosPerSecond);
  EXPECT_EQ(AgentsWithQuery(s->id), 10u);
  scheduler_.RunUntil(4 * kMicrosPerSecond);
  EXPECT_EQ(AgentsWithQuery(s->id), 0u);
  EXPECT_EQ(server_->active_queries(), 0u);
}

TEST_F(ServerTest, CancelRemovesEverywhere) {
  Result<SubmittedQuery> s = server_->Submit(
      "SELECT COUNT(*) FROM bid DURATION 60 s;", [](const ResultRow&) {});
  ASSERT_TRUE(s.ok());
  scheduler_.RunUntil(kMicrosPerSecond);
  ASSERT_TRUE(server_->Cancel(s->id).ok());
  scheduler_.RunUntil(2 * kMicrosPerSecond);
  EXPECT_EQ(AgentsWithQuery(s->id), 0u);
  EXPECT_FALSE(central_->HasQuery(s->id));
  EXPECT_FALSE(server_->Cancel(s->id).ok());  // already gone
}

TEST_F(ServerTest, ResultsRouteBackThroughServer) {
  std::vector<ResultRow> rows;
  Result<SubmittedQuery> s = server_->Submit(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 2 s;",
      [&rows](const ResultRow& row) { rows.push_back(row); });
  ASSERT_TRUE(s.ok());
  scheduler_.RunUntil(kMicrosPerSecond / 2);

  // Hand one event to an agent and ship its flush to central manually.
  ScrubAgent* agent = agents_[app_hosts_[0]].get();
  ASSERT_TRUE(agent->HasQuery(s->id));
  Event e(schema_, 1, scheduler_.Now());
  e.SetField(0, Value(int64_t{5}));
  e.SetField(1, Value(1.0));
  agent->LogEvent(e);
  for (EventBatch& batch : agent->Flush(scheduler_.Now())) {
    const Status st = central_->IngestBatch(batch, scheduler_.Now());
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  // Close windows well past expiry; results travel central -> server ->
  // user sink via transport.
  scheduler_.RunUntil(5 * kMicrosPerSecond);
  central_->OnTick(scheduler_.Now());
  scheduler_.RunUntil(6 * kMicrosPerSecond);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].values[0], Value(int64_t{1}));
  EXPECT_GT(transport_.bytes_sent(TrafficCategory::kScrubResults), 0u);
}

// --- Static analysis at admission -------------------------------------------

TEST_F(ServerTest, LintErrorRejectsAdmission) {
  ServerConfig config;
  config.lint.field_cardinality["user_id"] = 1'000'000;
  QueryServer server(
      &scheduler_, &transport_, &registry_, &schemas_, central_.get(),
      server_host_, central_host_, [](HostId) { return nullptr; }, config);
  Result<SubmittedQuery> s = server.Submit(
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "DURATION 60 s SAMPLE EVENTS 10%;",
      [](const ResultRow&) {});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.status().ToString().find("rejected by lint"),
            std::string::npos)
      << s.status().ToString();
  EXPECT_NE(s.status().ToString().find("scrubql-unbounded-group-by"),
            std::string::npos)
      << s.status().ToString();
  // Nothing was admitted: no query object reached any host.
  EXPECT_EQ(server.active_queries(), 0u);
}

TEST_F(ServerTest, LintWarningsRideOnAcceptedQuery) {
  // Untargeted, unsampled: warning severity only, so admission proceeds and
  // the findings travel back on the SubmittedQuery.
  Result<SubmittedQuery> s = server_->Submit(
      "SELECT COUNT(*) FROM bid DURATION 60 s;", [](const ResultRow&) {});
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_FALSE(s->lint_warnings.empty());
  EXPECT_EQ(s->lint_warnings[0].rule, lint_rules::kFullFleet);
  EXPECT_EQ(s->hosts_installed, 10u);
}

TEST_F(ServerTest, LintDisabledAdmitsEverything) {
  ServerConfig config;
  config.lint_enabled = false;
  config.lint.field_cardinality["user_id"] = 1'000'000;
  QueryServer server(
      &scheduler_, &transport_, &registry_, &schemas_, central_.get(),
      server_host_, central_host_, [](HostId) { return nullptr; }, config);
  Result<SubmittedQuery> s = server.Submit(
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "DURATION 60 s SAMPLE EVENTS 10%;",
      [](const ResultRow&) {});
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE(s->lint_warnings.empty());
}

TEST_F(ServerTest, LintFleetSizeTracksLiveRegistry) {
  // The full-fleet warning quotes the monitorable host count, which the
  // server reads from the live registry (10 app hosts; central and server
  // are not monitorable).
  Result<SubmittedQuery> s = server_->Submit(
      "SELECT COUNT(*) FROM bid DURATION 60 s;", [](const ResultRow&) {});
  ASSERT_TRUE(s.ok());
  ASSERT_FALSE(s->lint_warnings.empty());
  EXPECT_NE(s->lint_warnings[0].message.find("~10"), std::string::npos)
      << s->lint_warnings[0].message;
}

TEST_F(ServerTest, QueryIdsAreUnique) {
  Result<SubmittedQuery> a = server_->Submit(
      "SELECT COUNT(*) FROM bid DURATION 10 s;", [](const ResultRow&) {});
  Result<SubmittedQuery> b = server_->Submit(
      "SELECT COUNT(*) FROM bid DURATION 10 s;", [](const ResultRow&) {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->id, b->id);
  EXPECT_EQ(server_->active_queries(), 2u);
}

}  // namespace
}  // namespace scrub
