// Unit tests for the full-logging baseline pipeline and its batch query
// engine.

#include <gtest/gtest.h>

#include "src/baseline/logging_baseline.h"

namespace scrub {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : transport_(&scheduler_, &registry_) {
    schema_ = *EventSchema::Builder("bid")
                   .AddField("user_id", FieldType::kLong)
                   .AddField("price", FieldType::kDouble)
                   .AddField("country", FieldType::kString)
                   .Build();
    EXPECT_TRUE(schemas_.Register(schema_).ok());
    host_a_ = registry_.AddHost("a", "BidServers", "DC1");
    host_b_ = registry_.AddHost("b", "BidServers", "DC2");
    warehouse_ = registry_.AddHost("warehouse", "Warehouse", "DC1",
                                   /*monitorable=*/false);
    pipeline_ = std::make_unique<LoggingPipeline>(
        &scheduler_, &transport_, &registry_, &schemas_, warehouse_);
    logger_ = pipeline_->Logger();
  }

  Event MakeBid(RequestId rid, TimeMicros ts, int64_t user, double price,
                const char* country = "US") {
    Event e(schema_, rid, ts);
    e.SetField(0, Value(user));
    e.SetField(1, Value(price));
    e.SetField(2, Value(country));
    return e;
  }

  Scheduler scheduler_;
  HostRegistry registry_;
  Transport transport_;
  SchemaRegistry schemas_;
  SchemaPtr schema_;
  HostId host_a_ = kInvalidHost;
  HostId host_b_ = kInvalidHost;
  HostId warehouse_ = kInvalidHost;
  std::unique_ptr<LoggingPipeline> pipeline_;
  EventLoggerFn logger_;
};

TEST_F(BaselineTest, LoggingChargesHostsAndShipsEverything) {
  for (int i = 0; i < 100; ++i) {
    const int64_t ns = logger_(host_a_, MakeBid(i, 100 + i, i % 10, 1.5));
    EXPECT_GT(ns, 0);
  }
  EXPECT_GT(registry_.meter(host_a_).scrub_ns(), 0);
  EXPECT_EQ(pipeline_->events_stored(), 0u);  // staged, not shipped yet
  pipeline_->PumpFlushes();
  scheduler_.RunUntil(kMicrosPerSecond);
  EXPECT_EQ(pipeline_->events_stored(), 100u);
  EXPECT_GT(pipeline_->bytes_stored(), 0u);
  EXPECT_GT(transport_.bytes_sent(TrafficCategory::kBaselineLog), 0u);
  EXPECT_GT(pipeline_->data_complete_at(), 0);
}

TEST_F(BaselineTest, BatchQueryMatchesExpectedAggregates) {
  // 60 events: users 0..5, prices 1..60, two hosts.
  for (int i = 0; i < 60; ++i) {
    logger_(i % 2 ? host_a_ : host_b_,
            MakeBid(static_cast<RequestId>(i), 1000 + i, i % 6, i + 1.0));
  }
  pipeline_->PumpFlushes();
  scheduler_.RunUntil(kMicrosPerSecond);

  Result<LoggingPipeline::BatchAnswer> answer = pipeline_->RunQuery(
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "WINDOW 1 h;");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->events_scanned, 60u);
  EXPECT_GT(answer->processing_ns, 0);
  EXPECT_GE(answer->answer_at, pipeline_->data_complete_at());
  ASSERT_EQ(answer->rows.size(), 6u);
  for (const ResultRow& row : answer->rows) {
    EXPECT_EQ(row.values[1], Value(int64_t{10}));
  }
}

TEST_F(BaselineTest, BatchQueryAppliesSelection) {
  for (int i = 0; i < 40; ++i) {
    logger_(host_a_, MakeBid(static_cast<RequestId>(i), 1000 + i, 1,
                             i < 10 ? 5.0 : 0.5));
  }
  pipeline_->PumpFlushes();
  scheduler_.RunUntil(kMicrosPerSecond);
  Result<LoggingPipeline::BatchAnswer> answer = pipeline_->RunQuery(
      "SELECT COUNT(*) FROM bid WHERE bid.price > 1.0 WINDOW 1 h;");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_FALSE(answer->rows.empty());
  EXPECT_EQ(answer->rows[0].values[0], Value(int64_t{10}));
}

TEST_F(BaselineTest, InvalidBatchQueryRejected) {
  EXPECT_FALSE(pipeline_->RunQuery("SELECT COUNT(*) FROM ghost;").ok());
}

TEST_F(BaselineTest, BaselineShipsMoreBytesThanScrubWould) {
  // The core E11 claim in miniature: the baseline ships full events; a
  // Scrub query projecting one field of 10% of events ships far less. Here
  // we just verify the baseline's byte accounting reflects full payloads.
  uint64_t full_bytes = 0;
  for (int i = 0; i < 50; ++i) {
    Event e = MakeBid(static_cast<RequestId>(i), 1000 + i, i, 2.0,
                      "somewhat_long_country_name");
    full_bytes += e.WireSize();
    logger_(host_a_, e);
  }
  pipeline_->PumpFlushes();
  scheduler_.RunUntil(kMicrosPerSecond);
  // Batch overhead exists but the payload dominates.
  EXPECT_GE(transport_.bytes_sent(TrafficCategory::kBaselineLog),
            full_bytes);
}

}  // namespace
}  // namespace scrub
