// A deliberately naive, single-threaded reference executor: the oracle the
// differential tests compare Scrub against.
//
// It shares nothing with Scrub's execution machinery except the compiled
// expression evaluator and the output-expression renderer (so both sides
// agree on operator semantics by construction). Everything the paper's
// pipeline does incrementally — host-side selection/projection, batching,
// the symmetric hash join, per-window accumulators, sketches — the oracle
// does the slow obvious way: buffer every ground-truth event, then for each
// window materialize the join as an explicit per-request cross product,
// filter with the full WHERE, group with ordinary maps, and aggregate with
// exact arithmetic (real sets for COUNT_DISTINCT, full count maps for TOPK).
//
// Semantics intentionally mirrored from ScrubCentral:
//  * windows start on the slide grid at plan.start_time; events are admitted
//    when start <= ts < min(start + window, end_time);
//  * aggregates skip null arguments (SQL-style);
//  * COUNT finalizes as int64, SUM/AVG as double, AVG of nothing is null;
//  * ungrouped aggregate queries emit a row even for an empty window;
//  * grouped queries emit nothing for groups that never formed.
//
// Sketch-backed aggregates are finalized EXACTLY here (true distinct count,
// full sorted count list for TOPK); the caller compares Scrub's estimates
// against them within documented error bounds (see differential_test.cc).

#ifndef TESTS_REFERENCE_EXECUTOR_H_
#define TESTS_REFERENCE_EXECUTOR_H_

#include <algorithm>
#include <cassert>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/strings.h"
#include "src/plan/expr_eval.h"
#include "src/plan/plan.h"
#include "src/query/analyzer.h"

namespace scrub {

// How the differential test must compare a given output column.
enum class ColumnCheck {
  kExact,            // group keys, COUNT, MIN/MAX, literals: byte equality
  kApproxDouble,     // SUM/AVG: float accumulation order differs
  kDistinctEstimate,  // COUNT_DISTINCT: HLL estimate vs exact count
  kTopK,             // TOPK: exact counts, tie-tolerant ordering
};

class ReferenceExecutor {
 public:
  // `analyzed` supplies the un-split WHERE; `plan` the central-side shape.
  // Sampling must be inactive (the oracle models exact execution only) and
  // joins are at most two-way, like the pipeline's pairwise tuples.
  ReferenceExecutor(const AnalyzedQuery& analyzed, CentralPlan plan)
      : plan_(std::move(plan)) {
    assert(!plan_.SamplingActive());
    assert(plan_.sources.size() <= 2);
    if (analyzed.query.where != nullptr) {
      Result<CompiledExpr> where = CompileExpr(
          *analyzed.query.where, plan_.sources, plan_.schemas);
      assert(where.ok());
      where_ = std::move(where).value();
      has_where_ = true;
    }
    events_.resize(plan_.sources.size());
  }

  const CentralPlan& plan() const { return plan_; }

  // Feed one ground-truth event (any order; non-source types are ignored).
  void Observe(const Event& event) {
    for (size_t s = 0; s < plan_.sources.size(); ++s) {
      if (plan_.sources[s] == event.type_name()) {
        if (event.timestamp() >= plan_.start_time &&
            event.timestamp() < plan_.end_time) {
          events_[s].push_back(event);
        }
        return;
      }
    }
  }

  // Per output column, how the caller should compare Scrub's value to ours.
  std::vector<ColumnCheck> ColumnChecks() const {
    std::vector<ColumnCheck> checks;
    checks.reserve(plan_.outputs.size());
    for (const OutputColumn& column : plan_.outputs) {
      checks.push_back(CheckFor(column.expr));
    }
    return checks;
  }

  // Runs the whole query naively. Rows come out window-ascending; group
  // order within a window is unspecified (match rows by key, not position).
  // Raw-mode rows keep arrival order within a window; compare as multisets.
  std::vector<ResultRow> Execute() const {
    std::vector<ResultRow> rows;
    const TimeMicros window =
        plan_.window_micros > 0 ? plan_.window_micros
                                : plan_.end_time - plan_.start_time;
    const TimeMicros slide =
        plan_.slide_micros > 0 ? plan_.slide_micros : window;
    for (TimeMicros start = plan_.start_time; start < plan_.end_time;
         start += slide) {
      ExecuteWindow(start, window, &rows);
      if (slide <= 0) {
        break;
      }
    }
    return rows;
  }

 private:
  // Exact accumulator state for one aggregate slot.
  struct NaiveAcc {
    uint64_t count = 0;
    double sum = 0.0;
    bool has_minmax = false;
    Value min_value;
    Value max_value;
    // COUNT_DISTINCT: the actual set; TOPK: the actual per-key counts.
    // Keyed by rendered value (Value::ToString is injective per type here).
    std::map<std::string, uint64_t> keyed;
  };

  struct NaiveGroup {
    std::vector<Value> key;
    std::vector<NaiveAcc> slots;
  };

  // The loosest aggregate anywhere in the column expression decides how the
  // column can be compared.
  ColumnCheck CheckFor(const OutputExpr& expr) const {
    ColumnCheck check = ColumnCheck::kExact;
    WalkAggregates(expr, &check);
    return check;
  }

  static void Loosen(ColumnCheck* check, ColumnCheck to) {
    if (static_cast<int>(to) > static_cast<int>(*check)) {
      *check = to;
    }
  }

  void WalkAggregates(const OutputExpr& expr, ColumnCheck* check) const {
    if (expr.kind == OutputKind::kAggregate) {
      switch (plan_.aggregates[static_cast<size_t>(expr.index)].func) {
        case AggregateFunc::kSum:
        case AggregateFunc::kAvg:
          Loosen(check, ColumnCheck::kApproxDouble);
          break;
        case AggregateFunc::kCountDistinct:
          Loosen(check, ColumnCheck::kDistinctEstimate);
          break;
        case AggregateFunc::kTopK:
          Loosen(check, ColumnCheck::kTopK);
          break;
        case AggregateFunc::kCount:
        case AggregateFunc::kMin:
        case AggregateFunc::kMax:
          break;
      }
    }
    for (const OutputExpr& child : expr.children) {
      WalkAggregates(child, check);
    }
  }

  void ExecuteWindow(TimeMicros start, TimeMicros window,
                     std::vector<ResultRow>* rows) const {
    const TimeMicros end = start + window;
    // Materialize the window's joined tuples the obvious way.
    std::vector<EventTuple> tuples;
    if (plan_.sources.size() == 1) {
      for (const Event& e : events_[0]) {
        if (InWindow(e, start, end)) {
          tuples.push_back(EventTuple{&e});
        }
      }
    } else {
      // Explicit per-request cross product: the naive spelling of the
      // pipeline's symmetric hash join.
      std::map<RequestId, std::pair<std::vector<const Event*>,
                                    std::vector<const Event*>>>
          by_request;
      for (const Event& e : events_[0]) {
        if (InWindow(e, start, end)) {
          by_request[e.request_id()].first.push_back(&e);
        }
      }
      for (const Event& e : events_[1]) {
        if (InWindow(e, start, end)) {
          by_request[e.request_id()].second.push_back(&e);
        }
      }
      for (const auto& [rid, sides] : by_request) {
        for (const Event* a : sides.first) {
          for (const Event* b : sides.second) {
            tuples.push_back(EventTuple{a, b});
          }
        }
      }
    }

    if (!plan_.aggregate_mode) {
      for (const EventTuple& tuple : tuples) {
        if (has_where_ && !EvalPredicate(where_, tuple)) {
          continue;
        }
        ResultRow row;
        row.query_id = plan_.query_id;
        row.window_start = start;
        row.window_end = end;
        for (const CompiledExpr& e : plan_.raw_select) {
          row.values.push_back(EvalExpr(e, tuple));
        }
        row.error_bounds.assign(row.values.size(), 0.0);
        rows->push_back(std::move(row));
      }
      return;
    }

    std::map<std::string, NaiveGroup> groups;
    for (const EventTuple& tuple : tuples) {
      if (has_where_ && !EvalPredicate(where_, tuple)) {
        continue;
      }
      std::vector<Value> key;
      std::string rendered;
      for (const CompiledExpr& g : plan_.group_by) {
        key.push_back(EvalExpr(g, tuple));
        rendered += key.back().ToString() + "\x1f";
      }
      NaiveGroup& group = groups[rendered];
      if (group.slots.empty()) {
        group.key = key;
        group.slots.resize(plan_.aggregates.size());
      }
      for (size_t i = 0; i < plan_.aggregates.size(); ++i) {
        Update(plan_.aggregates[i], tuple, &group.slots[i]);
      }
    }

    // Continuous time series for ungrouped queries, like CloseWindow.
    if (plan_.group_by.empty() && groups.empty()) {
      groups[""].slots.resize(plan_.aggregates.size());
    }

    for (const auto& [rendered, group] : groups) {
      ResultRow row;
      row.query_id = plan_.query_id;
      row.window_start = start;
      row.window_end = end;
      std::vector<Value> agg_values(plan_.aggregates.size());
      for (size_t i = 0; i < plan_.aggregates.size(); ++i) {
        agg_values[i] = Finalize(plan_.aggregates[i], group.slots[i]);
      }
      for (const OutputColumn& column : plan_.outputs) {
        row.values.push_back(
            EvalOutputExpr(column.expr, group.key, agg_values));
      }
      row.error_bounds.assign(row.values.size(), 0.0);
      rows->push_back(std::move(row));
    }
  }

  bool InWindow(const Event& e, TimeMicros start, TimeMicros end) const {
    // end_time also bounds admission: a window straddling the query's end
    // only sees events before end_time (WindowsFor rejects the rest).
    return e.timestamp() >= start && e.timestamp() < end &&
           e.timestamp() < plan_.end_time;
  }

  static void Update(const AggregateSpec& spec, const EventTuple& tuple,
                     NaiveAcc* acc) {
    Value arg;
    if (spec.has_arg) {
      arg = EvalExpr(spec.arg, tuple);
      if (arg.is_null()) {
        return;  // aggregates skip null arguments
      }
    }
    switch (spec.func) {
      case AggregateFunc::kCount:
        ++acc->count;
        return;
      case AggregateFunc::kSum:
      case AggregateFunc::kAvg:
        ++acc->count;
        acc->sum += arg.is_numeric() ? arg.AsNumber() : 0.0;
        return;
      case AggregateFunc::kMin:
      case AggregateFunc::kMax:
        if (!acc->has_minmax) {
          acc->min_value = arg;
          acc->max_value = arg;
          acc->has_minmax = true;
        } else {
          if (arg.Compare(acc->min_value) < 0) {
            acc->min_value = arg;
          }
          if (arg.Compare(acc->max_value) > 0) {
            acc->max_value = arg;
          }
        }
        return;
      case AggregateFunc::kCountDistinct:
      case AggregateFunc::kTopK:
        ++acc->keyed[arg.ToString()];
        return;
    }
  }

  static Value Finalize(const AggregateSpec& spec, const NaiveAcc& acc) {
    switch (spec.func) {
      case AggregateFunc::kCount:
        return Value(static_cast<int64_t>(acc.count));
      case AggregateFunc::kSum:
        return Value(acc.sum);
      case AggregateFunc::kAvg:
        if (acc.count == 0) {
          return Value::Null();
        }
        return Value(acc.sum / static_cast<double>(acc.count));
      case AggregateFunc::kMin:
        return acc.has_minmax ? acc.min_value : Value::Null();
      case AggregateFunc::kMax:
        return acc.has_minmax ? acc.max_value : Value::Null();
      case AggregateFunc::kCountDistinct:
        return Value(static_cast<int64_t>(acc.keyed.size()));
      case AggregateFunc::kTopK: {
        // The FULL exact ranking (not truncated to k), count-descending
        // with key ascending as the tiebreak; rendered "key:count" like
        // FinalizeAccumulator. The test's TOPK comparator prefix-matches
        // Scrub's k entries against this, tolerating tie reordering.
        std::vector<std::pair<uint64_t, std::string>> ranked;
        ranked.reserve(acc.keyed.size());
        for (const auto& [key, count] : acc.keyed) {
          ranked.emplace_back(count, key);
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) {
                    if (a.first != b.first) {
                      return a.first > b.first;
                    }
                    return a.second < b.second;
                  });
        std::vector<Value> out;
        out.reserve(ranked.size());
        for (const auto& [count, key] : ranked) {
          out.push_back(Value(StrFormat("%s:%.0f", key.c_str(),
                                        static_cast<double>(count))));
        }
        return Value(std::move(out));
      }
    }
    return Value::Null();
  }

  CentralPlan plan_;
  CompiledExpr where_;
  bool has_where_ = false;
  std::vector<std::vector<Event>> events_;  // per source, arrival order
};

}  // namespace scrub

#endif  // TESTS_REFERENCE_EXECUTOR_H_
