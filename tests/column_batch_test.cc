// ColumnBatch unit tests: typed columnar storage, null bitmaps, the generic
// fallback migration, and the columnar wire round trip (including selection
// vectors and projection masks). The batch is the agent↔central data-plane
// currency, so the invariants here (dense placeholders, authoritative null
// bitmap, rows()+1 string offsets) are what the decoder and the vectorized
// evaluator lean on.

#include "src/event/column_batch.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "src/event/event.h"
#include "src/event/schema.h"
#include "src/event/wire.h"

namespace scrub {
namespace {

class ColumnBatchTest : public ::testing::Test {
 protected:
  ColumnBatchTest() {
    schema_ = *EventSchema::Builder("bid")
                   .AddField("won", FieldType::kBool)
                   .AddField("user_id", FieldType::kLong)
                   .AddField("price", FieldType::kDouble)
                   .AddField("country", FieldType::kString)
                   .AddField("ids", FieldType::kLongList)
                   .Build();
    EXPECT_TRUE(registry_.Register(schema_).ok());
  }

  Event MakeBid(uint64_t rid, int64_t user, double price,
                const std::string& country) const {
    Event e(schema_, rid, static_cast<TimeMicros>(1000 + rid));
    e.SetField(0, Value(rid % 2 == 0));
    e.SetField(1, Value(user));
    e.SetField(2, Value(price));
    e.SetField(3, Value(country));
    e.SetField(4, Value(std::vector<Value>{Value(int64_t{1}),
                                           Value(static_cast<int64_t>(rid))}));
    return e;
  }

  SchemaRegistry registry_;
  SchemaPtr schema_;
};

TEST_F(ColumnBatchTest, TypedColumnsStoreAndReadBack) {
  ColumnBatch batch(schema_);
  for (uint64_t i = 0; i < 10; ++i) {
    batch.AppendEvent(MakeBid(i, static_cast<int64_t>(100 + i), 1.5 + i,
                              i % 2 == 0 ? "US" : "DE"));
  }
  ASSERT_EQ(batch.rows(), 10u);
  ASSERT_EQ(batch.column_count(), 5u);
  EXPECT_EQ(batch.column(0).rep, ColumnBatch::Rep::kBool);
  EXPECT_EQ(batch.column(1).rep, ColumnBatch::Rep::kInt);
  EXPECT_EQ(batch.column(2).rep, ColumnBatch::Rep::kDouble);
  EXPECT_EQ(batch.column(3).rep, ColumnBatch::Rep::kString);
  EXPECT_EQ(batch.column(4).rep, ColumnBatch::Rep::kGeneric);
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_EQ(batch.request_id(r), r);
    EXPECT_EQ(batch.timestamp(r), static_cast<TimeMicros>(1000 + r));
    EXPECT_EQ(batch.ValueAt(1, r), Value(static_cast<int64_t>(100 + r)));
    EXPECT_EQ(batch.ValueAt(2, r), Value(1.5 + static_cast<double>(r)));
    EXPECT_EQ(batch.ValueAt(3, r), Value(r % 2 == 0 ? "US" : "DE"));
  }
  // String column invariant: rows()+1 offsets into the arena.
  EXPECT_EQ(batch.column(3).offsets.size(), batch.rows() + 1);
}

TEST_F(ColumnBatchTest, NullBitmapIsAuthoritative) {
  ColumnBatch batch(schema_);
  for (uint64_t i = 0; i < 9; ++i) {
    Event e = MakeBid(i, static_cast<int64_t>(i), 2.0, "GB");
    if (i % 3 == 1) {
      e.SetField(3, Value());  // null string
    }
    if (i % 4 == 2) {
      e.SetField(1, Value());  // null long
    }
    batch.AppendEvent(e);
  }
  for (size_t r = 0; r < 9; ++r) {
    EXPECT_EQ(batch.IsNull(3, r), r % 3 == 1);
    EXPECT_EQ(batch.IsNull(1, r), r % 4 == 2);
    EXPECT_EQ(batch.ValueAt(3, r).is_null(), r % 3 == 1);
    EXPECT_EQ(batch.ValueAt(1, r).is_null(), r % 4 == 2);
  }
  // Placeholder slots keep O(1) indexing: typed storage still has one entry
  // per row even though some rows are null.
  EXPECT_EQ(batch.column(1).ints.size(), batch.rows());
}

TEST_F(ColumnBatchTest, TypeMismatchMigratesColumnToGeneric) {
  ColumnBatch batch(schema_);
  batch.AppendEvent(MakeBid(1, 7, 1.0, "US"));
  batch.AppendEvent(MakeBid(2, 8, 2.0, "CA"));
  // Schema says long, the wire says string (schema drift): the column must
  // degrade to boxed values, not reject or coerce.
  Event drifted = MakeBid(3, 0, 3.0, "FR");
  drifted.SetField(1, Value("not-a-number"));
  batch.AppendEvent(drifted);
  EXPECT_EQ(batch.column(1).rep, ColumnBatch::Rep::kGeneric);
  // Earlier typed rows survived the migration intact.
  EXPECT_EQ(batch.ValueAt(1, 0), Value(int64_t{7}));
  EXPECT_EQ(batch.ValueAt(1, 1), Value(int64_t{8}));
  EXPECT_EQ(batch.ValueAt(1, 2), Value("not-a-number"));
}

TEST_F(ColumnBatchTest, MaterializeEventRoundTrips) {
  ColumnBatch batch(schema_);
  Event original = MakeBid(42, 9000, 3.75, "JP");
  original.SetField(0, Value());  // one null to carry through
  batch.AppendEvent(original);
  Event back = batch.MaterializeEvent(0);
  EXPECT_EQ(back.request_id(), original.request_id());
  EXPECT_EQ(back.timestamp(), original.timestamp());
  ASSERT_EQ(back.field_count(), original.field_count());
  for (size_t f = 0; f < original.field_count(); ++f) {
    EXPECT_EQ(back.field(f), original.field(f)) << "field " << f;
  }
}

TEST_F(ColumnBatchTest, WireRoundTripPreservesEveryRow) {
  ColumnBatch batch(schema_);
  std::vector<Event> originals;
  for (uint64_t i = 0; i < 13; ++i) {
    Event e = MakeBid(i, static_cast<int64_t>(i * 11), 0.25 * i, "US");
    if (i % 5 == 3) {
      e.SetField(2, Value());
    }
    batch.AppendEvent(e);
    originals.push_back(std::move(e));
  }
  std::string buf;
  EncodeColumnBatch(batch, /*selection=*/nullptr, batch.rows(),
                    /*keep_field=*/nullptr, &buf);
  Result<ColumnBatch> decoded = DecodeColumnBatch(registry_, buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->rows(), originals.size());
  for (size_t r = 0; r < originals.size(); ++r) {
    Event back = decoded->MaterializeEvent(r);
    EXPECT_EQ(back.request_id(), originals[r].request_id());
    EXPECT_EQ(back.timestamp(), originals[r].timestamp());
    for (size_t f = 0; f < originals[r].field_count(); ++f) {
      EXPECT_EQ(back.field(f), originals[r].field(f))
          << "row " << r << " field " << f;
    }
  }
}

TEST_F(ColumnBatchTest, SelectionVectorEncodesOnlySelectedRows) {
  ColumnBatch batch(schema_);
  for (uint64_t i = 0; i < 20; ++i) {
    batch.AppendEvent(MakeBid(i, static_cast<int64_t>(i), 1.0 + i, "DE"));
  }
  // Every third row, preserving order — the shape the vectorized filter
  // hands to the encoder.
  std::vector<uint32_t> selection;
  for (uint32_t r = 0; r < 20; r += 3) {
    selection.push_back(r);
  }
  std::string buf;
  EncodeColumnBatch(batch, selection.data(), selection.size(),
                    /*keep_field=*/nullptr, &buf);
  Result<ColumnBatch> decoded = DecodeColumnBatch(registry_, buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->rows(), selection.size());
  for (size_t i = 0; i < selection.size(); ++i) {
    EXPECT_EQ(decoded->request_id(i), selection[i]);
    EXPECT_EQ(decoded->ValueAt(1, i),
              Value(static_cast<int64_t>(selection[i])));
  }
}

TEST_F(ColumnBatchTest, ProjectionMaskShipsDroppedColumnsAsNull) {
  ColumnBatch batch(schema_);
  for (uint64_t i = 0; i < 6; ++i) {
    batch.AppendEvent(MakeBid(i, static_cast<int64_t>(i), 2.0, "CA"));
  }
  // Keep user_id and price only — the others ride as one-byte null columns.
  std::vector<bool> keep = {false, true, true, false, false};
  std::string buf;
  EncodeColumnBatch(batch, nullptr, batch.rows(), &keep, &buf);
  Result<ColumnBatch> decoded = DecodeColumnBatch(registry_, buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  for (size_t r = 0; r < 6; ++r) {
    EXPECT_TRUE(decoded->IsNull(0, r));
    EXPECT_FALSE(decoded->IsNull(1, r));
    EXPECT_FALSE(decoded->IsNull(2, r));
    EXPECT_TRUE(decoded->IsNull(3, r));
    EXPECT_TRUE(decoded->IsNull(4, r));
    EXPECT_EQ(decoded->ValueAt(1, r), Value(static_cast<int64_t>(r)));
  }
}

TEST_F(ColumnBatchTest, AllNullColumnCostsOneTagByte) {
  ColumnBatch batch(schema_);
  for (uint64_t i = 0; i < 1000; ++i) {
    Event e = MakeBid(i, 1, 1.0, "US");
    e.SetField(3, Value());
    batch.AppendEvent(e);
  }
  std::vector<bool> keep_all(5, true);
  std::vector<bool> keep_none(5, false);
  std::string with_country;
  std::string without_country;
  EncodeColumnBatch(batch, nullptr, batch.rows(), &keep_none, &without_country);
  // An all-null column and a projected-away column encode identically: one
  // tag byte, independent of row count.
  std::vector<bool> keep_country_only = {false, false, false, true, false};
  EncodeColumnBatch(batch, nullptr, batch.rows(), &keep_country_only,
                    &with_country);
  EXPECT_EQ(with_country.size(), without_country.size());
}

TEST_F(ColumnBatchTest, EmptyBatchRoundTrips) {
  ColumnBatch batch(schema_);
  std::string buf;
  EncodeColumnBatch(batch, nullptr, 0, nullptr, &buf);
  Result<ColumnBatch> decoded = DecodeColumnBatch(registry_, buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->rows(), 0u);
}

TEST_F(ColumnBatchTest, UnknownSchemaIsRejectedAtDecode) {
  SchemaPtr other = *EventSchema::Builder("elsewhere")
                         .AddField("x", FieldType::kLong)
                         .Build();
  ColumnBatch batch(other);
  Event e(other, 1, 1);
  e.SetField(0, Value(int64_t{5}));
  batch.AppendEvent(e);
  std::string buf;
  EncodeColumnBatch(batch, nullptr, 1, nullptr, &buf);
  // registry_ never registered "elsewhere".
  EXPECT_FALSE(DecodeColumnBatch(registry_, buf).ok());
}

}  // namespace
}  // namespace scrub
