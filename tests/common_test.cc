// Unit tests for src/common: Status/Result, strings, BoundedBuffer,
// Histogram, Rng/Zipf, SimClock, CostMeter, WorkerPool.

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/bounded_buffer.h"
#include "src/common/clock.h"
#include "src/common/cost_model.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/worker_pool.h"

namespace scrub {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = InvalidArgument("bad query");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad query");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad query");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, CaseMapping) {
  EXPECT_EQ(AsciiToLower("SeLeCt"), "select");
  EXPECT_EQ(AsciiToUpper("group by"), "GROUP BY");
  EXPECT_TRUE(EqualsIgnoreCase("WINDOW", "window"));
  EXPECT_FALSE(EqualsIgnoreCase("WINDOW", "windows"));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x \t\n"), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(BoundedBufferTest, FifoOrder) {
  BoundedBuffer<int> buf(4);
  EXPECT_TRUE(buf.TryPush(1));
  EXPECT_TRUE(buf.TryPush(2));
  int out = 0;
  EXPECT_TRUE(buf.TryPop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(buf.TryPop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(buf.TryPop(&out));
}

TEST(BoundedBufferTest, ShedsWhenFullAndCounts) {
  BoundedBuffer<int> buf(2);
  EXPECT_TRUE(buf.TryPush(1));
  EXPECT_TRUE(buf.TryPush(2));
  EXPECT_FALSE(buf.TryPush(3));
  EXPECT_FALSE(buf.TryPush(4));
  EXPECT_EQ(buf.dropped(), 2u);
  // The buffered items are unaffected.
  int out = 0;
  EXPECT_TRUE(buf.TryPop(&out));
  EXPECT_EQ(out, 1);
}

TEST(BoundedBufferTest, WrapsAround) {
  BoundedBuffer<int> buf(3);
  int out;
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(buf.TryPush(round));
    EXPECT_TRUE(buf.TryPop(&out));
    EXPECT_EQ(out, round);
  }
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(BoundedBufferTest, DrainInto) {
  BoundedBuffer<int> buf(8);
  for (int i = 0; i < 5; ++i) {
    buf.TryPush(i);
  }
  std::vector<int> out;
  EXPECT_EQ(buf.DrainInto(&out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(buf.DrainInto(&out, 10), 2u);
  EXPECT_EQ(out.size(), 5u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.mean(), 50.5, 0.001);
  // Log-bucketed percentiles: within one bucket width (~12.5% relative).
  EXPECT_NEAR(static_cast<double>(h.p50()), 50, 8);
  EXPECT_NEAR(static_cast<double>(h.p99()), 99, 14);
}

TEST(HistogramTest, QuantileAccuracyIsBounded) {
  Histogram h;
  Rng rng(1);
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBelow(1'000'000)) + 1;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const int64_t exact = values[static_cast<size_t>(q * values.size())];
    const int64_t approx = h.ValueAtQuantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.15 * static_cast<double>(exact))
        << "q=" << q;
  }
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  Histogram a;
  Histogram b;
  Histogram combined;
  for (int i = 0; i < 1000; ++i) {
    a.Record(i);
    combined.Record(i);
  }
  for (int i = 1000; i < 3000; ++i) {
    b.Record(i);
    combined.Record(i);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  EXPECT_EQ(a.p95(), combined.p95());
}

TEST(HistogramTest, EmptyAndReset) {
  Histogram h;
  EXPECT_EQ(h.p99(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-17);
  EXPECT_EQ(h.min(), 0);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBelowCoversRangeWithoutBias) {
  Rng rng(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBelow(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(250.0);
  }
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(6);
  double sum = 0;
  double sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(ZipfTest, HeavyHeadLightTail) {
  ZipfGenerator zipf(1000, 1.1);
  Rng rng(7);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Next(rng)];
  }
  // Rank 0 dominates rank 100 which dominates rank 900.
  EXPECT_GT(counts[0], counts[100] * 5);
  EXPECT_GT(counts[0], 1000);
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.AdvanceTo(50);  // backwards: ignored
  EXPECT_EQ(clock.Now(), 100);
  clock.AdvanceTo(200);
  EXPECT_EQ(clock.Now(), 200);
  clock.AdvanceBy(5);
  EXPECT_EQ(clock.Now(), 205);
}

TEST(CostMeterTest, FractionSplitsAppAndScrub) {
  CostMeter meter;
  EXPECT_EQ(meter.ScrubCpuFraction(), 0.0);
  meter.ChargeApp(900);
  meter.ChargeScrub(100);
  EXPECT_DOUBLE_EQ(meter.ScrubCpuFraction(), 0.1);
  meter.Reset();
  EXPECT_EQ(meter.total_ns(), 0);
}

// ---------------------------------------------------------------------------
// WorkerPool.

TEST(WorkerPoolTest, InlineModeRunsEverythingOnCaller) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<int> out(100, 0);
  pool.ParallelFor(out.size(),
                   [&](size_t i) { out[i] = static_cast<int>(i) * 2; });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 2);
  }
  EXPECT_EQ(pool.regions(), 1u);
}

TEST(WorkerPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    WorkerPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(WorkerPoolTest, DisjointSlotResultsMatchInlineForAnyWidth) {
  // The placement contract: index i writes slot i only, so for any thread
  // count the result vector is identical to the inline run.
  auto run = [](size_t threads) {
    WorkerPool pool(threads);
    std::vector<uint64_t> out(257, 0);
    pool.ParallelFor(out.size(), [&](size_t i) {
      uint64_t v = 0x9E3779B97F4A7C15ULL * (i + 1);
      v ^= v >> 29;
      out[i] = v;
    });
    return out;
  };
  const std::vector<uint64_t> inline_result = run(0);
  EXPECT_EQ(run(1), inline_result);
  EXPECT_EQ(run(3), inline_result);
  EXPECT_EQ(run(8), inline_result);
}

TEST(WorkerPoolTest, ReusableAcrossManyRegions) {
  WorkerPool pool(2);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(10, [&](size_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 50u * 45u);
  EXPECT_EQ(pool.regions(), 50u);
}

TEST(WorkerPoolTest, BoundedQueueBackpressuresSubmit) {
  // Capacity-1 queues: Submit must block (not drop, not grow) while the
  // worker is busy. 200 submits through a 1-slot queue all execute.
  WorkerPool pool(1, /*queue_capacity=*/1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit(0, [&] { ran.fetch_add(1); });
  }
  // Synchronize via a region barrier (ParallelFor joins after queued work).
  pool.ParallelFor(1, [](size_t) {});
  EXPECT_EQ(ran.load(), 200);
}

TEST(WorkerPoolTest, MetersCriticalPathAndBusyTime) {
  WorkerPool pool(2);
  std::atomic<uint64_t> sink{0};
  pool.ParallelFor(8, [&](size_t) {
    uint64_t x = 0;
    for (int i = 0; i < 200000; ++i) {
      x += static_cast<uint64_t>(i);
    }
    sink.fetch_add(x);
  });
  // Two workers split the region: the critical path is at least half the
  // busy time (up to imbalance) and never more than all of it.
  EXPECT_GT(pool.busy_ns(), 0u);
  EXPECT_GE(pool.busy_ns(), pool.critical_ns());
  EXPECT_GE(pool.critical_ns(), pool.busy_ns() / 2 / 2);  // generous slack
}

}  // namespace
}  // namespace scrub
