// End-to-end tests: queries submitted through the full stack — query server
// -> agents on simulated hosts -> transport -> ScrubCentral -> result rows —
// against live traffic from the synthetic bidding platform.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/scrub/scrub_system.h"

namespace scrub {
namespace {

SystemConfig SmallSystem(uint64_t seed = 7) {
  SystemConfig config;
  config.seed = seed;
  config.platform.seed = seed;
  config.platform.datacenters = 2;
  config.platform.bidservers_per_dc = 2;
  config.platform.adservers_per_dc = 1;
  config.platform.presentation_per_dc = 1;
  config.platform.num_campaigns = 4;
  config.platform.line_items_per_campaign = 4;
  return config;
}

TEST(IntegrationTest, CountBidsPerUserFindsTraffic) {
  ScrubSystem system(SmallSystem());
  PoissonLoadConfig load;
  load.requests_per_second = 400;
  load.duration = 10 * kMicrosPerSecond;
  load.user_population = 50;
  system.workload().SchedulePoissonLoad(load);

  std::vector<ResultRow> rows;
  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT bid.user_id, COUNT(*) FROM bid @[SERVICE IN BidServers] "
      "GROUP BY bid.user_id WINDOW 2 s DURATION 10 s;",
      [&rows](const ResultRow& row) { rows.push_back(row); });
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  EXPECT_EQ(submitted->hosts_targeted, 4u);
  EXPECT_EQ(submitted->hosts_installed, 4u);

  system.RunUntil(12 * kMicrosPerSecond);
  system.Drain();

  ASSERT_FALSE(rows.empty());
  // Row totals should match the number of bid events the platform produced
  // within the query span.
  uint64_t total = 0;
  for (const ResultRow& row : rows) {
    ASSERT_EQ(row.values.size(), 2u);
    ASSERT_TRUE(row.values[1].is_int());
    total += static_cast<uint64_t>(row.values[1].AsInt());
  }
  EXPECT_GT(total, 0u);
  EXPECT_LE(total, system.platform().stats().bids);
  // Traffic ran 10s and the query span is 10s; the vast majority of bids
  // should be captured (allowing for the final flush boundary).
  EXPECT_GT(total, system.platform().stats().bids * 8 / 10);
}

TEST(IntegrationTest, UngroupedAverageEmitsEveryWindow) {
  ScrubSystem system(SmallSystem(11));
  PoissonLoadConfig load;
  load.requests_per_second = 300;
  load.duration = 8 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);

  std::vector<ResultRow> rows;
  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT 1000 * AVG(impression.cost) FROM impression "
      "WINDOW 2 s DURATION 8 s;",
      [&rows](const ResultRow& row) { rows.push_back(row); });
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();

  system.RunUntil(10 * kMicrosPerSecond);
  system.Drain();

  // 8s span / 2s windows = 4 windows, each emits exactly one row.
  EXPECT_EQ(rows.size(), 4u);
  bool any_value = false;
  for (const ResultRow& row : rows) {
    ASSERT_EQ(row.values.size(), 1u);
    if (row.values[0].is_double()) {
      any_value = true;
      // CPM = 1000 * avg(cost) = 0.7 * avg(bid); bids are $0.4..$4.5 CPM.
      EXPECT_GT(row.values[0].AsDoubleExact(), 0.2);
      EXPECT_LT(row.values[0].AsDoubleExact(), 5.0);
    }
  }
  EXPECT_TRUE(any_value);
}

TEST(IntegrationTest, JoinOnRequestIdMatchesBidWithAuction) {
  ScrubSystem system(SmallSystem(13));
  PoissonLoadConfig load;
  load.requests_per_second = 200;
  load.duration = 6 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);

  std::vector<ResultRow> rows;
  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT bid.line_item_id, COUNT(*) FROM bid, auction "
      "GROUP BY bid.line_item_id WINDOW 3 s DURATION 6 s;",
      [&rows](const ResultRow& row) { rows.push_back(row); });
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();

  system.RunUntil(8 * kMicrosPerSecond);
  system.Drain();

  ASSERT_FALSE(rows.empty());
  const CentralQueryStats* stats = system.central().StatsFor(submitted->id);
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->tuples_joined, 0u);
}

TEST(IntegrationTest, TargetClauseRestrictsToSingleHost) {
  ScrubSystem system(SmallSystem(17));
  PoissonLoadConfig load;
  load.requests_per_second = 300;
  load.duration = 5 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);

  std::vector<ResultRow> rows;
  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT COUNT(*) FROM bid "
      "@[SERVICE IN BidServers AND SERVER = bid_dc1_00] "
      "WINDOW 5 s DURATION 5 s;",
      [&rows](const ResultRow& row) { rows.push_back(row); });
  // Host names use dashes; the clause above uses a wrong name on purpose.
  EXPECT_FALSE(submitted.ok());
}

TEST(IntegrationTest, UnknownEventTypeFailsAtSubmission) {
  ScrubSystem system(SmallSystem(19));
  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT COUNT(*) FROM bids;", [](const ResultRow&) {});
  EXPECT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kNotFound);
}

TEST(IntegrationTest, QueriesExpireAndFreeHostState) {
  ScrubSystem system(SmallSystem(23));
  PoissonLoadConfig load;
  load.requests_per_second = 100;
  load.duration = 20 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);

  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 3 s;",
      [](const ResultRow&) {});
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();

  system.RunUntil(2 * kMicrosPerSecond);
  // Mid-span: agents hold the query.
  int with_query = 0;
  for (const HostId host : system.platform().bid_servers()) {
    if (system.agent(host)->HasQuery(submitted->id)) {
      ++with_query;
    }
  }
  EXPECT_EQ(with_query, 4);

  system.RunUntil(10 * kMicrosPerSecond);
  for (const HostId host : system.platform().bid_servers()) {
    EXPECT_FALSE(system.agent(host)->HasQuery(submitted->id));
  }
  EXPECT_FALSE(system.central().HasQuery(submitted->id));
}

TEST(IntegrationTest, EventSamplingScalesCountEstimate) {
  // Same traffic, exact vs 20%-sampled COUNT over a selective predicate:
  // the scaled estimate should land near the exact count, with a non-zero
  // Eq. 2 error bound (the predicate makes readings 0/1-valued, so there is
  // genuine within-host variance; a predicate-free COUNT would be exact
  // because agents report window populations exactly).
  uint64_t exact_total = 0;
  double sampled_total = 0;
  for (const bool sampled : {false, true}) {
    ScrubSystem system(SmallSystem(29));
    PoissonLoadConfig load;
    load.requests_per_second = 800;
    load.duration = 10 * kMicrosPerSecond;
    system.workload().SchedulePoissonLoad(load);

    const std::string query = sampled
        ? "SELECT COUNT(*) FROM bid WHERE bid.exchange_id = 1 "
          "WINDOW 10 s DURATION 10 s SAMPLE EVENTS 20%;"
        : "SELECT COUNT(*) FROM bid WHERE bid.exchange_id = 1 "
          "WINDOW 10 s DURATION 10 s;";
    std::vector<ResultRow> rows;
    Result<SubmittedQuery> submitted = system.Submit(
        query, [&rows](const ResultRow& row) { rows.push_back(row); });
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    system.RunUntil(11 * kMicrosPerSecond);
    system.Drain();
    ASSERT_EQ(rows.size(), 1u);
    if (sampled) {
      ASSERT_TRUE(rows[0].values[0].is_double());
      sampled_total = rows[0].values[0].AsDoubleExact();
      EXPECT_GT(rows[0].error_bounds[0], 0.0);
    } else {
      ASSERT_TRUE(rows[0].values[0].is_int());
      exact_total = static_cast<uint64_t>(rows[0].values[0].AsInt());
    }
  }
  ASSERT_GT(exact_total, 100u);
  const double rel_err =
      std::abs(sampled_total - static_cast<double>(exact_total)) /
      static_cast<double>(exact_total);
  EXPECT_LT(rel_err, 0.25) << "sampled=" << sampled_total
                           << " exact=" << exact_total;
}

}  // namespace
}  // namespace scrub
