// Operator-metrics plane, adaptive execution and the calibrated cost model
// (DESIGN.md §16): per-operator counters accumulate on every pipeline shape
// (row, columnar, join, sharded, hierarchical), surface through
// DescribeQuery / EXPLAIN ANALYZE, survive teardown, drive the
// AdaptiveController's calibration and batch tuning, and feed the
// predicted-cost admission check.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/central/adaptive.h"
#include "src/central/sharded_central.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/event/wire.h"
#include "src/lint/lint.h"
#include "src/query/analyzer.h"
#include "src/scrub/scrub_system.h"

namespace scrub {
namespace {

constexpr const char* kAggQuery =
    "SELECT bid.user_id, COUNT(*), SUM(bid.bid_price) FROM bid "
    "GROUP BY bid.user_id WINDOW 1 s DURATION 10 s;";
constexpr const char* kJoinQuery =
    "SELECT impression.line_item_id, COUNT(*) FROM bid, impression "
    "GROUP BY impression.line_item_id WINDOW 1 s DURATION 10 s;";

SystemConfig SmallSystem(bool columnar) {
  SystemConfig config;
  config.seed = 7;
  config.platform.seed = 7;
  config.platform.bidservers_per_dc = 3;
  config.platform.adservers_per_dc = 1;
  config.platform.presentation_per_dc = 1;
  config.columnar = columnar;
  return config;
}

void DriveLoad(ScrubSystem& system, double qps = 300,
               TimeMicros duration = 3 * kMicrosPerSecond) {
  PoissonLoadConfig load;
  load.requests_per_second = qps;
  load.duration = duration;
  system.workload().SchedulePoissonLoad(load);
}

// ---------------------------------------------------------------------------
// Metrics accumulation per pipeline shape.
// ---------------------------------------------------------------------------

class PipelineMetricsTest : public ::testing::TestWithParam<bool> {};

TEST_P(PipelineMetricsTest, CountersConsistentWithCentralStats) {
  ScrubSystem system(SmallSystem(/*columnar=*/GetParam()));
  DriveLoad(system);
  auto submitted = system.Submit(kAggQuery, [](const ResultRow&) {});
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  system.RunUntil(4 * kMicrosPerSecond);

  const CentralQueryStats* cs = system.central().StatsFor(submitted->id);
  ASSERT_NE(cs, nullptr);
  const PhysicalPipeline* pipe = system.central().PipelineFor(submitted->id);
  ASSERT_NE(pipe, nullptr);
  ASSERT_EQ(cs->op_metrics.size(), pipe->ops.size());

  // Decode's input is exactly what central ingested; the tail op's output is
  // exactly the rows emitted so far.
  const OperatorMetrics& decode = cs->op_metrics.front();
  EXPECT_GT(decode.rows_in, 0u);
  EXPECT_EQ(decode.rows_in, cs->events_ingested);
  EXPECT_GT(decode.batches, 0u);
  EXPECT_EQ(cs->op_metrics.back().rows_out, cs->rows_emitted);

  // Chunk-granularity thread-CPU timing: the pipeline as a whole must have
  // burned measurable time on thousands of events.
  uint64_t total_cpu = 0;
  for (const OperatorMetrics& m : cs->op_metrics) {
    total_cpu += m.cpu_ns;
  }
  EXPECT_GT(total_cpu, 0u);

  // Selectivity is rows_out / rows_in, clamped sane.
  for (const OperatorMetrics& m : cs->op_metrics) {
    if (m.rows_in > 0) {
      EXPECT_GE(m.Selectivity(), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RowAndColumnar, PipelineMetricsTest,
                         ::testing::Values(false, true));

TEST(MetricsTest, JoinPipelineFusesProbeAndFold) {
  ScrubSystem system(SmallSystem(/*columnar=*/true));
  DriveLoad(system);
  auto submitted = system.Submit(kJoinQuery, [](const ResultRow&) {});
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  system.RunUntil(4 * kMicrosPerSecond);

  const CentralQueryStats* cs = system.central().StatsFor(submitted->id);
  const PhysicalPipeline* pipe = system.central().PipelineFor(submitted->id);
  ASSERT_NE(cs, nullptr);
  ASSERT_NE(pipe, nullptr);
  ASSERT_EQ(cs->op_metrics.size(), pipe->ops.size());
  int join_at = -1;
  for (size_t i = 0; i < pipe->ops.size(); ++i) {
    if (pipe->ops[i].kind == PhysicalOpKind::kJoin) {
      join_at = static_cast<int>(i);
    }
  }
  ASSERT_GE(join_at, 0);
  const OperatorMetrics& join = cs->op_metrics[static_cast<size_t>(join_at)];
  EXPECT_GT(join.rows_in, 0u);
  // The fold downstream of the probe is fused into the join loop: it still
  // counts rows honestly but carries no CPU stamp of its own.
  ASSERT_GT(cs->op_metrics.size(), static_cast<size_t>(join_at) + 1);
  const OperatorMetrics& fold =
      cs->op_metrics[static_cast<size_t>(join_at) + 1];
  EXPECT_GT(fold.rows_in, 0u);
  EXPECT_EQ(fold.cpu_ns, 0u);
}

TEST(MetricsTest, CollectionOffLeavesStatsEmpty) {
  SystemConfig config = SmallSystem(/*columnar=*/true);
  config.central.collect_op_metrics = false;
  ScrubSystem system(config);
  DriveLoad(system);
  auto submitted = system.Submit(kAggQuery, [](const ResultRow&) {});
  ASSERT_TRUE(submitted.ok());
  system.RunUntil(4 * kMicrosPerSecond);
  const CentralQueryStats* cs = system.central().StatsFor(submitted->id);
  ASSERT_NE(cs, nullptr);
  EXPECT_GT(cs->events_ingested, 0u);  // the query itself still ran
  EXPECT_TRUE(cs->op_metrics.empty());
}

TEST(MetricsTest, ShardedCentralMergesShardMetricsAtCoordinator) {
  SchemaRegistry registry;
  SchemaPtr schema = *EventSchema::Builder("bid")
                          .AddField("user_id", FieldType::kLong)
                          .AddField("price", FieldType::kDouble)
                          .Build();
  ASSERT_TRUE(registry.Register(schema).ok());
  AnalyzerOptions options;
  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      "SELECT bid.user_id, COUNT(*), SUM(bid.price) FROM bid "
      "GROUP BY bid.user_id WINDOW 1 s DURATION 10 s;",
      registry, options);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  Result<QueryPlan> plan = PlanQuery(*aq, 1, 0);
  ASSERT_TRUE(plan.ok());
  CentralPlan central = plan->central;
  central.hosts_targeted = 1;
  central.hosts_sampled = 1;

  ShardedCentral sharded(&registry, /*shards=*/4, CentralConfig{},
                         /*workers=*/2);
  ASSERT_TRUE(sharded.InstallQuery(central, [](const ResultRow&) {}).ok());
  Rng rng(99);
  uint64_t seq = 1;
  for (int tick = 0; tick < 4; ++tick) {
    std::vector<Event> events;
    for (int i = 0; i < 200; ++i) {
      Event e(schema, rng.NextUint64(),
              tick * 500 * kMicrosPerMilli +
                  static_cast<TimeMicros>(rng.NextBelow(500'000)));
      e.SetField(0, Value(static_cast<int64_t>(rng.NextBelow(16))));
      e.SetField(1, Value(rng.NextDouble() * 5));
      events.push_back(std::move(e));
    }
    EventBatch batch;
    batch.query_id = 1;
    batch.host = 0;
    batch.seq = seq++;
    batch.event_count = events.size();
    batch.payload = EncodeBatch(events);
    ASSERT_TRUE(sharded.IngestBatch(batch, (tick + 1) * 500 * kMicrosPerMilli)
                    .ok());
    sharded.OnTick((tick + 1) * 500 * kMicrosPerMilli);
  }
  sharded.OnTick(8 * kMicrosPerSecond);

  // Shard-side metrics sum across the 4 shards and cover all 800 events.
  const std::vector<OperatorMetrics> shard_ops = sharded.ShardOpMetrics(1);
  ASSERT_FALSE(shard_ops.empty());
  EXPECT_EQ(shard_ops.front().rows_in, 800u);

  // The coordinator absorbed the same metrics from WindowPartial deltas and
  // stamped its own Finalize counters.
  const CentralQueryStats* cs = sharded.coordinator().StatsFor(1);
  ASSERT_NE(cs, nullptr);
  ASSERT_FALSE(cs->upstream_op_metrics.empty());
  EXPECT_EQ(cs->upstream_op_metrics.front().rows_in, 800u);
  ASSERT_FALSE(cs->op_metrics.empty());
  EXPECT_GT(cs->op_metrics.back().rows_out, 0u);
}

TEST(MetricsTest, HierarchicalMetricsReachTheCoordinator) {
  SystemConfig config = SmallSystem(/*columnar=*/true);
  config.combiner_regions = 2;
  ScrubSystem system(config);
  DriveLoad(system);
  auto submitted = system.Submit(kAggQuery, [](const ResultRow&) {});
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ASSERT_TRUE(system.hierarchical());
  system.RunUntil(5 * kMicrosPerSecond);

  const CentralQueryStats* cs = system.coordinator()->StatsFor(submitted->id);
  ASSERT_NE(cs, nullptr);
  EXPECT_FALSE(cs->upstream_op_metrics.empty());
  const std::string described = system.DescribeQuery(submitted->id);
  EXPECT_NE(described.find("combiner operators (summed)"), std::string::npos)
      << described;
  const std::string analyzed = system.ExplainAnalyze(submitted->id);
  EXPECT_NE(analyzed.find("coordinator pipeline:"), std::string::npos)
      << analyzed;
}

// ---------------------------------------------------------------------------
// Surfacing: DescribeQuery, EXPLAIN ANALYZE, post-teardown peak.
// ---------------------------------------------------------------------------

TEST(MetricsTest, ExplainAnalyzeRendersAnnotatedOperators) {
  ScrubSystem system(SmallSystem(/*columnar=*/true));
  DriveLoad(system);
  auto submitted = system.Submit(kAggQuery, [](const ResultRow&) {});
  ASSERT_TRUE(submitted.ok());
  system.RunUntil(4 * kMicrosPerSecond);
  const std::string analyzed = system.ExplainAnalyze(submitted->id);
  EXPECT_NE(analyzed.find("Decode"), std::string::npos) << analyzed;
  EXPECT_NE(analyzed.find("rows "), std::string::npos) << analyzed;
  EXPECT_NE(analyzed.find("sel "), std::string::npos) << analyzed;
  EXPECT_NE(analyzed.find("batches"), std::string::npos) << analyzed;
  const std::string described = system.DescribeQuery(submitted->id);
  EXPECT_NE(described.find("operators:"), std::string::npos) << described;
}

TEST(MetricsTest, PeakStateBytesSurviveTeardown) {
  SystemConfig config = SmallSystem(/*columnar=*/true);
  config.central.track_state_bytes = true;
  ScrubSystem system(config);
  DriveLoad(system);
  auto submitted = system.Submit(
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "WINDOW 1 s DURATION 3 s;",
      [](const ResultRow&) {});
  ASSERT_TRUE(submitted.ok());
  system.RunUntil(6 * kMicrosPerSecond);
  system.Drain();  // span expired: the query is torn down and retired

  const CentralQueryStats* cs = system.central().StatsFor(submitted->id);
  ASSERT_NE(cs, nullptr);
  EXPECT_GT(cs->peak_state_bytes, 0u);
  const std::string described = system.DescribeQuery(submitted->id);
  EXPECT_NE(described.find("state peak:"), std::string::npos) << described;
}

// ---------------------------------------------------------------------------
// AdaptiveController unit behavior (synthetic stats, recorded overrides).
// ---------------------------------------------------------------------------

struct RecordedOverrides {
  std::vector<std::pair<QueryId, size_t>> batch;
  std::vector<std::pair<QueryId, bool>> pipeline;
};

AdaptiveController MakeController(const AdaptiveConfig& config,
                                  RecordedOverrides* rec,
                                  size_t default_batch = 1024,
                                  bool default_columnar = true) {
  return AdaptiveController(
      config, default_batch, default_columnar,
      [rec](QueryId id, size_t n) { rec->batch.emplace_back(id, n); },
      [rec](QueryId id, bool c) { rec->pipeline.emplace_back(id, c); });
}

TEST(AdaptiveControllerTest, DisabledControllerNeverOverrides) {
  RecordedOverrides rec;
  AdaptiveConfig config;  // enabled defaults to false: the kill switch
  AdaptiveController ctl = MakeController(config, &rec);
  CentralQueryStats stats;
  stats.op_metrics.resize(1);
  ctl.OnInstall(1, 0, true);
  for (int i = 0; i < 10; ++i) {
    ctl.OnPump(1, i, stats);
  }
  EXPECT_TRUE(rec.batch.empty());
  EXPECT_TRUE(rec.pipeline.empty());
  EXPECT_EQ(ctl.Describe(1), "");
}

TEST(AdaptiveControllerTest, CalibrationPicksTheCheaperPipeline) {
  RecordedOverrides rec;
  AdaptiveConfig config;
  config.enabled = true;
  config.calibration_pumps = 1;
  AdaptiveController ctl = MakeController(config, &rec);
  ctl.OnInstall(1, 0, /*columnar_eligible=*/true);
  // Install forces the row pipeline for the first calibration phase.
  ASSERT_EQ(rec.pipeline.size(), 1u);
  EXPECT_FALSE(rec.pipeline[0].second);

  CentralQueryStats stats;
  stats.op_metrics.resize(1);
  ctl.OnPump(1, 1, stats);  // phase snapshot
  // Row phase: 1000 rows at 200 ns/row.
  stats.op_metrics[0].rows_in = 1000;
  stats.op_metrics[0].batches = 10;
  stats.op_metrics[0].cpu_ns = 200'000;
  ctl.OnPump(1, 2, stats);  // measures row, switches to columnar phase
  ASSERT_EQ(rec.pipeline.size(), 2u);
  EXPECT_TRUE(rec.pipeline[1].second);

  ctl.OnPump(1, 3, stats);  // columnar phase snapshot
  // Columnar phase: another 1000 rows at only 50 ns/row.
  stats.op_metrics[0].rows_in = 2000;
  stats.op_metrics[0].batches = 20;
  stats.op_metrics[0].cpu_ns = 250'000;
  ctl.OnPump(1, 4, stats);  // measures columnar, locks the cheaper pipeline
  ASSERT_EQ(rec.pipeline.size(), 3u);
  EXPECT_TRUE(rec.pipeline[2].second);

  const std::string described = ctl.Describe(1);
  EXPECT_NE(described.find("phase=steady"), std::string::npos) << described;
  EXPECT_NE(described.find("chose columnar pipeline"), std::string::npos)
      << described;
  const std::vector<AdaptiveDecision>* decisions = ctl.DecisionsFor(1);
  ASSERT_NE(decisions, nullptr);
  EXPECT_GE(decisions->size(), 4u);
}

TEST(AdaptiveControllerTest, CalibrationKeepsRowWhenColumnarLoses) {
  RecordedOverrides rec;
  AdaptiveConfig config;
  config.enabled = true;
  config.calibration_pumps = 1;
  AdaptiveController ctl = MakeController(config, &rec);
  ctl.OnInstall(1, 0, true);
  CentralQueryStats stats;
  stats.op_metrics.resize(1);
  ctl.OnPump(1, 1, stats);
  // Row phase: 50 ns/row. Columnar phase: 400 ns/row.
  stats.op_metrics[0].rows_in = 1000;
  stats.op_metrics[0].batches = 10;
  stats.op_metrics[0].cpu_ns = 50'000;
  ctl.OnPump(1, 2, stats);
  ctl.OnPump(1, 3, stats);
  stats.op_metrics[0].rows_in = 2000;
  stats.op_metrics[0].batches = 20;
  stats.op_metrics[0].cpu_ns = 450'000;
  ctl.OnPump(1, 4, stats);
  ASSERT_EQ(rec.pipeline.size(), 3u);
  EXPECT_FALSE(rec.pipeline[2].second);  // row locked despite columnar default
  EXPECT_NE(ctl.Describe(1).find("chose row pipeline"), std::string::npos);
}

TEST(AdaptiveControllerTest, PhaseExtendsUntilTrafficArrives) {
  RecordedOverrides rec;
  AdaptiveConfig config;
  config.enabled = true;
  config.calibration_pumps = 1;
  AdaptiveController ctl = MakeController(config, &rec);
  ctl.OnInstall(1, 0, true);
  CentralQueryStats stats;
  stats.op_metrics.resize(1);
  for (int i = 1; i <= 5; ++i) {
    ctl.OnPump(1, i, stats);  // zero rows folded: the row phase must hold
  }
  ASSERT_EQ(rec.pipeline.size(), 1u);  // still only the install-time force
  stats.op_metrics[0].rows_in = 500;
  stats.op_metrics[0].batches = 5;
  stats.op_metrics[0].cpu_ns = 100'000;
  ctl.OnPump(1, 6, stats);  // traffic at last: row measured, phase advances
  EXPECT_EQ(rec.pipeline.size(), 2u);
}

TEST(AdaptiveControllerTest, IneligiblePlanSkipsCalibrationAndTunesBatch) {
  RecordedOverrides rec;
  AdaptiveConfig config;
  config.enabled = true;
  config.tune_interval_pumps = 1;
  config.min_batch_events = 128;
  config.max_batch_events = 4096;
  AdaptiveController ctl = MakeController(config, &rec);
  ctl.OnInstall(1, 0, /*columnar_eligible=*/false);
  EXPECT_TRUE(rec.pipeline.empty());  // nothing to A/B
  EXPECT_NE(ctl.Describe(1).find("columnar ineligible"), std::string::npos);

  CentralQueryStats stats;
  stats.op_metrics.resize(1);
  // Near-full flushes (avg fill 1000 of cap 1024) double the cap...
  stats.op_metrics[0].rows_in = 10'000;
  stats.op_metrics[0].batches = 10;
  ctl.OnPump(1, 1, stats);
  ASSERT_EQ(rec.batch.size(), 1u);
  EXPECT_EQ(rec.batch[0].second, 2048u);
  // ...and near-empty flushes (avg fill 100 of cap 2048) halve it again.
  stats.op_metrics[0].rows_in = 11'000;
  stats.op_metrics[0].batches = 20;
  ctl.OnPump(1, 2, stats);
  ASSERT_EQ(rec.batch.size(), 2u);
  EXPECT_EQ(rec.batch[1].second, 1024u);
}

TEST(MetricsTest, AdaptiveDecisionsVisibleInDescribeQuery) {
  SystemConfig config = SmallSystem(/*columnar=*/true);
  config.adaptive.enabled = true;
  config.adaptive.calibration_pumps = 2;
  config.adaptive.tune_interval_pumps = 2;
  ScrubSystem system(config);
  DriveLoad(system);
  auto submitted = system.Submit(kAggQuery, [](const ResultRow&) {});
  ASSERT_TRUE(submitted.ok());
  system.RunUntil(5 * kMicrosPerSecond);
  ASSERT_NE(system.adaptive_controller(), nullptr);
  const std::string described = system.DescribeQuery(submitted->id);
  EXPECT_NE(described.find("adaptive: phase="), std::string::npos)
      << described;
  EXPECT_NE(described.find("calibration started"), std::string::npos)
      << described;
  const std::vector<AdaptiveDecision>* decisions =
      system.adaptive_controller()->DecisionsFor(submitted->id);
  ASSERT_NE(decisions, nullptr);
  EXPECT_FALSE(decisions->empty());
}

// ---------------------------------------------------------------------------
// Calibrated cost model and predicted-cost admission.
// ---------------------------------------------------------------------------

TEST(CostModelTest, PredictionScalesWithFleetAndPlanShape) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry
                  .Register(*EventSchema::Builder("bid")
                                 .AddField("user_id", FieldType::kLong)
                                 .AddField("price", FieldType::kDouble)
                                 .Build())
                  .ok());
  ASSERT_TRUE(registry
                  .Register(*EventSchema::Builder("impression")
                                 .AddField("line_item_id", FieldType::kLong)
                                 .Build())
                  .ok());
  AnalyzerOptions options;
  const auto analyze = [&](const char* text) {
    Result<AnalyzedQuery> aq = ParseAndAnalyze(text, registry, options);
    EXPECT_TRUE(aq.ok()) << aq.status().ToString();
    return std::move(*aq);
  };
  LintOptions lint;
  const AnalyzedQuery simple = analyze(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 10 s;");
  const AnalyzedQuery join = analyze(
      "SELECT COUNT(*) FROM bid, impression WINDOW 1 s DURATION 10 s;");
  const AnalyzedQuery sampled = analyze(
      "SELECT COUNT(*) FROM bid WINDOW 1 s DURATION 10 s "
      "SAMPLE EVENTS 10%;");

  const uint64_t simple_cost = PredictCentralCostNsPerSec(simple, lint);
  EXPECT_GT(simple_cost, 0u);
  // A join pays the probe on top of ingest, over twice the sources.
  EXPECT_GT(PredictCentralCostNsPerSec(join, lint), simple_cost);
  // Event sampling scales the shipped rate straight down.
  EXPECT_LT(PredictCentralCostNsPerSec(sampled, lint), simple_cost / 5);
  // Twice the fleet, twice the demand.
  LintOptions big = lint;
  big.fleet_hosts = lint.fleet_hosts * 2;
  EXPECT_EQ(PredictCentralCostNsPerSec(simple, big), simple_cost * 2);
}

TEST(CostModelTest, AdmissionRejectsWhenBudgetExhausted) {
  SystemConfig config = SmallSystem(/*columnar=*/true);
  ScrubSystem system_probe(config);
  // Size the budget to admit exactly one copy of the query: predict its
  // cost under the same lint options admission will use.
  AnalyzerOptions analyzer;
  Result<AnalyzedQuery> aq =
      ParseAndAnalyze(kAggQuery, system_probe.schemas(), analyzer);
  ASSERT_TRUE(aq.ok());
  const uint64_t cost =
      PredictCentralCostNsPerSec(*aq, system_probe.LintConfig());
  ASSERT_GT(cost, 0u);

  config.server.central_cpu_budget_ns_per_sec = cost + cost / 2;
  ScrubSystem system(config);
  auto first = system.Submit(kAggQuery, [](const ResultRow&) {});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(system.server().admitted_cost_ns_per_sec(), cost);

  auto second = system.Submit(kAggQuery, [](const ResultRow&) {});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(system.server().queries_rejected_cost(), 1u);

  // Tearing the first down releases its charge; the next submission fits.
  ASSERT_TRUE(system.server().Cancel(first->id).ok());
  EXPECT_EQ(system.server().admitted_cost_ns_per_sec(), 0u);
  auto third = system.Submit(kAggQuery, [](const ResultRow&) {});
  EXPECT_TRUE(third.ok()) << third.status().ToString();
}

TEST(CostModelTest, CalibrationDerivesUnitCostsFromObservedMetrics) {
  ScrubSystem system(SmallSystem(/*columnar=*/true));
  DriveLoad(system);
  auto submitted = system.Submit(kAggQuery, [](const ResultRow&) {});
  ASSERT_TRUE(submitted.ok());
  system.RunUntil(4 * kMicrosPerSecond);

  const CostModel calibrated = system.CalibrateLintCosts();
  EXPECT_GT(calibrated.central_ingest_ns, 0);
  EXPECT_GT(calibrated.central_group_update_ns, 0);
  // The calibrated model is live in the server's lint options: admission
  // predictions now use observed costs.
  EXPECT_EQ(system.LintConfig().costs.central_ingest_ns,
            calibrated.central_ingest_ns);
}

TEST(LintTest, JoinWiderThanColumnSectionsGetsRowFallbackNote) {
  SchemaRegistry registry;
  std::string from;
  for (size_t i = 0; i < kMaxColumnJoinSections + 1; ++i) {
    const std::string name = StrFormat("s%zu", i);
    ASSERT_TRUE(registry
                    .Register(*EventSchema::Builder(name)
                                   .AddField(StrFormat("f%zu", i),
                                             FieldType::kLong)
                                   .Build())
                    .ok());
    from += (i == 0 ? "" : ", ") + name;
  }
  AnalyzerOptions analyzer;
  analyzer.max_sources = kMaxColumnJoinSections + 2;
  Result<AnalyzedQuery> aq = ParseAndAnalyze(
      StrFormat("SELECT COUNT(*) FROM %s WINDOW 1 s DURATION 5 s;",
                from.c_str()),
      registry, analyzer);
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  const std::vector<Diagnostic> diags = LintQuery(*aq, LintOptions{});
  bool found = false;
  for (const Diagnostic& d : diags) {
    if (d.rule == lint_rules::kJoinWidthRowFallback) {
      found = true;
      EXPECT_EQ(d.severity, LintSeverity::kNote);
      EXPECT_NE(d.message.find("row staging"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
  // A two-way join stays under the cap: no note.
  AnalyzerOptions two;
  Result<AnalyzedQuery> narrow = ParseAndAnalyze(
      "SELECT COUNT(*) FROM s0, s1 WINDOW 1 s DURATION 5 s;", registry, two);
  ASSERT_TRUE(narrow.ok());
  for (const Diagnostic& d : LintQuery(*narrow, LintOptions{})) {
    EXPECT_NE(d.rule, lint_rules::kJoinWidthRowFallback);
  }
}

}  // namespace
}  // namespace scrub
