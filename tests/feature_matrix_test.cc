// Cross-feature integration: language features that interact — sliding
// windows with sampling, joins with sliding windows, nested paths under
// sampling, multiple simultaneous feature-heavy queries — must compose
// without stepping on each other.

#include <map>

#include <gtest/gtest.h>

#include "src/scrub/scrub_system.h"

namespace scrub {
namespace {

SystemConfig MatrixSystem(uint64_t seed) {
  SystemConfig config;
  config.seed = seed;
  config.platform.seed = seed;
  config.platform.datacenters = 2;
  config.platform.bidservers_per_dc = 3;
  config.platform.adservers_per_dc = 1;
  return config;
}

TEST(FeatureMatrixTest, SlidingWindowWithEventSampling) {
  ScrubSystem system(MatrixSystem(101));
  PoissonLoadConfig load;
  load.requests_per_second = 1500;
  load.duration = 12 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);

  // Exact tumbling reference at the slide granularity lets us reconstruct
  // the expected sliding sums.
  std::map<TimeMicros, double> sampled_sliding;
  std::map<TimeMicros, int64_t> exact_tumbling;
  Result<SubmittedQuery> sampled = system.Submit(
      "SELECT COUNT(*) FROM bid WINDOW 4 s SLIDE 2 s DURATION 12 s "
      "SAMPLE EVENTS 50%;",
      [&](const ResultRow& row) {
        sampled_sliding[row.window_start] =
            row.values[0].is_double()
                ? row.values[0].AsDoubleExact()
                : static_cast<double>(row.values[0].AsInt());
      });
  Result<SubmittedQuery> exact = system.Submit(
      "SELECT COUNT(*) FROM bid WINDOW 2 s DURATION 12 s;",
      [&](const ResultRow& row) {
        exact_tumbling[row.window_start] = row.values[0].AsInt();
      });
  ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();

  system.RunUntil(13 * kMicrosPerSecond);
  system.Drain();

  ASSERT_GE(sampled_sliding.size(), 4u);
  // Interior sliding windows: estimate ~ sum of the two covered tumbling
  // slices, within sampling noise.
  int checked = 0;
  for (const auto& [start, estimate] : sampled_sliding) {
    const auto a = exact_tumbling.find(start);
    const auto b = exact_tumbling.find(start + 2 * kMicrosPerSecond);
    if (a == exact_tumbling.end() || b == exact_tumbling.end()) {
      continue;
    }
    const double truth = static_cast<double>(a->second + b->second);
    if (truth < 500) {
      continue;
    }
    EXPECT_NEAR(estimate, truth, 0.20 * truth)
        << "window start " << start;
    ++checked;
  }
  EXPECT_GE(checked, 3);
}

TEST(FeatureMatrixTest, JoinWithSlidingWindows) {
  ScrubSystem system(MatrixSystem(103));
  PoissonLoadConfig load;
  load.requests_per_second = 400;
  load.duration = 8 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);

  std::map<TimeMicros, int64_t> per_window;
  Result<SubmittedQuery> submitted = system.Submit(
      "SELECT COUNT(*) FROM bid, auction WINDOW 4 s SLIDE 2 s "
      "DURATION 8 s;",
      [&](const ResultRow& row) {
        per_window[row.window_start] = row.values[0].AsInt();
      });
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  system.RunUntil(9 * kMicrosPerSecond);
  system.Drain();

  // A (bid, auction) pair lands inside every window covering it: interior
  // sliding windows hold roughly double a 2 s slice's pairs, and adjacent
  // interior windows are comparable under steady traffic.
  ASSERT_GE(per_window.size(), 3u);
  const int64_t w2 = per_window[2 * kMicrosPerSecond];
  const int64_t w4 = per_window[4 * kMicrosPerSecond];
  ASSERT_GT(w2, 0);
  ASSERT_GT(w4, 0);
  EXPECT_NEAR(static_cast<double>(w2) / static_cast<double>(w4), 1.0, 0.4);
}

TEST(FeatureMatrixTest, NestedPathGroupingUnderSampling) {
  ScrubSystem system(MatrixSystem(107));
  PoissonLoadConfig load;
  load.requests_per_second = 2000;
  load.duration = 10 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);

  std::map<std::string, double> sampled_by_os;
  std::map<std::string, int64_t> exact_by_os;
  Result<SubmittedQuery> sampled = system.Submit(
      "SELECT bid.device.os, COUNT(*) FROM bid GROUP BY bid.device.os "
      "WINDOW 10 s DURATION 10 s SAMPLE EVENTS 25%;",
      [&](const ResultRow& row) {
        sampled_by_os[row.values[0].AsString()] =
            row.values[1].is_double()
                ? row.values[1].AsDoubleExact()
                : static_cast<double>(row.values[1].AsInt());
      });
  Result<SubmittedQuery> exact = system.Submit(
      "SELECT bid.device.os, COUNT(*) FROM bid GROUP BY bid.device.os "
      "WINDOW 10 s DURATION 10 s;",
      [&](const ResultRow& row) {
        exact_by_os[row.values[0].AsString()] = row.values[1].AsInt();
      });
  ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  system.RunUntil(11 * kMicrosPerSecond);
  system.Drain();

  ASSERT_EQ(exact_by_os.size(), 4u);
  ASSERT_EQ(sampled_by_os.size(), 4u);
  for (const auto& [os, truth] : exact_by_os) {
    ASSERT_TRUE(sampled_by_os.count(os)) << os;
    EXPECT_NEAR(sampled_by_os[os], static_cast<double>(truth),
                0.2 * static_cast<double>(truth))
        << os;
  }
}

TEST(FeatureMatrixTest, ManySimultaneousHeterogeneousQueries) {
  ScrubSystem system(MatrixSystem(109));
  PoissonLoadConfig load;
  load.requests_per_second = 1000;
  load.duration = 8 * kMicrosPerSecond;
  system.workload().SchedulePoissonLoad(load);

  const char* queries[] = {
      "SELECT COUNT(*) FROM bid WINDOW 2 s DURATION 8 s;",
      "SELECT bid.user_id, COUNT(*) FROM bid GROUP BY bid.user_id "
      "WINDOW 4 s DURATION 8 s;",
      "SELECT COUNT(*) FROM bid, auction WINDOW 4 s DURATION 8 s;",
      "SELECT AVG(impression.cost) FROM impression WINDOW 4 s "
      "DURATION 8 s;",
      "SELECT TOPK(5, bid.publisher_id) FROM bid WINDOW 8 s DURATION 8 s;",
      "SELECT COUNT_DISTINCT(bid.user_id) FROM bid WINDOW 8 s "
      "DURATION 8 s SAMPLE EVENTS 50%;",
      "SELECT bid.device.os, COUNT(*) FROM bid GROUP BY bid.device.os "
      "WINDOW 4 s SLIDE 2 s DURATION 8 s;",
      "SELECT COUNT(*) FROM exclusion WHERE exclusion.reason = "
      "'exchange_mismatch' WINDOW 4 s DURATION 8 s;",
  };
  std::vector<size_t> rows(std::size(queries), 0);
  std::vector<QueryId> ids;
  for (size_t i = 0; i < std::size(queries); ++i) {
    Result<SubmittedQuery> s = system.Submit(
        queries[i], [&rows, i](const ResultRow&) { ++rows[i]; });
    ASSERT_TRUE(s.ok()) << queries[i] << "\n  -> "
                        << s.status().ToString();
    ids.push_back(s->id);
  }
  system.RunUntil(9 * kMicrosPerSecond);
  system.Drain();
  for (size_t i = 0; i < std::size(queries); ++i) {
    EXPECT_GT(rows[i], 0u) << queries[i];
  }
  // All queries expired cleanly.
  for (const QueryId id : ids) {
    EXPECT_FALSE(system.central().HasQuery(id));
  }
  EXPECT_EQ(system.server().active_queries(), 0u);
}

}  // namespace
}  // namespace scrub
